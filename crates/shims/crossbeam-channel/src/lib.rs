//! Offline shim of the `crossbeam-channel` crate.
//!
//! Implements the subset the workspace uses: [`bounded`] multi-producer
//! multi-consumer channels with blocking `send`/`recv`, cloneable senders
//! *and* receivers, disconnect detection, and the `iter`/`try_iter`
//! consumers. Built on `Mutex` + `Condvar`; the pipelined executor moves
//! whole batches per message, so the per-message cost of the lock is
//! amortized exactly like crossbeam's would be.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    cap: usize,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent message back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`]; carries the unsent message back
/// to the caller.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity; a blocking [`Sender::send`] would wait.
    Full(T),
    /// Every receiver has been dropped.
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded MPMC channel with capacity `cap`.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(cap.min(1024)),
            cap: cap.max(1),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until there is queue room, then enqueues `msg`. Fails only
    /// when every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            if state.queue.len() < state.cap {
                state.queue.push_back(msg);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).expect("channel poisoned");
        }
    }

    /// Non-blocking send: enqueues `msg` if there is queue room, otherwise
    /// hands it back immediately as [`TrySendError::Full`] (or
    /// [`TrySendError::Disconnected`] when every receiver is gone).
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if state.queue.len() >= state.cap {
            return Err(TrySendError::Full(msg));
        }
        state.queue.push_back(msg);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued (a racy gauge — only meaningful
    /// as an instantaneous sample, e.g. for queue-depth instrumentation).
    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// True when no messages are currently queued (racy, like [`Sender::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel poisoned").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message is available. Fails when the channel is empty
    /// and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).expect("channel poisoned");
        }
    }

    /// Non-blocking drain: yields messages until the queue is empty.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }

    /// Blocking iterator: yields messages until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .state
            .lock()
            .expect("channel poisoned")
            .receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            self.shared.not_full.notify_all();
        }
    }
}

/// Iterator returned by [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        let mut state = self.receiver.shared.state.lock().expect("channel poisoned");
        let msg = state.queue.pop_front();
        drop(state);
        if msg.is_some() {
            self.receiver.shared.not_full.notify_one();
        }
        msg
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;

    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

/// Iterator returned by [`Receiver::into_iter`].
pub struct IntoIter<T> {
    receiver: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn recv_fails_when_senders_gone() {
        let (tx, rx) = bounded::<i32>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.len(), 1);
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        assert!(tx.is_empty());
        drop(rx);
        assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
    }

    #[test]
    fn bounded_blocks_and_resumes() {
        let (tx, rx) = bounded(2);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got.len(), 100);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = bounded(8);
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        let p1 = thread::spawn(move || {
            for i in 0..50 {
                tx.send(i).unwrap();
            }
        });
        let p2 = thread::spawn(move || {
            for i in 50..100 {
                tx2.send(i).unwrap();
            }
        });
        let c1 = thread::spawn(move || rx.iter().count());
        let c2 = thread::spawn(move || rx2.iter().count());
        p1.join().unwrap();
        p2.join().unwrap();
        assert_eq!(c1.join().unwrap() + c2.join().unwrap(), 100);
    }
}
