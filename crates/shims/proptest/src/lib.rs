//! Offline shim of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config]`), `Strategy` with
//! `prop_map`, integer-range and tuple strategies, `prop::collection::vec`,
//! [`prop_oneof!`], `Just`, `any::<bool>()`, and the `prop_assert*`
//! macros.
//!
//! Differences from real proptest: generation is a fixed deterministic
//! sequence per test (seeded from the test name), there is no shrinking,
//! and failures panic immediately via the std assert macros. That keeps
//! test runs reproducible without a registry dependency.

#![warn(missing_docs)]

/// Run-count configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generation source used by the [`proptest!`] runner.
pub mod test_runner {
    /// SplitMix64-based generator; seeded from the property name so every
    /// test sees a stable but distinct sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the generator for a named property.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// Strategies: value generators composable with `prop_map`.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    /// The `prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A constant strategy: always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternative strategies
    /// (the [`crate::prop_oneof!`] expansion).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds the union; panics on an empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Types with a canonical full-range strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// The strategy type for this type.
        type Strategy: Strategy<Value = Self>;

        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Strategy behind `any::<bool>()`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty => $any:ident),*) => {$(
            /// Full-range integer strategy.
            #[derive(Debug, Clone, Copy)]
            pub struct $any;

            impl Strategy for $any {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = $any;

                fn arbitrary() -> $any {
                    $any
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64,
                        i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// The `prop::` namespace (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::{Range, RangeInclusive};

        /// Inclusive length bounds for [`vec()`].
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// Strategy generating `Vec`s of an element strategy.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo
                    + if span == 0 {
                        0
                    } else {
                        rng.below(span + 1) as usize
                    };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Generates vectors whose length lies in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__cfg.cases {
                    let __run = || {
                        $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                        $body
                    };
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(__run),
                    );
                    if let Err(payload) = __outcome {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed",
                            __case + 1,
                            __cfg.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = (0usize..7).sample(&mut rng);
            assert!(v < 7);
            let w = prop::collection::vec(0i64..5, 2..=4).sample(&mut rng);
            assert!((2..=4).contains(&w.len()));
            assert!(w.iter().all(|x| (0..5).contains(x)));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![0usize..1, 10usize..11, 20usize..21];
        let mut rng = crate::test_runner::TestRng::deterministic("arms");
        let mut seen = [false; 3];
        for _ in 0..200 {
            match s.sample(&mut rng) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                20 => seen[2] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(
            a in prop::collection::vec(0i64..5, 0..10),
            b in any::<bool>(),
            c in 1u64..4,
        ) {
            prop_assert!(a.len() < 10);
            prop_assert!((1..4).contains(&c));
            let _ = b;
            prop_assert_eq!(a.len(), a.iter().copied().count());
        }

        #[test]
        fn mapped_tuples_work(x in (0usize..3, 0i64..5).prop_map(|(a, c)| (a, c * 2))) {
            prop_assert!(x.0 < 3);
            prop_assert!(x.1 % 2 == 0);
        }
    }
}
