//! Offline shim of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements exactly the API surface the workspace consumes: `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen`, `gen_range` (half-open and inclusive integer ranges) and
//! `gen_bool`. The generator is xoshiro256++, which is more than adequate
//! for workload synthesis; it is *not* cryptographically secure.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full value range (the `Standard`
/// distribution of real rand).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly samplable within bounds (mirrors rand's
/// `SampleUniform`, which is what makes `gen_range` type inference work).
pub trait SampleUniform: Sized {
    /// Uniform draw in `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw in `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Rejection-free (bias negligible for our domains) bounded sampling.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 * span.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// Draws a value of `T` from its full-range distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64 (the reference seeding procedure).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(0i64..5);
            assert!((0..5).contains(&v));
            let w = rng.gen_range(-10i64..=12);
            assert!((-10..=12).contains(&w));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let s = rng.gen_range(0usize..8);
            assert!(s < 8);
        }
    }

    #[test]
    fn covers_full_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
