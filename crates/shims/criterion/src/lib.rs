//! Offline shim of the `criterion` benchmark harness.
//!
//! Implements the subset the workspace's benches use — groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `sample_size`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — with
//! a plain wall-clock measurement loop: a warmup pass, then `sample_size`
//! timed samples whose median and spread are printed to stdout. No
//! statistics beyond that, no HTML reports, no CLI filtering.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: one warmup call, then `sample_size` measured calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the measured sample count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let mut s = b.samples;
        if s.is_empty() {
            println!("{}/{}: no samples", self.name, id);
            return;
        }
        s.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
        let median = s[s.len() / 2];
        let (lo, hi) = (s[0], s[s.len() - 1]);
        println!(
            "{}/{}: median {} (min {}, max {}, n={})",
            self.name,
            id,
            fmt_time(median),
            fmt_time(lo),
            fmt_time(hi),
            s.len()
        );
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        self.run_one(id, f);
    }

    /// Benchmarks a closure taking a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.name.clone();
        self.run_one(&name, |b| f(b, input));
    }

    /// Ends the group (printing happens eagerly; this is a no-op).
    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Applies CLI configuration (accepted and ignored by the shim).
    pub fn configure_from_args(mut self) -> Self {
        self.default_sample_size = 10;
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().configure_from_args();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        // 1 warmup + 3 samples.
        assert_eq!(ran, 4);
    }

    #[test]
    fn id_formats() {
        let id = BenchmarkId::new("indexed", 64);
        assert_eq!(id.name, "indexed/64");
    }
}
