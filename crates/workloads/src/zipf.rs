//! Zipfian sampling for query parameters (§5.1): "Each window length is
//! chosen with a Zipfian distribution, favoring larger windows [...]. The
//! Zipfian distribution is to model commonality among queries that is often
//! observed in real, large-scale workloads."

use rand::Rng;

/// A Zipf(s) sampler over ranks `0..n` (rank 0 is the most likely).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler: `P(rank = k) ∝ 1 / (k+1)^s`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "empty Zipf domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the domain is a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Samples a predicate constant from `0..domain` (rank 0 ↦ 0, the most
    /// common constant).
    pub fn sample_constant(&self, rng: &mut impl Rng) -> i64 {
        self.sample(rng) as i64
    }

    /// Samples a window length from `1..=domain`, favoring *larger* windows
    /// (rank 0 ↦ the full domain, as in §5.1: "a window of length 1000 is
    /// most likely to be chosen").
    pub fn sample_window(&self, rng: &mut impl Rng) -> u64 {
        (self.cdf.len() - self.sample(rng)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rank_zero_is_most_likely() {
        let z = Zipf::new(100, 1.5);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        // Rough check of the head mass: for s=1.5, P(0) ≈ 0.38.
        let p0 = counts[0] as f64 / 20_000.0;
        assert!((0.30..0.48).contains(&p0), "p0 = {p0}");
    }

    #[test]
    fn window_sampling_favors_large() {
        let z = Zipf::new(1000, 1.5);
        let mut rng = StdRng::seed_from_u64(8);
        let mut big = 0;
        let n = 10_000;
        for _ in 0..n {
            let w = z.sample_window(&mut rng);
            assert!((1..=1000).contains(&w));
            if w == 1000 {
                big += 1;
            }
        }
        assert!(big > n / 4, "window 1000 must dominate, got {big}/{n}");
    }

    #[test]
    fn constants_in_domain() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let c = z.sample_constant(&mut rng);
            assert!((0..50).contains(&c));
        }
    }

    #[test]
    fn higher_skew_concentrates_mass() {
        let lo = Zipf::new(100, 1.2);
        let hi = Zipf::new(100, 2.0);
        let mut rng = StdRng::seed_from_u64(10);
        let head = |z: &Zipf, rng: &mut StdRng| (0..10_000).filter(|_| z.sample(rng) == 0).count();
        let lo_head = head(&lo, &mut rng);
        let hi_head = head(&hi, &mut rng);
        assert!(hi_head > lo_head);
    }

    #[test]
    #[should_panic(expected = "empty Zipf domain")]
    fn empty_domain_panics() {
        let _ = Zipf::new(0, 1.5);
    }
}
