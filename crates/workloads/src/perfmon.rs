//! Simulated performance-counter datasets.
//!
//! The paper's §5.3 uses two proprietary traces collected with the Windows
//! Vista Performance Monitor: D1 (104 long-running processes on an office
//! machine, 24 hours, one CPU reading per process per second) and D2 (28
//! processes on a home machine). Those traces are unavailable, so this
//! module generates synthetic equivalents that preserve the properties the
//! hybrid-query experiment exercises (see DESIGN.md §4):
//!
//! * one `CPU(pid, load; ts)` tuple per process per second;
//! * a mostly-idle baseline with bursty episodes (so the stopping condition
//!   `load > 10` has realistic selectivity);
//! * injected monotone ramp-up episodes (so the µ pattern builds real event
//!   sequences);
//! * loads spread over `0..=100` (so the `sel`-controlled starting
//!   conditions hit their intended selectivities).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rumor_types::Tuple;

/// Configuration for a simulated trace.
#[derive(Debug, Clone)]
pub struct PerfmonConfig {
    /// Number of monitored processes (D1: 104, D2: 28).
    pub processes: usize,
    /// Trace duration in seconds.
    pub duration_secs: u64,
    /// RNG seed.
    pub seed: u64,
}

impl PerfmonConfig {
    /// The D1-shaped dataset (104 processes). The duration defaults to a
    /// laptop-scale slice; benchmarks pass larger horizons.
    pub fn d1(duration_secs: u64) -> Self {
        PerfmonConfig {
            processes: 104,
            duration_secs,
            seed: 0xD1,
        }
    }

    /// The D2-shaped dataset (28 processes).
    pub fn d2(duration_secs: u64) -> Self {
        PerfmonConfig {
            processes: 28,
            duration_secs,
            seed: 0xD2,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Low, jittery load.
    Idle,
    /// Sustained elevated load.
    Busy,
    /// Monotone ramp-up — the pattern Query 1 hunts for.
    Ramp { step: i64 },
}

/// Generates the trace: tuples `(pid, load)` with one reading per process
/// per second, timestamps `0..duration`, process-major within each second.
pub fn generate(cfg: &PerfmonConfig) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut load: Vec<i64> = (0..cfg.processes).map(|_| rng.gen_range(0..8)).collect();
    let mut phase: Vec<Phase> = vec![Phase::Idle; cfg.processes];
    let mut out = Vec::with_capacity(cfg.processes * cfg.duration_secs as usize);
    for ts in 0..cfg.duration_secs {
        for pid in 0..cfg.processes {
            // Phase transitions.
            phase[pid] = match phase[pid] {
                Phase::Idle => match rng.gen_range(0..100) {
                    0..=2 => Phase::Ramp {
                        step: rng.gen_range(2..9),
                    },
                    3..=7 => Phase::Busy,
                    _ => Phase::Idle,
                },
                Phase::Busy => {
                    if rng.gen_range(0..100) < 15 {
                        Phase::Idle
                    } else {
                        Phase::Busy
                    }
                }
                Phase::Ramp { step } => {
                    if load[pid] >= 95 {
                        Phase::Idle
                    } else {
                        Phase::Ramp { step }
                    }
                }
            };
            // Load evolution.
            load[pid] = match phase[pid] {
                Phase::Idle => (load[pid] + rng.gen_range(-3..=3)).clamp(0, 15),
                Phase::Busy => (load[pid] + rng.gen_range(-10..=12)).clamp(20, 90),
                Phase::Ramp { step } => (load[pid] + step).min(100),
            };
            out.push(Tuple::ints(ts, &[pid as i64, load[pid]]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_coverage() {
        let cfg = PerfmonConfig::d2(200);
        let trace = generate(&cfg);
        assert_eq!(trace.len(), 28 * 200);
        // Process-major per second, timestamps non-decreasing.
        assert_eq!(trace[0].ts, 0);
        assert_eq!(trace[27].ts, 0);
        assert_eq!(trace[28].ts, 1);
        for t in &trace {
            let load = t.value(1).unwrap().as_int().unwrap();
            assert!((0..=100).contains(&load));
        }
    }

    #[test]
    fn contains_ramps_and_idle() {
        let cfg = PerfmonConfig::d1(400);
        let trace = generate(&cfg);
        // Some process must reach a high load via a ramp...
        assert!(trace
            .iter()
            .any(|t| t.value(1).unwrap().as_int().unwrap() > 90));
        // ...and idle readings must dominate enough for selective starts.
        let idle = trace
            .iter()
            .filter(|t| t.value(1).unwrap().as_int().unwrap() <= 15)
            .count();
        assert!(idle * 2 > trace.len(), "idle should be the common case");
    }

    #[test]
    fn monotone_run_exists() {
        let cfg = PerfmonConfig::d1(300);
        let trace = generate(&cfg);
        // Find a per-process strictly increasing run of length >= 4.
        let mut best = 0;
        for pid in 0..cfg.processes as i64 {
            let loads: Vec<i64> = trace
                .iter()
                .filter(|t| t.value(0).unwrap().as_int() == Some(pid))
                .map(|t| t.value(1).unwrap().as_int().unwrap())
                .collect();
            let mut run = 1;
            for w in loads.windows(2) {
                if w[1] > w[0] {
                    run += 1;
                    best = best.max(run);
                } else {
                    run = 1;
                }
            }
        }
        assert!(best >= 4, "longest monotone run {best}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = PerfmonConfig::d2(50);
        assert_eq!(generate(&cfg), generate(&cfg));
    }
}
