//! The hybrid query workload of §5.3 (Figure 11): n instances of Query 2
//! over the simulated performance-counter stream.
//!
//! Each query, following the paper's modifications of Query 1/2:
//!
//! * smooths every process's CPU load with a 60-second sliding average
//!   (shared across all queries via rule sα);
//! * applies a *starting condition* with selectivity `sel` — deliberately
//!   not hash-indexable (an inequality), and structurally distinct per
//!   query so the m-op evaluates each member (the paper: "we assume these
//!   starting conditions are not indexable ... but still use the m-rule sσ
//!   to map all of them to an m-op");
//! * builds the monotone ramp-up pattern with µ (per-process matching);
//! * applies the stopping condition `load > 10`.
//!
//! With channels, the starting-condition m-op emits one channel tuple per
//! SMOOTHED tuple, one shared µ instance serves all queries, and the
//! stopping condition decodes the membership (Figure 6(c)); without
//! channels every query keeps its own µ and stopping operator (Figure
//! 6(b)).

use rumor_core::{AggFunc, AggSpec, IterSpec, LogicalPlan};
use rumor_expr::{CmpOp, Expr, NamedExpr, Predicate, SchemaMap};

/// A generated hybrid query (one "query" = n-processes instance of Query 2).
#[derive(Debug, Clone)]
pub struct HybridQuery {
    /// Starting-condition threshold (selectivity control).
    pub threshold: f64,
    /// The logical plan.
    pub plan: LogicalPlan,
}

/// The shared smoothing subplan: `SELECT pid, AVG(load) FROM CPU [RANGE 60]
/// GROUP BY pid` (§5.3 raises Query 1's window from 5 to 60 seconds).
pub fn smoothed() -> LogicalPlan {
    LogicalPlan::source("CPU").aggregate(AggSpec {
        func: AggFunc::Avg,
        input: Expr::col(1),
        group_by: vec![0],
        window: 60,
    })
}

/// Generates `n` hybrid queries with starting-condition selectivity `sel`.
///
/// Smoothed loads range over `0..=100`; a threshold of `sel * 100` gives
/// the starting condition selectivity ≈ `sel` under the perfmon load
/// distribution. Each query's predicate carries an extra always-true,
/// query-specific inequality so the conditions are structurally distinct
/// (they cannot collapse by CSE), exactly like the paper's per-query θs.
pub fn generate(n: usize, sel: f64) -> Vec<HybridQuery> {
    let threshold = sel * 100.0;
    (0..n)
        .map(|i| {
            // Starting condition: load < threshold AND pid != -(i+1).
            let start = Predicate::and(vec![
                Predicate::cmp(CmpOp::Lt, Expr::col(1), Expr::lit(threshold)),
                Predicate::cmp(CmpOp::Ne, Expr::col(0), Expr::lit(-(i as i64) - 1)),
            ]);
            // Ramp pattern: per-pid monotone increase of the smoothed load.
            let mu = IterSpec {
                filter: Predicate::cmp(CmpOp::Ne, Expr::col(0), Expr::rcol(0)),
                rebind: Predicate::and(vec![
                    Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                    Predicate::cmp(CmpOp::Gt, Expr::rcol(1), Expr::col(1)),
                ]),
                rebind_map: SchemaMap::new(vec![
                    NamedExpr::new("pid", Expr::col(0)),
                    NamedExpr::new("load", Expr::rcol(1)),
                ]),
                window: 300,
            };
            // Stopping condition (§5.3: load > 10, less selective than
            // Query 1's load > 90).
            let stop = Predicate::cmp(CmpOp::Gt, Expr::col(1), Expr::lit(10.0f64));
            let plan = smoothed()
                .select(start)
                .iterate(smoothed(), mu)
                .select(stop);
            HybridQuery { threshold, plan }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::{MopKind, Optimizer, OptimizerConfig, PlanGraph};
    use rumor_types::Schema;

    fn build(n: usize, sel: f64, channels: bool) -> PlanGraph {
        let mut plan = PlanGraph::new();
        plan.add_source("CPU", Schema::ints(2), None).unwrap();
        for q in generate(n, sel) {
            plan.add_query(&q.plan).unwrap();
        }
        let config = if channels {
            OptimizerConfig::default()
        } else {
            OptimizerConfig::without_channels()
        };
        Optimizer::new(config).optimize(&mut plan).unwrap();
        plan.validate().unwrap();
        plan
    }

    #[test]
    fn with_channels_matches_figure_6c() {
        let plan = build(8, 0.5, true);
        // α, σ{s1..sn}, µ{1..n}, σ{e} — four m-ops as in Figure 6(c).
        assert_eq!(plan.mop_count(), 4);
        let kinds: Vec<MopKind> = plan.mops().map(|n| n.kind).collect();
        assert!(kinds.contains(&MopKind::ChannelIterate));
        assert!(kinds.contains(&MopKind::ChannelSelect));
        assert!(kinds.contains(&MopKind::IndexedSelect));
    }

    #[test]
    fn without_channels_matches_figure_6b() {
        let n = 8;
        let plan = build(n, 0.5, false);
        // α + σ{s} shared; per-query µ and σe remain: 2 + 2n m-ops.
        assert_eq!(plan.mop_count(), 2 + 2 * n);
    }

    #[test]
    fn starting_conditions_structurally_distinct() {
        let qs = generate(5, 0.3);
        let mut plans: Vec<String> = qs.iter().map(|q| format!("{:?}", q.plan)).collect();
        plans.dedup();
        assert_eq!(plans.len(), 5, "no two queries may collapse by CSE");
    }
}
