//! Workload 2 (§5.2): parameter-free join-style event patterns that
//! exercise the Active Instance (AI) index.
//!
//! * Sequence template `S ;θ1∧θ2 T` with `θ1 = S.a\[0\] = T.a\[0\]` and θ2 the
//!   Zipfian duration window (Figure 10(a)): every S tuple enters the
//!   operator state and every T tuple probes it by `a\[0\]`.
//! * Iteration template `S µθ1∧θ2,θ3 T` with the rebind predicate
//!   `θ3 = T.a\[1\] > last.a\[1\]` (Figure 10(b)): each query looks for an S
//!   tuple followed by a sequence of T tuples with increasing `a\[1\]`,
//!   per-key (`a\[0\]`) matching.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rumor_cayuga::Automaton;
use rumor_core::{IterSpec, LogicalPlan, SeqSpec};
use rumor_expr::{CmpOp, Expr, NamedExpr, Predicate, SchemaMap};
use rumor_types::{QueryId, Schema};

use crate::params::Params;
use crate::zipf::Zipf;

/// A generated Workload 2 query.
#[derive(Debug, Clone)]
pub struct W2Query {
    /// Duration window.
    pub window: u64,
    /// RUMOR logical plan.
    pub plan: LogicalPlan,
    /// Equivalent Cayuga automaton.
    pub automaton: Automaton,
}

/// The pairwise equi predicate `S.a\[0\] = T.a\[0\]`.
pub fn theta1() -> Predicate {
    Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0))
}

/// Generates the sequence variant (`;`).
pub fn generate_seq(params: &Params) -> Vec<W2Query> {
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x57_02);
    let windows = Zipf::new(params.window_domain.max(1) as usize, params.zipf);
    let schema = Schema::ints(params.num_attrs);
    (0..params.num_queries)
        .map(|i| {
            let window = windows.sample_window(&mut rng);
            let plan = LogicalPlan::source("S").followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: theta1(),
                    window,
                },
            );
            let automaton = Automaton::sequence(
                "S",
                &schema,
                Predicate::True,
                "T",
                &schema,
                theta1(),
                window,
                QueryId(i as u32),
            );
            W2Query {
                window,
                plan,
                automaton,
            }
        })
        .collect()
}

/// The µ rebind predicate `S.a\[0\] = T.a\[0\] AND T.a\[1\] > last.a\[1\]` and its
/// rebind map (`a\[1\] := T.a\[1\]`, everything else kept).
pub fn mu_parts(num_attrs: usize) -> (Predicate, Predicate, SchemaMap) {
    let filter = Predicate::cmp(CmpOp::Ne, Expr::col(0), Expr::rcol(0));
    let rebind = Predicate::and(vec![
        theta1(),
        Predicate::cmp(CmpOp::Gt, Expr::rcol(1), Expr::col(1)),
    ]);
    let map = SchemaMap::new(
        (0..num_attrs)
            .map(|i| {
                let expr = if i == 1 { Expr::rcol(1) } else { Expr::col(i) };
                NamedExpr::new(format!("a{i}"), expr)
            })
            .collect(),
    );
    (filter, rebind, map)
}

/// Generates the iteration variant (`µ`).
pub fn generate_mu(params: &Params) -> Vec<W2Query> {
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x57_03);
    let windows = Zipf::new(params.window_domain.max(1) as usize, params.zipf);
    let schema = Schema::ints(params.num_attrs);
    let (filter, rebind, map) = mu_parts(params.num_attrs);
    (0..params.num_queries)
        .map(|i| {
            let window = windows.sample_window(&mut rng);
            let plan = LogicalPlan::source("S").iterate(
                LogicalPlan::source("T"),
                IterSpec {
                    filter: filter.clone(),
                    rebind: rebind.clone(),
                    rebind_map: map.clone(),
                    window,
                },
            );
            let automaton = Automaton::iterate(
                "S",
                &schema,
                Predicate::True,
                "T",
                filter.clone(),
                rebind.clone(),
                map.clone(),
                window,
                QueryId(i as u32),
            );
            W2Query {
                window,
                plan,
                automaton,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::{MopKind, Optimizer, OptimizerConfig, PlanGraph};

    fn optimize(queries: &[W2Query]) -> PlanGraph {
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(10), None).unwrap();
        plan.add_source("T", Schema::ints(10), None).unwrap();
        for q in queries {
            plan.add_query(&q.plan).unwrap();
        }
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();
        plan.validate().unwrap();
        plan
    }

    #[test]
    fn seq_queries_share_one_mop() {
        let p = Params::default().with_queries(30);
        let plan = optimize(&generate_seq(&p));
        // All queries share the predicate; only windows differ, so rule s;
        // leaves exactly one shared sequence m-op.
        assert_eq!(plan.mop_count(), 1);
        let node = plan.mops().next().unwrap();
        assert_eq!(node.kind, MopKind::SharedSequence);
        assert!(node.members.len() <= 30);
    }

    #[test]
    fn mu_queries_share_one_mop() {
        let p = Params::default().with_queries(30);
        let plan = optimize(&generate_mu(&p));
        assert_eq!(plan.mop_count(), 1);
        assert_eq!(plan.mops().next().unwrap().kind, MopKind::SharedIterate);
    }

    #[test]
    fn identical_windows_deduplicate() {
        let p = Params::default().with_queries(200).with_window_domain(5);
        let plan = optimize(&generate_seq(&p));
        // At most 5 distinct windows exist, so CSE bounds the members.
        assert!(plan.member_count() <= 5);
    }
}
