//! Workload 3 (§5.2): channel-based sharing across sharable first-input
//! streams.
//!
//! The template is `Si ;θ1∧θ2 T`: the Si are k different but sharable
//! streams (k = *channel capacity*, default 10), T is common to all
//! queries, θ1 is `Si.a\[0\] = T.a\[0\]`, and θ2 the Zipfian window. In channel
//! mode the Si arrive as one externally-fed channel whose tuples belong to
//! all k streams; rule c; then shares one instance store across all
//! queries. In the no-channel baseline the same content arrives as k
//! separate streams (round-robin, §5.2) and only same-stream sharing
//! applies.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rumor_core::{IterSpec, LogicalPlan, SeqSpec};
use rumor_types::QueryId;

use crate::params::Params;
use crate::workload2::{mu_parts, theta1};
use crate::zipf::Zipf;

/// A generated Workload 3 query.
#[derive(Debug, Clone)]
pub struct W3Query {
    /// Which of the k sharable streams the query reads.
    pub stream_index: usize,
    /// Duration window.
    pub window: u64,
    /// Plan for the channel-mode setup (reads `C.{i}`).
    pub channel_plan: LogicalPlan,
    /// Plan for the no-channel setup (reads `S{i}`).
    pub plain_plan: LogicalPlan,
    /// Query id (same in both setups).
    pub query: QueryId,
}

/// Generates the Workload 3 query set over `k` sharable streams.
pub fn generate(params: &Params, k: usize) -> Vec<W3Query> {
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x57_04);
    let windows = Zipf::new(params.window_domain.max(1) as usize, params.zipf);
    (0..params.num_queries)
        .map(|i| {
            let stream_index = i % k.max(1);
            let window = windows.sample_window(&mut rng);
            let spec = SeqSpec {
                predicate: theta1(),
                window,
            };
            let channel_plan = LogicalPlan::source(format!("C.{stream_index}"))
                .followed_by(LogicalPlan::source("T"), spec.clone());
            let plain_plan = LogicalPlan::source(format!("S{stream_index}"))
                .followed_by(LogicalPlan::source("T"), spec);
            W3Query {
                stream_index,
                window,
                channel_plan,
                plain_plan,
                query: QueryId(i as u32),
            }
        })
        .collect()
}

/// Generates the µ variant of Workload 3 (`Si µθ1∧θ2,θ3 T`, §5.2's
/// closing remark: "we also performed experiments on channels with query
/// template Si µ T, and obtained similar results").
pub fn generate_mu(params: &Params, k: usize) -> Vec<W3Query> {
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x57_05);
    let windows = Zipf::new(params.window_domain.max(1) as usize, params.zipf);
    let (filter, rebind, map) = mu_parts(params.num_attrs);
    (0..params.num_queries)
        .map(|i| {
            let stream_index = i % k.max(1);
            let window = windows.sample_window(&mut rng);
            let spec = IterSpec {
                filter: filter.clone(),
                rebind: rebind.clone(),
                rebind_map: map.clone(),
                window,
            };
            let channel_plan = LogicalPlan::source(format!("C.{stream_index}"))
                .iterate(LogicalPlan::source("T"), spec.clone());
            let plain_plan = LogicalPlan::source(format!("S{stream_index}"))
                .iterate(LogicalPlan::source("T"), spec);
            W3Query {
                stream_index,
                window,
                channel_plan,
                plain_plan,
                query: QueryId(i as u32),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::{MopKind, Optimizer, OptimizerConfig, PlanGraph};
    use rumor_types::Schema;

    fn channel_plan_graph(n_queries: usize, k: usize) -> PlanGraph {
        let p = Params::default().with_queries(n_queries);
        let queries = generate(&p, k);
        let mut plan = PlanGraph::new();
        plan.add_source_group("C", Schema::ints(10), k).unwrap();
        plan.add_source("T", Schema::ints(10), None).unwrap();
        for q in &queries {
            plan.add_query(&q.channel_plan).unwrap();
        }
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();
        plan.validate().unwrap();
        plan
    }

    #[test]
    fn channel_mode_merges_across_streams() {
        let plan = channel_plan_graph(40, 10);
        // One channel-shared sequence m-op across all 10 streams.
        assert_eq!(plan.mop_count(), 1);
        let node = plan.mops().next().unwrap();
        assert_eq!(node.kind, MopKind::ChannelSequence);
        // The input channel is the source channel of capacity 10.
        assert_eq!(plan.channel(node.inputs[0]).capacity(), 10);
    }

    #[test]
    fn no_channel_mode_shares_per_stream_only() {
        let p = Params::default().with_queries(40);
        let queries = generate(&p, 10);
        let mut plan = PlanGraph::new();
        for i in 0..10 {
            plan.add_source(format!("S{i}"), Schema::ints(10), Some("w3".into()))
                .unwrap();
        }
        plan.add_source("T", Schema::ints(10), None).unwrap();
        for q in &queries {
            plan.add_query(&q.plain_plan).unwrap();
        }
        Optimizer::new(OptimizerConfig::without_channels())
            .optimize(&mut plan)
            .unwrap();
        plan.validate().unwrap();
        // Rule s; shares within each stream but not across: 10 m-ops.
        assert_eq!(plan.mop_count(), 10);
        assert!(plan.mops().all(|n| n.kind == MopKind::SharedSequence));
    }

    #[test]
    fn mu_variant_merges_under_c_mu() {
        let p = Params::default().with_queries(30);
        let queries = generate_mu(&p, 10);
        let mut plan = PlanGraph::new();
        plan.add_source_group("C", Schema::ints(10), 10).unwrap();
        plan.add_source("T", Schema::ints(10), None).unwrap();
        for q in &queries {
            plan.add_query(&q.channel_plan).unwrap();
        }
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();
        plan.validate().unwrap();
        assert_eq!(plan.mop_count(), 1);
        assert_eq!(plan.mops().next().unwrap().kind, MopKind::ChannelIterate);
    }

    #[test]
    fn queries_cycle_over_streams() {
        let p = Params::default().with_queries(25);
        let queries = generate(&p, 10);
        assert_eq!(queries[0].stream_index, 0);
        assert_eq!(queries[9].stream_index, 9);
        assert_eq!(queries[10].stream_index, 0);
        assert_eq!(queries[24].stream_index, 4);
    }
}
