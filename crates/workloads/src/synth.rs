//! Synthetic stream generation (§5.1): two streams S and T with the schema
//! of Table 3 (10 integer attributes plus the timestamp), consecutive
//! timestamps starting from 0, attribute values uniform in
//! `0..const_domain`, and tuple generation interleaved — even timestamps
//! belong to S, odd timestamps to T.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rumor_types::Tuple;

use crate::params::Params;

/// Which stream an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StTag {
    /// The S stream (even timestamps).
    S,
    /// The T stream (odd timestamps).
    T,
}

/// A generated input event.
#[derive(Debug, Clone)]
pub struct StEvent {
    /// Stream tag.
    pub tag: StTag,
    /// The tuple.
    pub tuple: Tuple,
}

fn random_tuple(rng: &mut StdRng, ts: u64, attrs: usize, domain: i64) -> Tuple {
    let values: Vec<i64> = (0..attrs)
        .map(|_| rng.gen_range(0..domain.max(1)))
        .collect();
    Tuple::ints(ts, &values)
}

/// Generates the interleaved S/T input of §5.1.
pub fn st_events(params: &Params) -> Vec<StEvent> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    (0..params.num_tuples as u64)
        .map(|ts| StEvent {
            tag: if ts % 2 == 0 { StTag::S } else { StTag::T },
            tuple: random_tuple(&mut rng, ts, params.num_attrs, params.const_domain),
        })
        .collect()
}

/// An event of the Workload 3 feeds (§5.2): either a channel tuple shared
/// by all of S1..Sk, a single-stream tuple Si (round-robin mode), or a T
/// tuple.
#[derive(Debug, Clone)]
pub enum W3Event {
    /// A tuple belonging to all `k` encoded streams (channel mode).
    Channel(Tuple),
    /// A tuple of one specific stream (round-robin, no-channel mode).
    Si(usize, Tuple),
    /// A T tuple.
    T(Tuple),
}

/// Generates the Workload 3 input in *channel* form: tuples alternate
/// between one channel tuple (belonging to all k streams) and one T tuple.
pub fn w3_channel_events(params: &Params, _k: usize) -> Vec<W3Event> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    (0..params.num_tuples as u64)
        .map(|ts| {
            let tuple = random_tuple(&mut rng, ts, params.num_attrs, params.const_domain);
            if ts % 2 == 0 {
                W3Event::Channel(tuple)
            } else {
                W3Event::T(tuple)
            }
        })
        .collect()
}

/// Generates the Workload 3 input in *round-robin* form: each round emits
/// `k` copies of the same content (one per stream Si, same timestamp) and
/// then one T tuple, so the two variants carry exactly the same content
/// (§5.2: "To ensure fairness in the comparison...").
pub fn w3_round_robin_events(params: &Params, k: usize) -> Vec<W3Event> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut out = Vec::new();
    let mut ts = 0u64;
    // Match the channel variant's content: the round's shared tuple is the
    // channel tuple, the round's T tuple is the same T tuple.
    while out.len() < params.num_tuples * (k + 1) / 2 {
        let shared = random_tuple(&mut rng, ts, params.num_attrs, params.const_domain);
        for i in 0..k {
            out.push(W3Event::Si(i, shared.with_values(shared.values().to_vec())));
        }
        ts += 1;
        let t = random_tuple(&mut rng, ts, params.num_attrs, params.const_domain);
        out.push(W3Event::T(t));
        ts += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn st_interleaving_and_domains() {
        let p = Params::default().with_tuples(100).with_const_domain(10);
        let events = st_events(&p);
        assert_eq!(events.len(), 100);
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.tuple.ts, i as u64, "consecutive timestamps");
            let expect = if i % 2 == 0 { StTag::S } else { StTag::T };
            assert_eq!(ev.tag, expect);
            assert_eq!(ev.tuple.arity(), 10);
            for v in ev.tuple.values() {
                let x = v.as_int().unwrap();
                assert!((0..10).contains(&x));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = Params::default().with_tuples(50);
        let a = st_events(&p);
        let b = st_events(&p);
        assert_eq!(
            a.iter().map(|e| e.tuple.clone()).collect::<Vec<_>>(),
            b.iter().map(|e| e.tuple.clone()).collect::<Vec<_>>()
        );
        let mut p2 = p.clone();
        p2.seed += 1;
        let c = st_events(&p2);
        assert_ne!(
            a.iter().map(|e| e.tuple.clone()).collect::<Vec<_>>(),
            c.iter().map(|e| e.tuple.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn w3_variants_share_content() {
        let p = Params::default().with_tuples(20);
        let k = 3;
        let ch = w3_channel_events(&p, k);
        let rr = w3_round_robin_events(&p, k);
        // Channel mode: alternating channel/T.
        assert!(matches!(ch[0], W3Event::Channel(_)));
        assert!(matches!(ch[1], W3Event::T(_)));
        // Round-robin: k copies with identical content then a T tuple.
        let W3Event::Si(0, ref first) = rr[0] else {
            panic!()
        };
        let W3Event::Si(1, ref second) = rr[1] else {
            panic!()
        };
        assert_eq!(first.values(), second.values());
        assert_eq!(first.ts, second.ts);
        assert!(matches!(rr[k], W3Event::T(_)));
        // Same content as the channel variant's first round.
        let W3Event::Channel(ref cfirst) = ch[0] else {
            panic!()
        };
        assert_eq!(cfirst.values(), first.values());
    }
}
