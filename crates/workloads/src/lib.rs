//! # rumor-workloads
//!
//! Workload generators reproducing §5 of the paper:
//!
//! * [`params::Params`] — the experimental parameters and defaults of
//!   Table 3.
//! * [`zipf::Zipf`] — the Zipfian sampler used for predicate constants and
//!   window lengths ("favoring larger windows", §5.1).
//! * [`synth`] — the two interleaved synthetic streams S and T (10 integer
//!   attributes, consecutive timestamps, §5.1).
//! * [`workload1`] — `σθ1(S) ;θ2∧θ3 T` (exercises the FR and AN indexes;
//!   Figure 9).
//! * [`workload2`] — `S ;θ1∧θ2 T` and `S µθ1∧θ2,θ3 T` (exercises the AI
//!   index; Figures 10(a,b)).
//! * [`workload3`] — sharable first input streams encoded by a channel
//!   (Figures 10(c,d)).
//! * [`perfmon`] — the simulated performance-counter datasets standing in
//!   for the paper's proprietary D1/D2 traces (see DESIGN.md §4).
//! * [`hybrid`] — the n-instance Query 2 workload over the perfmon data
//!   (Figure 11).
//!
//! Every generator produces *both* RUMOR logical plans and the equivalent
//! Cayuga automata from one description, so the two engines always measure
//! identical query sets.

#![warn(missing_docs)]

pub mod hybrid;
pub mod params;
pub mod perfmon;
pub mod synth;
pub mod workload1;
pub mod workload2;
pub mod workload3;
pub mod zipf;

pub use params::Params;
pub use zipf::Zipf;
