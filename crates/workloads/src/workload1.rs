//! Workload 1 (§5.2): queries of template `σθ1(S) ;θ2∧θ3 T`.
//!
//! θ1 is `S.a\[0\] = c1`, θ3 is `T.a\[0\] = c3` (both constants Zipfian), and
//! θ2 is the duration window (Zipfian, favoring large windows). This
//! workload exercises Cayuga's FR index (the θ1s) and AN index (the θ3s);
//! in RUMOR both surface as predicate-indexed selection m-ops — the θ1
//! index directly via rule sσ, the θ3 index after the `seq_pushdown`
//! rewrite.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rumor_cayuga::Automaton;
use rumor_core::{LogicalPlan, SeqSpec};
use rumor_expr::{CmpOp, Expr, Predicate};
use rumor_types::{QueryId, Schema};

use crate::params::Params;
use crate::zipf::Zipf;

/// One generated query, in both engine representations.
#[derive(Debug, Clone)]
pub struct W1Query {
    /// θ1 constant.
    pub c1: i64,
    /// θ3 constant.
    pub c3: i64,
    /// θ2 window.
    pub window: u64,
    /// RUMOR logical plan.
    pub plan: LogicalPlan,
    /// Equivalent Cayuga automaton.
    pub automaton: Automaton,
}

/// Generates the Workload 1 query set.
pub fn generate(params: &Params) -> Vec<W1Query> {
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x57_01);
    let consts = Zipf::new(params.const_domain.max(1) as usize, params.zipf);
    let windows = Zipf::new(params.window_domain.max(1) as usize, params.zipf);
    let schema = Schema::ints(params.num_attrs);
    (0..params.num_queries)
        .map(|i| {
            let c1 = consts.sample_constant(&mut rng);
            let c3 = consts.sample_constant(&mut rng);
            let window = windows.sample_window(&mut rng);
            let theta1 = Predicate::attr_eq_const(0, c1);
            // θ3 evaluated on each T tuple: an event-only predicate inside
            // the sequence operator (pushed down by `seq_pushdown`).
            let theta3 = Predicate::cmp(CmpOp::Eq, Expr::rcol(0), Expr::lit(c3));
            let plan = LogicalPlan::source("S").select(theta1.clone()).followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: theta3.clone(),
                    window,
                },
            );
            let automaton = Automaton::sequence(
                "S",
                &schema,
                theta1,
                "T",
                &schema,
                theta3,
                window,
                QueryId(i as u32),
            );
            W1Query {
                c1,
                c3,
                window,
                plan,
                automaton,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::{Optimizer, OptimizerConfig, PlanGraph};

    #[test]
    fn constants_and_windows_in_domain() {
        let p = Params::default()
            .with_queries(50)
            .with_const_domain(20)
            .with_window_domain(30);
        for q in generate(&p) {
            assert!((0..20).contains(&q.c1));
            assert!((0..20).contains(&q.c3));
            assert!((1..=30).contains(&q.window));
        }
    }

    #[test]
    fn optimizer_builds_two_indexes() {
        let p = Params::default().with_queries(40);
        let queries = generate(&p);
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(10), None).unwrap();
        plan.add_source("T", Schema::ints(10), None).unwrap();
        for q in &queries {
            plan.add_query(&q.plan).unwrap();
        }
        let trace = Optimizer::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();
        assert_eq!(trace.count("seq_pushdown"), 40);
        assert_eq!(trace.count("s_sigma"), 2, "FR index on S, AN index on T");
        plan.validate().unwrap();
    }

    #[test]
    fn zipf_commonality_appears() {
        // With high skew, many queries share θ1 — the prefix-merging /
        // CSE opportunity the paper's Figure 9(d) varies.
        let p = Params::default().with_queries(100).with_zipf(2.0);
        let queries = generate(&p);
        let zero_c1 = queries.iter().filter(|q| q.c1 == 0).count();
        assert!(zero_c1 > 10, "hot constant must repeat, got {zero_c1}");
    }
}
