//! Experimental parameters — Table 3 of the paper.

/// Workload generation parameters with the paper's default values.
#[derive(Debug, Clone)]
pub struct Params {
    /// Number of queries (Table 3 default: 1000).
    pub num_queries: usize,
    /// Number of integer attributes in the stream schemas (default: 10).
    pub num_attrs: usize,
    /// Constant domain size: predicate constants are drawn from
    /// `0..const_domain` (default: 1000).
    pub const_domain: i64,
    /// Window length domain size: windows are drawn from
    /// `1..=window_domain` (default: 1000).
    pub window_domain: u64,
    /// Zipfian parameter for constants and window lengths (default: 1.5).
    pub zipf: f64,
    /// Total input tuples per run (§5.1: "at least 100000").
    pub num_tuples: usize,
    /// RNG seed for reproducible workloads.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            num_queries: 1000,
            num_attrs: 10,
            const_domain: 1000,
            window_domain: 1000,
            zipf: 1.5,
            num_tuples: 100_000,
            seed: 0xC0FFEE,
        }
    }
}

impl Params {
    /// Builder-style override of the query count.
    pub fn with_queries(mut self, n: usize) -> Self {
        self.num_queries = n;
        self
    }

    /// Builder-style override of the constant domain.
    pub fn with_const_domain(mut self, d: i64) -> Self {
        self.const_domain = d;
        self
    }

    /// Builder-style override of the window domain.
    pub fn with_window_domain(mut self, d: u64) -> Self {
        self.window_domain = d;
        self
    }

    /// Builder-style override of the Zipf parameter.
    pub fn with_zipf(mut self, z: f64) -> Self {
        self.zipf = z;
        self
    }

    /// Builder-style override of the input size.
    pub fn with_tuples(mut self, n: usize) -> Self {
        self.num_tuples = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 3: the default values are exactly the paper's.
    #[test]
    fn table3_defaults() {
        let p = Params::default();
        assert_eq!(p.num_queries, 1000);
        assert_eq!(p.num_attrs, 10);
        assert_eq!(p.const_domain, 1000);
        assert_eq!(p.window_domain, 1000);
        assert_eq!(p.zipf, 1.5);
        assert!(p.num_tuples >= 100_000, "§5.1: at least 100000 tuples");
    }

    #[test]
    fn builders() {
        let p = Params::default()
            .with_queries(10)
            .with_const_domain(10)
            .with_window_domain(20)
            .with_zipf(2.0)
            .with_tuples(500);
        assert_eq!(p.num_queries, 10);
        assert_eq!(p.const_domain, 10);
        assert_eq!(p.window_domain, 20);
        assert_eq!(p.zipf, 2.0);
        assert_eq!(p.num_tuples, 500);
    }
}
