//! Stream tuples.

use std::fmt;
use std::sync::Arc;

use crate::Value;

/// Discrete event timestamps, as in the paper's benchmark streams (§5.1)
/// which use consecutive integer timestamps starting from 0.
pub type Timestamp = u64;

/// An immutable stream tuple: a timestamp plus a row of attribute values.
///
/// Tuples are reference counted, so fanning a tuple out to many consumer
/// operators (the common case in multi-query plans) costs one atomic
/// increment, not a copy. This mirrors the space-sharing motivation behind
/// channels (§3.1): a channel tuple shared by many streams is stored once.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    /// The required timestamp attribute (`ts` in the paper).
    pub ts: Timestamp,
    values: Arc<[Value]>,
}

impl Tuple {
    /// Creates a tuple from a timestamp and values.
    pub fn new(ts: Timestamp, values: Vec<Value>) -> Self {
        Tuple {
            ts,
            values: values.into(),
        }
    }

    /// Creates an integer tuple — the shape used throughout the paper's
    /// synthetic benchmark (10 integer attributes, §5.1).
    pub fn ints(ts: Timestamp, values: &[i64]) -> Self {
        Tuple {
            ts,
            values: values.iter().map(|&v| Value::Int(v)).collect(),
        }
    }

    /// The attribute values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Attribute at position `idx`.
    pub fn value(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Number of attributes (excluding the timestamp).
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Concatenates this tuple with another, keeping `other`'s timestamp.
    ///
    /// This is the event-concatenation step of the Cayuga `;`/`µ` operators:
    /// the composite event is stamped with the time of its *last*
    /// constituent event.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple {
            ts: other.ts,
            values: values.into(),
        }
    }

    /// Returns a copy with a replaced value vector, keeping the timestamp.
    pub fn with_values(&self, values: Vec<Value>) -> Tuple {
        Tuple {
            ts: self.ts,
            values: values.into(),
        }
    }

    /// Shares the underlying value storage (pointer equality), used by tests
    /// asserting that fan-out does not copy payloads.
    pub fn shares_storage(&self, other: &Tuple) -> bool {
        Arc::ptr_eq(&self.values, &other.values)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} [", self.ts)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_builder() {
        let t = Tuple::ints(5, &[1, 2, 3]);
        assert_eq!(t.ts, 5);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.value(1), Some(&Value::Int(2)));
        assert_eq!(t.value(3), None);
    }

    #[test]
    fn clone_shares_storage() {
        let t = Tuple::ints(0, &[1, 2]);
        let u = t.clone();
        assert!(t.shares_storage(&u));
    }

    #[test]
    fn concat_takes_right_timestamp() {
        let a = Tuple::ints(1, &[10]);
        let b = Tuple::ints(9, &[20, 30]);
        let c = a.concat(&b);
        assert_eq!(c.ts, 9);
        assert_eq!(
            c.values(),
            &[Value::Int(10), Value::Int(20), Value::Int(30)]
        );
    }

    #[test]
    fn with_values_keeps_timestamp() {
        let t = Tuple::ints(7, &[1]);
        let u = t.with_values(vec![Value::Bool(true)]);
        assert_eq!(u.ts, 7);
        assert_eq!(u.values(), &[Value::Bool(true)]);
    }

    #[test]
    fn display() {
        let t = Tuple::ints(3, &[1, 2]);
        assert_eq!(t.to_string(), "@3 [1, 2]");
    }
}
