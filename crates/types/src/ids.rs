//! Newtype identifiers for plan-graph and runtime entities.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw index.
            pub fn from_index(idx: usize) -> Self {
                $name(u32::try_from(idx).expect("id index overflow"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a (logical) stream in the plan catalog. In RUMOR, streams
    /// remain the unit of query semantics; channels encode sets of streams.
    StreamId,
    "s"
);
id_type!(
    /// Identifies a channel — the generalization of a stream that serves as
    /// m-op input/output in RUMOR (§3.1).
    ChannelId,
    "c"
);
id_type!(
    /// Identifies a physical multi-operator (m-op) node in the plan graph.
    MopId,
    "op"
);
id_type!(
    /// Identifies a registered continuous query.
    QueryId,
    "q"
);
id_type!(
    /// Identifies an external stream source feeding the engine.
    SourceId,
    "src"
);

/// An input port of an m-op. Binary operators such as the window join and
/// the Cayuga `;` / `µ` operators distinguish their first (left) and second
/// (right) input; unary operators use port 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u8);

impl PortId {
    /// Port 0 — the only port of unary operators; the left input of binaries.
    pub const LEFT: PortId = PortId(0);
    /// Port 1 — the right input of binary operators.
    pub const RIGHT: PortId = PortId(1);

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes() {
        assert_eq!(StreamId(3).to_string(), "s3");
        assert_eq!(ChannelId(1).to_string(), "c1");
        assert_eq!(MopId(0).to_string(), "op0");
        assert_eq!(QueryId(9).to_string(), "q9");
        assert_eq!(SourceId(2).to_string(), "src2");
        assert_eq!(PortId::RIGHT.to_string(), "p1");
    }

    #[test]
    fn index_roundtrip() {
        let id = StreamId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, StreamId(42));
    }

    #[test]
    fn ordering() {
        assert!(MopId(1) < MopId(2));
        assert!(PortId::LEFT < PortId::RIGHT);
    }
}
