//! Shared error type.

use std::fmt;

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, RumorError>;

/// Errors produced while building schemas, parsing queries, constructing
/// plans, applying rewrite rules, or executing them.
#[derive(Debug, Clone, PartialEq)]
pub enum RumorError {
    /// Schema construction or compatibility failure.
    Schema(String),
    /// Query-language parse error with 1-based line/column position.
    Parse {
        /// Human-readable message.
        message: String,
        /// 1-based line.
        line: u32,
        /// 1-based column.
        column: u32,
    },
    /// Expression / predicate type or arity error.
    Expr(String),
    /// Plan construction or validation failure.
    Plan(String),
    /// Rewrite-rule application failure.
    Rule(String),
    /// Runtime execution failure.
    Exec(String),
    /// Unknown name (stream, query, attribute...).
    Unknown(String),
    /// Lifecycle misuse of a finished runtime: pushing, flushing, or
    /// finishing again after `finish` has already been called. All
    /// execution-session implementations return exactly this variant for
    /// such misuse, so callers can match on it regardless of which engine
    /// backs the session.
    Finished(String),
    /// I/O or wire-protocol failure (socket read/write, framing, protocol
    /// violations). The error is carried as a rendered string so the enum
    /// stays `Clone + PartialEq`; the original `std::io::Error` kind is
    /// folded into the message.
    Io(String),
}

impl RumorError {
    /// Schema error constructor.
    pub fn schema(msg: impl Into<String>) -> Self {
        RumorError::Schema(msg.into())
    }

    /// Expression error constructor.
    pub fn expr(msg: impl Into<String>) -> Self {
        RumorError::Expr(msg.into())
    }

    /// Plan error constructor.
    pub fn plan(msg: impl Into<String>) -> Self {
        RumorError::Plan(msg.into())
    }

    /// Rule error constructor.
    pub fn rule(msg: impl Into<String>) -> Self {
        RumorError::Rule(msg.into())
    }

    /// Execution error constructor.
    pub fn exec(msg: impl Into<String>) -> Self {
        RumorError::Exec(msg.into())
    }

    /// Unknown-name error constructor.
    pub fn unknown(msg: impl Into<String>) -> Self {
        RumorError::Unknown(msg.into())
    }

    /// Finished-lifecycle misuse constructor: `op` names the rejected
    /// operation (e.g. `"push"`, `"finish"`).
    pub fn finished(op: impl Into<String>) -> Self {
        RumorError::Finished(op.into())
    }

    /// I/O / wire-protocol error constructor.
    pub fn io(msg: impl Into<String>) -> Self {
        RumorError::Io(msg.into())
    }

    /// Parse error constructor.
    pub fn parse(msg: impl Into<String>, line: u32, column: u32) -> Self {
        RumorError::Parse {
            message: msg.into(),
            line,
            column,
        }
    }
}

impl fmt::Display for RumorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RumorError::Schema(m) => write!(f, "schema error: {m}"),
            RumorError::Parse {
                message,
                line,
                column,
            } => write!(f, "parse error at {line}:{column}: {message}"),
            RumorError::Expr(m) => write!(f, "expression error: {m}"),
            RumorError::Plan(m) => write!(f, "plan error: {m}"),
            RumorError::Rule(m) => write!(f, "rule error: {m}"),
            RumorError::Exec(m) => write!(f, "execution error: {m}"),
            RumorError::Unknown(m) => write!(f, "unknown name: {m}"),
            RumorError::Finished(op) => {
                write!(f, "runtime already finished: `{op}` rejected")
            }
            RumorError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl From<std::io::Error> for RumorError {
    fn from(e: std::io::Error) -> Self {
        RumorError::Io(format!("{} ({:?})", e, e.kind()))
    }
}

impl std::error::Error for RumorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(RumorError::schema("dup").to_string(), "schema error: dup");
        assert_eq!(
            RumorError::parse("bad token", 2, 7).to_string(),
            "parse error at 2:7: bad token"
        );
        assert_eq!(RumorError::plan("cycle").to_string(), "plan error: cycle");
        assert_eq!(
            RumorError::exec("boom").to_string(),
            "execution error: boom"
        );
        assert_eq!(RumorError::rule("nope").to_string(), "rule error: nope");
        assert_eq!(
            RumorError::unknown("stream X").to_string(),
            "unknown name: stream X"
        );
        assert_eq!(
            RumorError::expr("arity").to_string(),
            "expression error: arity"
        );
        assert_eq!(
            RumorError::finished("push").to_string(),
            "runtime already finished: `push` rejected"
        );
        assert_eq!(
            RumorError::io("short read").to_string(),
            "io error: short read"
        );
    }

    #[test]
    fn from_io_error() {
        let e = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "peer vanished");
        let r: RumorError = e.into();
        match &r {
            RumorError::Io(m) => {
                assert!(m.contains("peer vanished"), "message lost: {m}");
                assert!(m.contains("UnexpectedEof"), "kind lost: {m}");
            }
            other => panic!("expected Io variant, got {other:?}"),
        }
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&RumorError::plan("x"));
    }
}
