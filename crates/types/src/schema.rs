//! Stream schemas.

use std::fmt;
use std::sync::Arc;

use crate::{Result, RumorError, Value};

/// The type of a single schema field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    Str,
}

impl ValueType {
    /// Whether `value` conforms to this type (`Null` conforms to every type).
    pub fn admits(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (ValueType::Int, Value::Int(_))
                | (ValueType::Float, Value::Float(_))
                | (ValueType::Bool, Value::Bool(_))
                | (ValueType::Str, Value::Str(_))
        )
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Int => "INT",
            ValueType::Float => "FLOAT",
            ValueType::Bool => "BOOL",
            ValueType::Str => "STR",
        };
        write!(f, "{s}")
    }
}

/// A named, typed schema field.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Attribute name.
    pub name: String,
    /// Attribute type.
    pub ty: ValueType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// A stream schema: an ordered list of named, typed fields.
///
/// Every stream tuple additionally carries the required timestamp attribute
/// (`ts` in the paper), which is *not* part of the field list — it is stored
/// out-of-band on [`crate::Tuple`].
///
/// Schemas are reference counted internally so plan nodes and operators can
/// share them without copying.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    fields: Arc<[Field]>,
}

impl Schema {
    /// Creates a schema from fields. Field names must be unique.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(RumorError::schema(format!(
                    "duplicate field name `{}`",
                    f.name
                )));
            }
        }
        Ok(Schema {
            fields: fields.into(),
        })
    }

    /// Convenience constructor for the paper's synthetic benchmark schema:
    /// `n` integer attributes named `a0..a{n-1}` (§5.1 uses `n = 10`).
    pub fn ints(n: usize) -> Self {
        let fields = (0..n)
            .map(|i| Field::new(format!("a{i}"), ValueType::Int))
            .collect();
        Schema { fields }
    }

    /// The empty schema.
    pub fn empty() -> Self {
        Schema {
            fields: Arc::from([]),
        }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Index of the field with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field at `idx`.
    pub fn field(&self, idx: usize) -> Option<&Field> {
        self.fields.get(idx)
    }

    /// Whether a row of values conforms to this schema (arity and types).
    pub fn admits(&self, values: &[Value]) -> bool {
        values.len() == self.fields.len()
            && self.fields.iter().zip(values).all(|(f, v)| f.ty.admits(v))
    }

    /// Union compatibility (§3.1): channels may only encode streams whose
    /// schemas are union-compatible. We require identical field types in
    /// order; names may differ (the paper allows renaming/padding).
    pub fn union_compatible(&self, other: &Schema) -> bool {
        self.fields.len() == other.fields.len()
            && self
                .fields
                .iter()
                .zip(other.fields.iter())
                .all(|(a, b)| a.ty == b.ty)
    }

    /// Concatenates two schemas, prefixing right-side duplicate names.
    ///
    /// Used by the binary `;`, `µ`, and join operators whose outputs range
    /// over the concatenation of both input schemas.
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut fields: Vec<Field> = self.fields.to_vec();
        for f in other.fields.iter() {
            let mut name = f.name.clone();
            if fields.iter().any(|g| g.name == name) {
                name = format!("r.{name}");
                let mut k = 1;
                while fields.iter().any(|g| g.name == name) {
                    name = format!("r{k}.{}", f.name);
                    k += 1;
                }
            }
            fields.push(Field::new(name, f.ty));
        }
        Schema {
            fields: fields.into(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_schema_names_and_types() {
        let s = Schema::ints(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("a0"), Some(0));
        assert_eq!(s.index_of("a2"), Some(2));
        assert_eq!(s.index_of("a3"), None);
        assert_eq!(s.field(1).unwrap().ty, ValueType::Int);
    }

    #[test]
    fn duplicate_names_rejected() {
        let fields = vec![
            Field::new("x", ValueType::Int),
            Field::new("x", ValueType::Float),
        ];
        assert!(Schema::new(fields).is_err());
    }

    #[test]
    fn admits_checks_arity_and_types() {
        let s = Schema::ints(2);
        assert!(s.admits(&[Value::Int(1), Value::Int(2)]));
        assert!(s.admits(&[Value::Int(1), Value::Null]));
        assert!(!s.admits(&[Value::Int(1)]));
        assert!(!s.admits(&[Value::Int(1), Value::Float(2.0)]));
    }

    #[test]
    fn union_compatibility_ignores_names() {
        let a = Schema::new(vec![
            Field::new("x", ValueType::Int),
            Field::new("y", ValueType::Float),
        ])
        .unwrap();
        let b = Schema::new(vec![
            Field::new("u", ValueType::Int),
            Field::new("v", ValueType::Float),
        ])
        .unwrap();
        let c = Schema::new(vec![
            Field::new("u", ValueType::Float),
            Field::new("v", ValueType::Int),
        ])
        .unwrap();
        assert!(a.union_compatible(&b));
        assert!(!a.union_compatible(&c));
        assert!(!a.union_compatible(&Schema::ints(3)));
    }

    #[test]
    fn concat_renames_duplicates() {
        let a = Schema::ints(2);
        let b = Schema::ints(2);
        let c = a.concat(&b);
        assert_eq!(c.len(), 4);
        assert_eq!(c.index_of("a0"), Some(0));
        assert_eq!(c.index_of("r.a0"), Some(2));
        assert_eq!(c.index_of("r.a1"), Some(3));
    }

    #[test]
    fn concat_triple_renames() {
        let a = Schema::ints(1);
        let c = a.concat(&a).concat(&a);
        assert_eq!(c.len(), 3);
        assert_eq!(c.index_of("a0"), Some(0));
        assert_eq!(c.index_of("r.a0"), Some(1));
        assert_eq!(c.index_of("r1.a0"), Some(2));
    }

    #[test]
    fn display_roundtrip_shape() {
        let s = Schema::ints(2);
        assert_eq!(s.to_string(), "(a0: INT, a1: INT)");
    }

    #[test]
    fn empty_schema() {
        let s = Schema::empty();
        assert!(s.is_empty());
        assert!(s.admits(&[]));
    }
}
