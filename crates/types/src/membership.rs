//! The membership component of channel tuples (§3.1 of the paper).
//!
//! A channel encodes a set of streams; each channel tuple carries a
//! *membership component* that records the subset of encoded streams the
//! tuple belongs to. The paper implements it as a bit vector "for
//! efficiency"; we do the same, with a small-size optimization: memberships
//! over at most 64 streams (by far the common case — channel capacities in
//! the paper's experiments range from 5 to 25) are a single inline `u64`
//! with no heap allocation.

use std::fmt;

/// A set of stream positions within a channel, implemented as a bit vector.
///
/// Positions are indices into the channel's encoded stream list, *not*
/// global [`crate::StreamId`]s; the channel definition owns that mapping.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Membership {
    /// Bit `i` set means the tuple belongs to encoded stream `i` (i < 64).
    Inline(u64),
    /// Spilled representation for channels encoding more than 64 streams.
    /// Invariant: the vector never has trailing zero words and always has
    /// more than one word (otherwise the inline representation is used).
    Heap(Vec<u64>),
}

impl Membership {
    /// The empty membership (belongs to no stream).
    pub fn empty() -> Self {
        Membership::Inline(0)
    }

    /// Membership containing only stream position `idx`.
    pub fn singleton(idx: usize) -> Self {
        let mut m = Membership::empty();
        m.insert(idx);
        m
    }

    /// Membership containing positions `0..n` (a tuple belonging to *all*
    /// streams of a capacity-`n` channel, as in Workload 3 of §5.2).
    pub fn all(n: usize) -> Self {
        let mut m = Membership::empty();
        for i in 0..n {
            m.insert(i);
        }
        m
    }

    /// Builds a membership from stream positions.
    pub fn from_indices(indices: impl IntoIterator<Item = usize>) -> Self {
        let mut m = Membership::empty();
        for i in indices {
            m.insert(i);
        }
        m
    }

    fn words(&self) -> &[u64] {
        match self {
            Membership::Inline(w) => std::slice::from_ref(w),
            Membership::Heap(v) => v,
        }
    }

    fn normalize(words: Vec<u64>) -> Membership {
        let mut words = words;
        while words.len() > 1 && *words.last().unwrap() == 0 {
            words.pop();
        }
        if words.len() == 1 {
            Membership::Inline(words[0])
        } else {
            Membership::Heap(words)
        }
    }

    /// Adds stream position `idx`.
    pub fn insert(&mut self, idx: usize) {
        let word = idx / 64;
        let bit = 1u64 << (idx % 64);
        match self {
            Membership::Inline(w) if word == 0 => *w |= bit,
            Membership::Inline(w) => {
                let mut v = vec![*w];
                v.resize(word + 1, 0);
                v[word] |= bit;
                *self = Membership::Heap(v);
            }
            Membership::Heap(v) => {
                if v.len() <= word {
                    v.resize(word + 1, 0);
                }
                v[word] |= bit;
            }
        }
    }

    /// Removes stream position `idx`.
    pub fn remove(&mut self, idx: usize) {
        let word = idx / 64;
        let bit = 1u64 << (idx % 64);
        match self {
            Membership::Inline(w) => {
                if word == 0 {
                    *w &= !bit;
                }
            }
            Membership::Heap(v) => {
                if word < v.len() {
                    v[word] &= !bit;
                    *self = Membership::normalize(std::mem::take(v));
                }
            }
        }
    }

    /// Whether stream position `idx` is a member.
    pub fn contains(&self, idx: usize) -> bool {
        let word = idx / 64;
        let bit = 1u64 << (idx % 64);
        self.words().get(word).is_some_and(|w| w & bit != 0)
    }

    /// True if no stream position is set.
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Number of member stream positions.
    pub fn len(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Set union: membership in either input.
    pub fn union(&self, other: &Membership) -> Membership {
        let (long, short) = if self.words().len() >= other.words().len() {
            (self.words(), other.words())
        } else {
            (other.words(), self.words())
        };
        let mut out = long.to_vec();
        for (o, s) in out.iter_mut().zip(short) {
            *o |= s;
        }
        Membership::normalize(out)
    }

    /// Set intersection: membership in both inputs.
    ///
    /// This is the core channel operation: e.g. the channelized stopping
    /// condition m-op (§4.4) intersects a pattern instance's membership with
    /// the set of queries whose predicate the closing event satisfies.
    pub fn intersect(&self, other: &Membership) -> Membership {
        let n = self.words().len().min(other.words().len());
        let out: Vec<u64> = self.words()[..n]
            .iter()
            .zip(&other.words()[..n])
            .map(|(a, b)| a & b)
            .collect();
        Membership::normalize(if out.is_empty() { vec![0] } else { out })
    }

    /// Set difference: members of `self` not in `other`.
    pub fn difference(&self, other: &Membership) -> Membership {
        let mut out = self.words().to_vec();
        for (o, s) in out.iter_mut().zip(other.words()) {
            *o &= !s;
        }
        Membership::normalize(out)
    }

    /// Whether every member of `self` is also in `other`.
    pub fn is_subset(&self, other: &Membership) -> bool {
        self.difference(other).is_empty()
    }

    /// Iterates member stream positions in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words().iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }
}

impl Default for Membership {
    fn default() -> Self {
        Membership::empty()
    }
}

impl fmt::Debug for Membership {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, idx) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{idx}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<usize> for Membership {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        Membership::from_indices(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        let e = Membership::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let s = Membership::singleton(7);
        assert!(s.contains(7));
        assert!(!s.contains(6));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn insert_remove_inline() {
        let mut m = Membership::empty();
        m.insert(0);
        m.insert(63);
        assert_eq!(m.len(), 2);
        m.remove(0);
        assert!(!m.contains(0));
        assert!(m.contains(63));
        m.remove(63);
        assert!(m.is_empty());
    }

    #[test]
    fn spills_to_heap_and_normalizes_back() {
        let mut m = Membership::singleton(3);
        m.insert(130);
        assert!(matches!(m, Membership::Heap(_)));
        assert!(m.contains(3));
        assert!(m.contains(130));
        assert_eq!(m.len(), 2);
        m.remove(130);
        assert!(matches!(m, Membership::Inline(_)));
        assert_eq!(m, Membership::singleton(3));
    }

    #[test]
    fn equality_is_representation_independent() {
        let mut a = Membership::singleton(1);
        a.insert(200);
        a.remove(200);
        let b = Membership::singleton(1);
        assert_eq!(a, b);
    }

    #[test]
    fn all_covers_prefix() {
        let m = Membership::all(10);
        assert_eq!(m.len(), 10);
        assert!(m.contains(0));
        assert!(m.contains(9));
        assert!(!m.contains(10));
        let big = Membership::all(100);
        assert_eq!(big.len(), 100);
        assert!(big.contains(99));
    }

    #[test]
    fn union_intersect_difference() {
        let a = Membership::from_indices([0, 2, 70]);
        let b = Membership::from_indices([2, 3]);
        assert_eq!(a.union(&b), Membership::from_indices([0, 2, 3, 70]));
        assert_eq!(a.intersect(&b), Membership::from_indices([2]));
        assert_eq!(a.difference(&b), Membership::from_indices([0, 70]));
        assert_eq!(b.difference(&a), Membership::from_indices([3]));
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = Membership::from_indices([0, 1]);
        let b = Membership::from_indices([2, 3]);
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn subset() {
        let a = Membership::from_indices([1, 2]);
        let b = Membership::from_indices([0, 1, 2, 3]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(Membership::empty().is_subset(&a));
    }

    #[test]
    fn iter_in_order() {
        let m = Membership::from_indices([130, 0, 64, 5]);
        let v: Vec<usize> = m.iter().collect();
        assert_eq!(v, vec![0, 5, 64, 130]);
    }

    #[test]
    fn debug_format() {
        let m = Membership::from_indices([1, 2]);
        assert_eq!(format!("{m:?}"), "[1,2]");
    }

    #[test]
    fn from_iterator() {
        let m: Membership = [3usize, 1].into_iter().collect();
        assert_eq!(m, Membership::from_indices([1, 3]));
    }
}
