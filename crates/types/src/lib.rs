//! # rumor-types
//!
//! Foundation types for the RUMOR rule-based multi-query optimization
//! framework (Hong et al., *Rule-Based Multi-Query Optimization*, EDBT 2009).
//!
//! This crate contains the data-plane vocabulary shared by every other crate
//! in the workspace:
//!
//! * [`Value`] — dynamically typed attribute values carried by stream tuples.
//! * [`Schema`] / [`Field`] — stream schemas, including the union-compatible
//!   padding used when several streams are encoded into one channel (§3.1 of
//!   the paper).
//! * [`Tuple`] — an immutable, cheaply clonable stream tuple with the
//!   mandatory timestamp attribute.
//! * [`Membership`] — the *membership component* bit vector a channel tuple
//!   carries to record which encoded streams it belongs to.
//! * id newtypes ([`StreamId`], [`ChannelId`], [`MopId`], [`QueryId`], ...)
//!   used by the plan graph and runtime.
//! * [`RumorError`] — the shared error type.
//!
//! Everything here is deliberately engine-agnostic: both the RUMOR query-plan
//! engine and the Cayuga-style automaton baseline are built on these types so
//! cross-engine comparisons (Figures 9 and 10 of the paper) share one data
//! representation.

#![warn(missing_docs)]

mod error;
mod ids;
mod membership;
mod schema;
mod tuple;
mod value;

pub use error::{Result, RumorError};
pub use ids::{ChannelId, MopId, PortId, QueryId, SourceId, StreamId};
pub use membership::Membership;
pub use schema::{Field, Schema, ValueType};
pub use tuple::{Timestamp, Tuple};
pub use value::{OrdValue, Value, ValueKey};
