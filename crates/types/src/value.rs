//! Dynamically typed attribute values.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single attribute value inside a stream tuple.
///
/// The paper's synthetic benchmark (§5.1) uses integer attributes only, but
/// the library supports the usual scalar types so the performance-monitoring
/// scenario (§4.1) can carry floating-point CPU loads and process names.
///
/// `Value` is cheap to clone: strings are reference counted.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Interned UTF-8 string.
    Str(Arc<str>),
    /// SQL-style NULL. Comparisons against `Null` are always false.
    Null,
}

#[allow(clippy::should_implement_trait)] // add/sub/mul/div are evaluation
                                         // helpers with SQL NULL semantics, not operator-trait candidates.
impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Returns the integer payload if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload, coercing integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string payload if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Three-valued comparison used by predicate evaluation.
    ///
    /// Numeric types compare with coercion (`Int` vs `Float` compares as
    /// floats); any comparison involving `Null`, NaN, or mismatched
    /// non-numeric types yields `None` (unknown), which predicates treat as
    /// *false* — the usual SQL semantics.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            _ => None,
        }
    }

    /// Checked addition with numeric coercion. `Null` is absorbing.
    pub fn add(&self, other: &Value) -> Value {
        self.arith(other, |a, b| a.wrapping_add(b), |a, b| a + b)
    }

    /// Checked subtraction with numeric coercion. `Null` is absorbing.
    pub fn sub(&self, other: &Value) -> Value {
        self.arith(other, |a, b| a.wrapping_sub(b), |a, b| a - b)
    }

    /// Checked multiplication with numeric coercion. `Null` is absorbing.
    pub fn mul(&self, other: &Value) -> Value {
        self.arith(other, |a, b| a.wrapping_mul(b), |a, b| a * b)
    }

    /// Division with numeric coercion; integer division by zero yields `Null`.
    pub fn div(&self, other: &Value) -> Value {
        use Value::*;
        match (self, other) {
            (Int(_), Int(0)) => Null,
            (Int(a), Int(b)) => Int(a.wrapping_div(*b)),
            (a, b) => match (a.as_float(), b.as_float()) {
                (Some(x), Some(y)) if y != 0.0 => Float(x / y),
                _ => Null,
            },
        }
    }

    /// Modulo with numeric coercion; by-zero yields `Null`.
    pub fn rem(&self, other: &Value) -> Value {
        use Value::*;
        match (self, other) {
            (Int(_), Int(0)) => Null,
            (Int(a), Int(b)) => Int(a.wrapping_rem(*b)),
            _ => Null,
        }
    }

    fn arith(
        &self,
        other: &Value,
        int_op: impl Fn(i64, i64) -> i64,
        float_op: impl Fn(f64, f64) -> f64,
    ) -> Value {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Int(int_op(*a, *b)),
            (a, b) => match (a.as_float(), b.as_float()) {
                (Some(x), Some(y)) => Float(float_op(x, y)),
                _ => Null,
            },
        }
    }

    /// A hashable key for grouping (group-by, hash joins, predicate indexes).
    ///
    /// Floats are keyed by bit pattern, which is adequate for grouping: two
    /// floats group together iff they are bitwise identical.
    pub fn group_key(&self) -> ValueKey {
        match self {
            Value::Int(v) => ValueKey::Int(*v),
            Value::Float(v) => ValueKey::Float(v.to_bits()),
            Value::Bool(v) => ValueKey::Bool(*v),
            Value::Str(s) => ValueKey::Str(s.clone()),
            Value::Null => ValueKey::Null,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

/// A [`Value`] wrapper with a *total* order, for ordered containers
/// (min/max multisets under sliding-window eviction).
///
/// Order: `Null < Bool < Int/Float (numeric, coerced) < Str`. Floats use
/// IEEE `total_cmp`, so NaN is ordered (after +∞) instead of poisoning the
/// container.
#[derive(Debug, Clone, PartialEq)]
pub struct OrdValue(pub Value);

impl OrdValue {
    fn rank(&self) -> u8 {
        match &self.0 {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl Eq for OrdValue {}

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (&self.0, &other.0) {
            (Int(a), Int(b)) => a.cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Null, Null) => Ordering::Equal,
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

/// Hashable, totally equatable projection of a [`Value`] used as a map key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueKey {
    /// Integer key.
    Int(i64),
    /// Float key by bit pattern.
    Float(u64),
    /// Boolean key.
    Bool(bool),
    /// String key.
    Str(Arc<str>),
    /// Null key.
    Null,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_numeric_coercion() {
        assert_eq!(
            Value::Int(3).compare(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(2.5).compare(&Value::Int(3)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(4).compare(&Value::Int(3)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn compare_null_and_mismatch_is_unknown() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).compare(&Value::Null), None);
        assert_eq!(Value::str("a").compare(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).compare(&Value::Float(1.0)), None);
    }

    #[test]
    fn compare_nan_is_unknown() {
        assert_eq!(Value::Float(f64::NAN).compare(&Value::Float(1.0)), None);
    }

    #[test]
    fn string_compare() {
        assert_eq!(
            Value::str("abc").compare(&Value::str("abd")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn arithmetic_int() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)), Value::Int(5));
        assert_eq!(Value::Int(2).sub(&Value::Int(3)), Value::Int(-1));
        assert_eq!(Value::Int(2).mul(&Value::Int(3)), Value::Int(6));
        assert_eq!(Value::Int(7).div(&Value::Int(2)), Value::Int(3));
        assert_eq!(Value::Int(7).rem(&Value::Int(2)), Value::Int(1));
    }

    #[test]
    fn arithmetic_mixed_coerces_to_float() {
        assert_eq!(Value::Int(2).add(&Value::Float(0.5)), Value::Float(2.5));
        assert_eq!(Value::Float(1.0).div(&Value::Int(4)), Value::Float(0.25));
    }

    #[test]
    fn arithmetic_null_absorbs() {
        assert_eq!(Value::Null.add(&Value::Int(1)), Value::Null);
        assert_eq!(Value::Int(1).mul(&Value::Null), Value::Null);
        assert_eq!(Value::str("x").add(&Value::Int(1)), Value::Null);
    }

    #[test]
    fn division_by_zero_is_null() {
        assert_eq!(Value::Int(1).div(&Value::Int(0)), Value::Null);
        assert_eq!(Value::Float(1.0).div(&Value::Int(0)), Value::Null);
        assert_eq!(Value::Int(1).rem(&Value::Int(0)), Value::Null);
    }

    #[test]
    fn group_keys_distinguish_types() {
        assert_ne!(Value::Int(1).group_key(), Value::Bool(true).group_key());
        assert_ne!(Value::Int(0).group_key(), Value::Null.group_key());
        assert_eq!(Value::str("a").group_key(), Value::str("a").group_key());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Int(2).as_float(), Some(2.0));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::str("hi").as_int(), None);
    }

    #[test]
    fn ord_value_total_order() {
        let mut v = [
            OrdValue(Value::Float(2.5)),
            OrdValue(Value::Int(3)),
            OrdValue(Value::Int(1)),
            OrdValue(Value::Null),
            OrdValue(Value::Float(-1.0)),
        ];
        v.sort();
        assert_eq!(v[0], OrdValue(Value::Null));
        assert_eq!(v[1], OrdValue(Value::Float(-1.0)));
        assert_eq!(v[2], OrdValue(Value::Int(1)));
        assert_eq!(v[3], OrdValue(Value::Float(2.5)));
        assert_eq!(v[4], OrdValue(Value::Int(3)));
        // NaN is ordered, not poisonous.
        assert!(OrdValue(Value::Float(f64::NAN)) > OrdValue(Value::Float(f64::INFINITY)));
    }

    #[test]
    fn from_impls_and_display() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::str("a").to_string(), "\"a\"");
    }
}
