//! Property-based tests for the membership bit vector: the channel
//! membership component must behave exactly like a set of small integers,
//! across both the inline and spilled representations.

use proptest::prelude::*;
use rumor_types::Membership;
use std::collections::BTreeSet;

fn idx() -> impl Strategy<Value = usize> {
    // Cover both the inline (<64) and heap (>=64) representations.
    prop_oneof![0usize..64, 64usize..300]
}

fn index_set() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(idx(), 0..40)
}

fn model(v: &[usize]) -> BTreeSet<usize> {
    v.iter().copied().collect()
}

proptest! {
    #[test]
    fn matches_btreeset_membership(a in index_set(), probe in idx()) {
        let m = Membership::from_indices(a.iter().copied());
        let s = model(&a);
        prop_assert_eq!(m.contains(probe), s.contains(&probe));
        prop_assert_eq!(m.len(), s.len());
        prop_assert_eq!(m.is_empty(), s.is_empty());
    }

    #[test]
    fn iter_yields_sorted_model(a in index_set()) {
        let m = Membership::from_indices(a.iter().copied());
        let got: Vec<usize> = m.iter().collect();
        let want: Vec<usize> = model(&a).into_iter().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn union_intersect_difference_match_model(a in index_set(), b in index_set()) {
        let ma = Membership::from_indices(a.iter().copied());
        let mb = Membership::from_indices(b.iter().copied());
        let sa = model(&a);
        let sb = model(&b);

        let union: Vec<usize> = ma.union(&mb).iter().collect();
        let want_union: Vec<usize> = sa.union(&sb).copied().collect();
        prop_assert_eq!(union, want_union);

        let inter: Vec<usize> = ma.intersect(&mb).iter().collect();
        let want_inter: Vec<usize> = sa.intersection(&sb).copied().collect();
        prop_assert_eq!(inter, want_inter);

        let diff: Vec<usize> = ma.difference(&mb).iter().collect();
        let want_diff: Vec<usize> = sa.difference(&sb).copied().collect();
        prop_assert_eq!(diff, want_diff);
    }

    #[test]
    fn insert_remove_roundtrip(a in index_set(), x in idx()) {
        let mut m = Membership::from_indices(a.iter().copied());
        let before = m.clone();
        let was_member = m.contains(x);
        m.insert(x);
        prop_assert!(m.contains(x));
        if !was_member {
            m.remove(x);
            prop_assert_eq!(m, before);
        }
    }

    #[test]
    fn equality_independent_of_insertion_order(a in index_set()) {
        let m1 = Membership::from_indices(a.iter().copied());
        let mut rev = a.clone();
        rev.reverse();
        let m2 = Membership::from_indices(rev);
        prop_assert_eq!(m1, m2);
    }

    #[test]
    fn subset_laws(a in index_set(), b in index_set()) {
        let ma = Membership::from_indices(a.iter().copied());
        let mb = Membership::from_indices(b.iter().copied());
        let inter = ma.intersect(&mb);
        prop_assert!(inter.is_subset(&ma));
        prop_assert!(inter.is_subset(&mb));
        prop_assert!(ma.is_subset(&ma.union(&mb)));
        prop_assert_eq!(ma.is_subset(&mb) && mb.is_subset(&ma), ma == mb);
    }

    #[test]
    fn union_laws(a in index_set(), b in index_set(), c in index_set()) {
        let ma = Membership::from_indices(a.iter().copied());
        let mb = Membership::from_indices(b.iter().copied());
        let mc = Membership::from_indices(c.iter().copied());
        // Commutativity and associativity.
        prop_assert_eq!(ma.union(&mb), mb.union(&ma));
        prop_assert_eq!(ma.union(&mb).union(&mc), ma.union(&mb.union(&mc)));
        // Identity and idempotence.
        prop_assert_eq!(ma.union(&Membership::empty()), ma.clone());
        prop_assert_eq!(ma.union(&ma), ma.clone());
        // Distributivity of intersection over union.
        prop_assert_eq!(
            ma.intersect(&mb.union(&mc)),
            ma.intersect(&mb).union(&ma.intersect(&mc))
        );
    }
}
