//! The physical multi-operator (m-op) execution interface (§2.2).
//!
//! An m-op is the scheduling and execution unit of the engine. It implements
//! a *set* of member operators; its reference semantics is the one-by-one
//! execution of those members, and any shared implementation must be
//! input/output-equivalent to that reference (§2.2). The traits here are
//! shared between `rumor-ops` (implementations) and `rumor-engine`
//! (scheduling): `rumor-core` defines the contract, not the algorithms.

use rumor_types::{
    ChannelId, Membership, MopId, PortId, Result, RumorError, Schema, StreamId, Tuple,
};

use crate::channel::ChannelTuple;
use crate::logical::OpDef;
use crate::plan::{MopKind, PlanGraph};

/// Output collector handed to an m-op during processing.
///
/// Emission is channel-based: the *encoding step* of §3.1 is the membership
/// argument. Emitting to a member's singleton output channel uses a
/// singleton membership; channelized m-ops emit one tuple with the full
/// membership of satisfied output streams.
pub trait Emit {
    /// Emits `tuple` on `channel` for the encoded streams in `membership`.
    fn emit(&mut self, channel: ChannelId, tuple: Tuple, membership: Membership);
}

/// A no-op sink that counts emissions; useful in tests and benchmarks.
#[derive(Debug, Default)]
pub struct CountingEmit {
    /// Number of `emit` calls.
    pub calls: usize,
    /// Total membership cardinality emitted.
    pub streams: usize,
}

impl Emit for CountingEmit {
    fn emit(&mut self, _channel: ChannelId, _tuple: Tuple, membership: Membership) {
        self.calls += 1;
        self.streams += membership.len();
    }
}

/// An emit sink that records every emission; used by unit tests.
#[derive(Debug, Default)]
pub struct VecEmit {
    /// Recorded `(channel, tuple, membership)` triples in emission order.
    pub out: Vec<(ChannelId, Tuple, Membership)>,
}

impl Emit for VecEmit {
    fn emit(&mut self, channel: ChannelId, tuple: Tuple, membership: Membership) {
        self.out.push((channel, tuple, membership));
    }
}

/// A physical m-op instance.
///
/// The engine calls [`MultiOp::process`] once per input channel tuple, in
/// global timestamp order. All state lives inside the operator.
///
/// Batched execution: engines that route events at batch granularity call
/// [`MultiOp::process_batch`] with a run of consecutive tuples from one
/// input channel. The default implementation falls back to per-tuple
/// processing; implementations override it to hoist routing, lookup, and
/// allocation work out of the per-tuple loop. Overrides must stay
/// observationally equivalent to the per-tuple loop (the §2.2 obligation
/// extends to batching).
pub trait MultiOp: Send {
    /// Processes one input tuple arriving on `port`, writing any outputs.
    fn process(&mut self, port: PortId, input: &ChannelTuple, out: &mut dyn Emit);

    /// Processes an ordered run of tuples from `port`'s input channel.
    ///
    /// Equivalent to calling [`MultiOp::process`] once per tuple in order,
    /// up to the interleaving of emissions across *different* output
    /// channel positions (per-position output order and content must be
    /// identical — that is what downstream decoding and query delivery
    /// observe). Overridden by hot operators to amortize per-tuple
    /// overhead.
    fn process_batch(&mut self, port: PortId, inputs: &[ChannelTuple], out: &mut dyn Emit) {
        for input in inputs {
            self.process(port, input, out);
        }
    }

    /// Processes a strictly-timestamp-ordered run of tuples from `port`'s
    /// input channel through *stateful* state, with a relaxed emission-order
    /// contract that lets keyed implementations regroup the run by state
    /// key and walk each key's sub-batch in one pass (hash once per key
    /// instead of once per tuple — the head-indexing idea applied to the
    /// batch dimension).
    ///
    /// Contract, weaker than [`MultiOp::process_batch`]:
    ///
    /// * the caller guarantees `inputs` is ordered by strictly increasing
    ///   `tuple.ts` (ties must take the per-tuple path);
    /// * every emitted tuple carries the timestamp of the input tuple that
    ///   triggered it;
    /// * a *stable* sort of the emissions by timestamp must reproduce the
    ///   per-tuple loop's emission sequence exactly. Implementations may
    ///   therefore reorder emissions across inputs of different
    ///   timestamps (per-key grouping does), but never reorder or alter
    ///   the emissions triggered by one input.
    ///
    /// The engine's strict drain re-sorts the collected emissions by
    /// timestamp before cascading, so downstream operators and query taps
    /// observe the per-event order. The default forwards to the per-tuple
    /// loop, which satisfies the contract trivially.
    fn process_batch_keyed(&mut self, port: PortId, inputs: &[ChannelTuple], out: &mut dyn Emit) {
        for input in inputs {
            self.process(port, input, out);
        }
    }

    /// True when this *stateful* operator tolerates **port-grouped** strict
    /// delivery: within one timestamp-ordered batch, the engine may feed it
    /// all of one input port's tuples (in timestamp order) before all of
    /// another port's, lower port numbers first, instead of interleaving
    /// ports in global timestamp order.
    ///
    /// Safe exactly when (a) lower ports only *write* state (instance or
    /// window arrivals that read nothing), and (b) higher ports guard every
    /// match against the probing tuple's timestamp (rejecting state entries
    /// at or after it) with eviction that is a pure GC horizon. Under those
    /// two conditions a probe observes precisely the state the per-event
    /// engine would have shown it, no matter how many same-batch future
    /// arrivals were inserted early. Single-input operators qualify
    /// trivially (their one channel is always delivered in timestamp
    /// order). Operators that return `true` unlock the engine's
    /// channel-grouped strict drain, which drives
    /// [`MultiOp::process_batch_keyed`] with whole per-channel runs; the
    /// default `false` keeps the strict per-event path.
    fn port_batch_safe(&self) -> bool {
        false
    }

    /// True when this operator emits **at most one channel tuple per
    /// output channel per input tuple** — members sharing an output
    /// channel are grouped into a single emission carrying their union
    /// membership, never one emission each.
    ///
    /// This is the encoding-step guarantee of §3.1 (one payload, one
    /// membership mask), and it is what the engine's hybrid batching gate
    /// needs from a stateless prefix: a multi-member channel whose
    /// producer groups emissions still carries ≤ 1 event per source event,
    /// so strict (stateful) consumers downstream see the per-event
    /// delivery order under the stable timestamp sort. Operators whose
    /// members may emit *distinct payloads* onto one shared channel
    /// (per-member projections) must keep the default `false`.
    fn grouped_emission(&self) -> bool {
        false
    }

    /// True when the operator keeps no state across input tuples, so its
    /// outputs depend only on each single input tuple.
    ///
    /// When *every* operator of a plan is stateless the engine may relax
    /// strict global timestamp-order delivery into channel-run-batched
    /// delivery (which reorders tuples *across* channels but never within
    /// one), unlocking the batched fast path. Stateful operators (windowed
    /// joins, sequences, aggregates, iterations) must return `false`.
    fn is_stateless(&self) -> bool {
        false
    }

    /// How this operator's state is keyed over its input attributes — the
    /// introspection behind the partitioning analysis
    /// ([`crate::partition::analyze`]). Stateless operators are transparent
    /// to partitioning; stateful implementations override this to report
    /// their equi keys (joins, AI-indexed sequences, keyed iterations) or
    /// group-by attributes (window aggregates). The default is maximally
    /// conservative: stateful operators that do not report a key structure
    /// are treated as opaque and pin their plan component to one worker.
    fn partition_keys(&self) -> crate::partition::PartitionKeys {
        if self.is_stateless() {
            crate::partition::PartitionKeys::Stateless
        } else {
            crate::partition::PartitionKeys::Opaque
        }
    }

    /// Current resident state size, in implementation-defined units —
    /// live sequence/iterate instances, buffered join tuples, window
    /// occupancy plus group count for aggregates. A gauge for the
    /// introspection layer (`rumor-engine`'s `Session::stats`), not a
    /// byte count; stateless operators keep the default `0`.
    fn state_size(&self) -> usize {
        0
    }

    /// Implementation name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Everything a physical implementation needs to know about one member
/// operator, resolved against the plan.
///
/// `PartialEq` is part of the hot-swap contract: two equal contexts compile
/// to interchangeable operator instances, so [`crate::plan::PlanDelta`]
/// classifies an m-op as *unchanged* (state may carry across a plan swap)
/// exactly when its rebuilt context compares equal.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberCtx {
    /// The member's operator definition.
    pub def: OpDef,
    /// For each port `p`: the position of the member's port-`p` input stream
    /// within the m-op's port-`p` input channel (the decoding key, §3.1).
    pub input_positions: Vec<usize>,
    /// Input schemas, one per port.
    pub input_schemas: Vec<Schema>,
    /// The member's output stream.
    pub output: StreamId,
    /// The channel encoding the output stream.
    pub out_channel: ChannelId,
    /// Position of the output stream within `out_channel` (the encoding
    /// key).
    pub out_position: usize,
    /// Capacity of the output channel (1 = plain stream).
    pub out_capacity: usize,
    /// Output schema.
    pub output_schema: Schema,
}

impl MemberCtx {
    /// Emits a tuple on this member's output stream alone.
    pub fn emit_solo(&self, out: &mut dyn Emit, tuple: Tuple) {
        out.emit(
            self.out_channel,
            tuple,
            Membership::singleton(self.out_position),
        );
    }
}

/// The resolved execution context of an m-op: definition plus all channel
/// positions, ready for a physical implementation to consume.
#[derive(Debug, Clone, PartialEq)]
pub struct MopContext {
    /// Plan node id.
    pub id: MopId,
    /// Implementation kind selected by the rewrite rules.
    pub kind: MopKind,
    /// Input channels by port.
    pub inputs: Vec<ChannelId>,
    /// Capacity of each input channel, parallel to `inputs`.
    pub input_capacities: Vec<usize>,
    /// Member contexts in member order.
    pub members: Vec<MemberCtx>,
}

impl MopContext {
    /// Resolves the execution context for plan node `id`.
    pub fn build(plan: &PlanGraph, id: MopId) -> Result<Self> {
        let node = plan
            .mop_opt(id)
            .ok_or_else(|| RumorError::plan(format!("retired m-op {id}")))?;
        let mut members = Vec::with_capacity(node.members.len());
        for m in &node.members {
            let input_positions = m
                .inputs
                .iter()
                .map(|&s| plan.position_in_channel(s))
                .collect();
            let input_schemas = m
                .inputs
                .iter()
                .map(|&s| plan.stream(s).schema.clone())
                .collect();
            let out_channel = plan.channel_of(m.output);
            members.push(MemberCtx {
                def: m.def.clone(),
                input_positions,
                input_schemas,
                output: m.output,
                out_channel,
                out_position: plan.position_in_channel(m.output),
                out_capacity: plan.channel(out_channel).capacity(),
                output_schema: plan.stream(m.output).schema.clone(),
            });
        }
        let input_capacities = node
            .inputs
            .iter()
            .map(|&c| plan.channel(c).capacity())
            .collect();
        Ok(MopContext {
            id,
            kind: node.kind,
            inputs: node.inputs.clone(),
            input_capacities,
            members,
        })
    }

    /// Whether all members share one definition (the channelized m-ops
    /// exploit this to evaluate once per tuple).
    pub fn uniform_def(&self) -> bool {
        self.members.windows(2).all(|w| w[0].def == w[1].def)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanGraph;
    use rumor_expr::Predicate;
    use rumor_types::Schema;

    #[test]
    fn build_context_resolves_positions() {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(2), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let (a, out_a) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 1i64)), vec![s])
            .unwrap();
        let (b, out_b) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 2i64)), vec![s])
            .unwrap();
        let merged = p.merge_mops(&[a, b], MopKind::IndexedSelect).unwrap();
        let ch = p.encode_channel(&[out_a, out_b]).unwrap();

        let ctx = MopContext::build(&p, merged).unwrap();
        assert_eq!(ctx.kind, MopKind::IndexedSelect);
        assert_eq!(ctx.members.len(), 2);
        assert_eq!(ctx.members[0].input_positions, vec![0]);
        assert_eq!(ctx.members[0].out_channel, ch);
        assert_eq!(ctx.members[0].out_position, 0);
        assert_eq!(ctx.members[1].out_position, 1);
        assert!(!ctx.uniform_def());
    }

    #[test]
    fn counting_emit() {
        let mut e = CountingEmit::default();
        e.emit(
            ChannelId(0),
            Tuple::ints(0, &[1]),
            Membership::from_indices([0, 1, 2]),
        );
        assert_eq!(e.calls, 1);
        assert_eq!(e.streams, 3);
    }

    #[test]
    fn member_emit_solo_uses_out_position() {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(1), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let (id, _) = p.add_op(OpDef::Select(Predicate::True), vec![s]).unwrap();
        let ctx = MopContext::build(&p, id).unwrap();
        let mut sink = VecEmit::default();
        ctx.members[0].emit_solo(&mut sink, Tuple::ints(0, &[7]));
        let (ch, _, m) = &sink.out[0];
        assert_eq!(*ch, ctx.members[0].out_channel);
        assert_eq!(*m, Membership::singleton(0));
    }
}
