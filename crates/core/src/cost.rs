//! Lightweight plan-cost annotations — the beginning of the cost-based
//! rule driver the paper lists as future work (§7).
//!
//! The estimates are deliberately coarse: they model the *per-input-event
//! work* of each m-op kind as a function of its member count and channel
//! capacities, enough to (a) explain in diagnostics why a rewrite helped
//! and (b) compare rule orderings in the ablation benchmarks. They are not
//! used to veto rewrites (the §3.2 sharing criteria already encode the
//! paper's lightweight heuristic); a true cost-driven optimizer would
//! thread selectivity estimates through the plan, which remains future
//! work here too.

use crate::plan::{MopKind, PlanGraph};

/// Cost summary of one m-op.
#[derive(Debug, Clone, PartialEq)]
pub struct MopCost {
    /// The node's kind.
    pub kind: MopKind,
    /// Number of member operators implemented.
    pub members: usize,
    /// Estimated evaluations per input tuple: how many member-level
    /// predicate/aggregate evaluations one arriving tuple triggers.
    pub evals_per_tuple: f64,
    /// Estimated state copies kept per logical input tuple (1.0 = stored
    /// once; `n` = each member keeps its own copy).
    pub state_copies: f64,
}

/// Cost summary of a whole plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanCost {
    /// Live m-ops.
    pub mops: usize,
    /// Total member operators.
    pub members: usize,
    /// Sum of per-node estimated evaluations per tuple.
    pub evals_per_tuple: f64,
    /// Sum of per-node state copies.
    pub state_copies: f64,
    /// Per-node details, in topological order.
    pub nodes: Vec<MopCost>,
}

/// Estimates the per-event cost profile of a plan.
///
/// Model assumptions, per kind:
///
/// * `Naive`: every member evaluates every tuple — `n` evaluations, `n`
///   state copies.
/// * `IndexedSelect`: a hash probe replaces the indexable members (O(1)
///   amortized, counted as 1) plus one evaluation per unindexable member.
/// * shared/channel kinds: one evaluation per *distinct definition* and a
///   single shared state copy; channelized kinds add a constant membership
///   decode/encode overhead (the §3.2 time overhead), counted as 0.1.
pub fn estimate(plan: &PlanGraph) -> PlanCost {
    let mut total = PlanCost::default();
    let order = plan.topo_order().unwrap_or_default();
    for id in order {
        let node = plan.mop(id);
        let n = node.members.len() as f64;
        let mut distinct_defs: Vec<&crate::logical::OpDef> = Vec::new();
        for m in &node.members {
            if !distinct_defs.contains(&&m.def) {
                distinct_defs.push(&m.def);
            }
        }
        let d = distinct_defs.len() as f64;
        let (evals, copies) = match node.kind {
            MopKind::Naive => (n, n),
            MopKind::IndexedSelect => {
                let unindexable = node
                    .members
                    .iter()
                    .filter(|m| match &m.def {
                        crate::logical::OpDef::Select(p) => {
                            p.as_eq_const().is_none() && !matches!(p, rumor_expr::Predicate::And(_))
                        }
                        _ => true,
                    })
                    .count() as f64;
                (1.0 + unindexable, n)
            }
            MopKind::SharedProject => (d, n),
            MopKind::SharedAggregate => (1.0 + n, 1.0), // shared buffer, per-member groups
            MopKind::SharedJoin | MopKind::SharedSequence | MopKind::SharedIterate => {
                (1.0, 1.0) // one probe/evaluation; shared state
            }
            MopKind::ChannelSelect
            | MopKind::ChannelProject
            | MopKind::FragmentAggregate
            | MopKind::PrecisionJoin
            | MopKind::ChannelSequence
            | MopKind::ChannelIterate => (d + 0.1, 1.0),
        };
        total.mops += 1;
        total.members += node.members.len();
        total.evals_per_tuple += evals;
        total.state_copies += copies;
        total.nodes.push(MopCost {
            kind: node.kind,
            members: node.members.len(),
            evals_per_tuple: evals,
            state_copies: copies,
        });
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::LogicalPlan;
    use crate::rules::{Optimizer, OptimizerConfig};
    use rumor_expr::Predicate;
    use rumor_types::Schema;

    fn selections(n: i64) -> PlanGraph {
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(2), None).unwrap();
        for c in 0..n {
            plan.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, c)))
                .unwrap();
        }
        plan
    }

    #[test]
    fn optimization_reduces_estimated_cost() {
        let mut plan = selections(16);
        let before = estimate(&plan);
        assert_eq!(before.evals_per_tuple, 16.0);
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();
        let after = estimate(&plan);
        assert_eq!(after.mops, 1);
        assert_eq!(after.members, 16);
        assert!(
            after.evals_per_tuple < before.evals_per_tuple / 4.0,
            "index should collapse evaluations: {after:?}"
        );
    }

    #[test]
    fn shared_state_counted_once() {
        use crate::logical::SeqSpec;
        use rumor_expr::{CmpOp, Expr};
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(2), None).unwrap();
        plan.add_source("T", Schema::ints(2), None).unwrap();
        for w in [10u64, 20, 30] {
            plan.add_query(&LogicalPlan::source("S").followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                    window: w,
                },
            ))
            .unwrap();
        }
        let before = estimate(&plan);
        assert_eq!(before.state_copies, 3.0);
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();
        let after = estimate(&plan);
        assert_eq!(after.state_copies, 1.0, "one shared instance store");
    }

    #[test]
    fn node_details_in_topo_order() {
        let mut plan = selections(2);
        let cost = estimate(&plan);
        assert_eq!(cost.nodes.len(), 2);
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();
        let cost = estimate(&plan);
        assert_eq!(cost.nodes.len(), 1);
        assert_eq!(cost.nodes[0].members, 2);
    }
}
