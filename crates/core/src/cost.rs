//! The plan cost model behind the cost-based rule driver (the §7 future
//! work the paper lists, implemented here as
//! [`crate::rules::SearchStrategy::CostBased`]).
//!
//! Two layers:
//!
//! * **Per-tuple work profile** — [`estimate`] models the *per-input-event
//!   work* of each m-op kind as a function of its member count and channel
//!   capacities (evaluations per tuple, state copies). These are the
//!   numbers diagnostics and the ablation benchmarks report.
//! * **Selectivity threading** — [`estimate_with`] additionally propagates
//!   a per-stream event-rate estimate through the plan in topological
//!   order: every source stream carries rate 1.0 (one event per source
//!   arrival), and each member's output rate is its input rate scaled by
//!   the member's selectivity. The per-node work is weighted by the rate
//!   actually reaching the node, so a selective prefix makes everything
//!   downstream cheap — the signal the cost-based search ranks candidate
//!   rewrites by.
//!
//! ## Cost-model assumptions
//!
//! Selectivities come from a [`SelectivityModel`]: measured per-m-op
//! values when calibrated from a live `StatsSnapshot` (see
//! `rumor_engine::StatsSnapshot::selectivity_model`), defaults per
//! operator kind otherwise:
//!
//! | operator | default selectivity | rationale |
//! |---|---|---|
//! | σ equality on a constant | 0.1 | point predicate on a modest domain |
//! | σ general | 0.5 | coin-flip predicate |
//! | π | 1.0 | projections pass everything |
//! | α | 1.0 | sliding windows emit per input event |
//! | ⋈ / `;` | 0.5 | windowed match against bounded state |
//! | µ | 0.5 | iteration advance per input event |
//!
//! A measured override is recorded per *m-op* (the stats layer counts at
//! m-op granularity) and applied uniformly to every member of that node —
//! a coarse but calibrated approximation. Plans whose topological sort
//! fails (a cycle introduced by a broken rewrite) do **not** estimate as
//! free: [`estimate`] propagates the error, and the search layer scores
//! such plans as infinitely expensive.

use std::collections::HashMap;

use rumor_types::{MopId, Result, StreamId};

use crate::logical::OpDef;
use crate::plan::{MopKind, PlanGraph};

/// Per-member selectivity estimates used by [`estimate_with`].
///
/// Starts from the per-kind defaults documented in the module docs;
/// [`SelectivityModel::from_measured`] (or
/// `rumor_engine::StatsSnapshot::selectivity_model`) overrides them with
/// live measured events-out/events-in ratios keyed by m-op id.
#[derive(Debug, Clone, Default)]
pub struct SelectivityModel {
    overrides: HashMap<MopId, f64>,
    /// Measured relative wall-time weight per m-op (1.0 = the workload's
    /// mean nanoseconds-per-event). Scales the per-node work term in
    /// [`estimate_with`], so a calibrated search prices work where the
    /// time was actually measured to go.
    time_weights: HashMap<MopId, f64>,
}

impl SelectivityModel {
    /// The default model: per-kind selectivities only, no measurements.
    pub fn new() -> Self {
        SelectivityModel::default()
    }

    /// Builds a model from measured per-m-op selectivities (typically a
    /// `StatsSnapshot`'s `events_out / events_in` per op). Values are
    /// clamped to `[0, 1e6]`; non-finite measurements are dropped.
    pub fn from_measured(measured: impl IntoIterator<Item = (MopId, f64)>) -> Self {
        let mut model = SelectivityModel::default();
        for (mop, s) in measured {
            model = model.with_override(mop, s);
        }
        model
    }

    /// Adds (or replaces) one measured per-m-op selectivity.
    pub fn with_override(mut self, mop: MopId, selectivity: f64) -> Self {
        if selectivity.is_finite() {
            self.overrides.insert(mop, selectivity.clamp(0.0, 1e6));
        }
        self
    }

    /// The measured selectivity recorded for an m-op, if any.
    pub fn override_for(&self, mop: MopId) -> Option<f64> {
        self.overrides.get(&mop).copied()
    }

    /// Adds (or replaces) one measured per-m-op time weight: the op's
    /// measured nanoseconds-per-event relative to the workload mean
    /// (1.0). Non-finite or non-positive weights are dropped; values are
    /// clamped to `[1e-3, 1e3]` so one noisy sample cannot dominate the
    /// estimate.
    pub fn with_time_weight(mut self, mop: MopId, weight: f64) -> Self {
        if weight.is_finite() && weight > 0.0 {
            self.time_weights.insert(mop, weight.clamp(1e-3, 1e3));
        }
        self
    }

    /// The time weight applied to an m-op's work term (1.0 when no
    /// measurement was recorded).
    pub fn time_weight_for(&self, mop: MopId) -> f64 {
        self.time_weights.get(&mop).copied().unwrap_or(1.0)
    }

    /// Whether the model carries any measured overrides.
    pub fn is_calibrated(&self) -> bool {
        !self.overrides.is_empty() || !self.time_weights.is_empty()
    }

    /// Default per-kind selectivity of one member definition (see the
    /// module docs for the table and rationale).
    pub fn default_selectivity(def: &OpDef) -> f64 {
        match def {
            OpDef::Select(p) => {
                if p.as_eq_const().is_some() {
                    0.1
                } else {
                    0.5
                }
            }
            OpDef::Project(_) => 1.0,
            OpDef::Aggregate(_) => 1.0,
            OpDef::Join(_) | OpDef::Sequence(_) | OpDef::Iterate(_) => 0.5,
        }
    }
}

/// Cost summary of one m-op.
#[derive(Debug, Clone, PartialEq)]
pub struct MopCost {
    /// The node's kind.
    pub kind: MopKind,
    /// Number of member operators implemented.
    pub members: usize,
    /// Estimated evaluations per input tuple: how many member-level
    /// predicate/aggregate evaluations one arriving tuple triggers.
    pub evals_per_tuple: f64,
    /// Estimated state copies kept per logical input tuple (1.0 = stored
    /// once; `n` = each member keeps its own copy).
    pub state_copies: f64,
    /// Estimated events reaching this node per source arrival — the
    /// selectivity-weighted input rate the node's work is scaled by.
    pub input_rate: f64,
}

/// Cost summary of a whole plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanCost {
    /// Live m-ops.
    pub mops: usize,
    /// Total member operators.
    pub members: usize,
    /// Sum of per-node estimated evaluations per tuple (unweighted — the
    /// per-tuple work profile diagnostics report).
    pub evals_per_tuple: f64,
    /// Sum of per-node state copies.
    pub state_copies: f64,
    /// Selectivity-weighted total work: Σ over nodes of
    /// `evals_per_tuple × input_rate` — estimated member evaluations per
    /// source arrival, the primary signal of the cost-based search.
    pub work: f64,
    /// Per-node details, in topological order.
    pub nodes: Vec<MopCost>,
}

impl PlanCost {
    /// The scalar the cost-based search minimizes:
    /// `work + 0.25 × state_copies + 0.01 × mops`.
    ///
    /// Work dominates (it is the per-event CPU bill); the state term
    /// prefers shared instance stores at equal work; the m-op term is a
    /// tie-breaker toward smaller plans (fewer scheduler hops), small
    /// enough never to outvote a real work difference.
    pub fn score(&self) -> f64 {
        self.work + 0.25 * self.state_copies + 0.01 * self.mops as f64
    }
}

/// Estimates the per-event cost profile of a plan under the default
/// (uncalibrated) selectivity model.
///
/// Errors when the plan has no topological order (a cycle): a broken plan
/// must never estimate as free. See [`estimate_with`] for the model.
pub fn estimate(plan: &PlanGraph) -> Result<PlanCost> {
    estimate_with(plan, &SelectivityModel::default())
}

/// Estimates the per-event cost profile of a plan, threading selectivity
/// estimates from `model` through the plan.
///
/// Per-tuple work assumptions, per kind:
///
/// * `Naive`: every member evaluates every tuple — `n` evaluations, `n`
///   state copies.
/// * `IndexedSelect`: a hash probe replaces the indexable members (O(1)
///   amortized, counted as 1) plus one evaluation per unindexable member.
/// * shared/channel kinds: one evaluation per *distinct definition* and a
///   single shared state copy; channelized kinds add a constant membership
///   decode/encode overhead (the §3.2 time overhead), counted as 0.1.
///
/// Rate threading: source streams carry rate 1.0; a member's output rate
/// is the sum of its input rates times its selectivity (measured per-m-op
/// override when the model has one, per-kind default otherwise). A node's
/// work contribution is its per-tuple evaluation count weighted by the
/// rate arriving at the node, scaled by the model's measured time weight
/// for the node ([`SelectivityModel::with_time_weight`], 1.0 when
/// uncalibrated) — so an op measured to burn more wall time per event
/// than its evaluation count suggests is priced accordingly.
pub fn estimate_with(plan: &PlanGraph, model: &SelectivityModel) -> Result<PlanCost> {
    let order = plan.topo_order()?;
    let mut rate: HashMap<StreamId, f64> = HashMap::new();
    for src in plan.sources() {
        for &s in &src.streams {
            rate.insert(s, 1.0);
        }
    }
    let mut total = PlanCost::default();
    for id in order {
        let node = plan.mop(id);
        let n = node.members.len() as f64;
        let mut distinct_defs: Vec<&OpDef> = Vec::new();
        for m in &node.members {
            if !distinct_defs.contains(&&m.def) {
                distinct_defs.push(&m.def);
            }
        }
        let d = distinct_defs.len() as f64;
        let (evals, copies) = match node.kind {
            MopKind::Naive => (n, n),
            MopKind::IndexedSelect => {
                let unindexable = node
                    .members
                    .iter()
                    .filter(|m| match &m.def {
                        OpDef::Select(p) => {
                            p.as_eq_const().is_none() && !matches!(p, rumor_expr::Predicate::And(_))
                        }
                        _ => true,
                    })
                    .count() as f64;
                (1.0 + unindexable, n)
            }
            MopKind::SharedProject => (d, n),
            MopKind::SharedAggregate => (1.0 + n, 1.0), // shared buffer, per-member groups
            MopKind::SharedJoin | MopKind::SharedSequence | MopKind::SharedIterate => {
                (1.0, 1.0) // one probe/evaluation; shared state
            }
            MopKind::ChannelSelect
            | MopKind::ChannelProject
            | MopKind::FragmentAggregate
            | MopKind::PrecisionJoin
            | MopKind::ChannelSequence
            | MopKind::ChannelIterate => (d + 0.1, 1.0),
        };
        // Rate arriving at the node: one delivery per distinct input
        // stream arrival (members reading the same stream share it).
        let mut seen: Vec<StreamId> = Vec::new();
        let mut input_rate = 0.0;
        for m in &node.members {
            for &s in &m.inputs {
                if !seen.contains(&s) {
                    seen.push(s);
                    input_rate += rate.get(&s).copied().unwrap_or(1.0);
                }
            }
        }
        // Thread member output rates for downstream nodes.
        for m in &node.members {
            let member_in: f64 = m
                .inputs
                .iter()
                .map(|s| rate.get(s).copied().unwrap_or(1.0))
                .sum();
            let sel = model
                .override_for(id)
                .unwrap_or_else(|| SelectivityModel::default_selectivity(&m.def));
            rate.insert(m.output, member_in * sel);
        }
        total.mops += 1;
        total.members += node.members.len();
        total.evals_per_tuple += evals;
        total.state_copies += copies;
        total.work += evals * input_rate * model.time_weight_for(id);
        total.nodes.push(MopCost {
            kind: node.kind,
            members: node.members.len(),
            evals_per_tuple: evals,
            state_copies: copies,
            input_rate,
        });
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::LogicalPlan;
    use crate::rules::{Optimizer, OptimizerConfig};
    use rumor_expr::Predicate;
    use rumor_types::Schema;

    fn selections(n: i64) -> PlanGraph {
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(2), None).unwrap();
        for c in 0..n {
            plan.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, c)))
                .unwrap();
        }
        plan
    }

    #[test]
    fn optimization_reduces_estimated_cost() {
        let mut plan = selections(16);
        let before = estimate(&plan).unwrap();
        assert_eq!(before.evals_per_tuple, 16.0);
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();
        let after = estimate(&plan).unwrap();
        assert_eq!(after.mops, 1);
        assert_eq!(after.members, 16);
        assert!(
            after.evals_per_tuple < before.evals_per_tuple / 4.0,
            "index should collapse evaluations: {after:?}"
        );
        assert!(after.score() < before.score());
    }

    #[test]
    fn shared_state_counted_once() {
        use crate::logical::SeqSpec;
        use rumor_expr::{CmpOp, Expr};
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(2), None).unwrap();
        plan.add_source("T", Schema::ints(2), None).unwrap();
        for w in [10u64, 20, 30] {
            plan.add_query(&LogicalPlan::source("S").followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                    window: w,
                },
            ))
            .unwrap();
        }
        let before = estimate(&plan).unwrap();
        assert_eq!(before.state_copies, 3.0);
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();
        let after = estimate(&plan).unwrap();
        assert_eq!(after.state_copies, 1.0, "one shared instance store");
    }

    #[test]
    fn node_details_in_topo_order() {
        let mut plan = selections(2);
        let cost = estimate(&plan).unwrap();
        assert_eq!(cost.nodes.len(), 2);
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();
        let cost = estimate(&plan).unwrap();
        assert_eq!(cost.nodes.len(), 1);
        assert_eq!(cost.nodes[0].members, 2);
    }

    /// Regression: a plan whose topological sort fails (a cycle smuggled
    /// in by a broken rewrite) must error, not estimate as an empty —
    /// free — plan that a cost-based search would happily commit to.
    #[test]
    fn cyclic_plan_errors_instead_of_estimating_free() {
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(2), None).unwrap();
        let q = plan
            .add_query(
                &LogicalPlan::source("S")
                    .select(Predicate::attr_eq_const(0, 1i64))
                    .select(Predicate::attr_eq_const(1, 1i64)),
            )
            .unwrap();
        // Feed the first select its own downstream select's output:
        // schema-compatible (selections preserve schemas), topologically a
        // cycle.
        let out = plan.query_output(q).unwrap();
        let first = plan
            .mops()
            .find(|n| plan.consumers_of(n.members[0].output).len() == 1)
            .map(|n| n.id)
            .unwrap();
        plan.rewire_member_input(first, 0, 0, out).unwrap();
        assert!(plan.topo_order().is_err(), "rewire created a cycle");
        assert!(
            estimate(&plan).is_err(),
            "cyclic plan must not estimate as free"
        );
    }

    /// Selectivity threading: a selective prefix discounts downstream
    /// work, and a measured override changes the estimate.
    #[test]
    fn selectivity_threading_discounts_downstream_work() {
        use crate::logical::{AggFunc, AggSpec};
        use rumor_expr::Expr;
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(2), None).unwrap();
        plan.add_query(
            &LogicalPlan::source("S")
                .select(Predicate::attr_eq_const(0, 1i64))
                .aggregate(AggSpec {
                    func: AggFunc::Sum,
                    input: Expr::col(1),
                    group_by: vec![],
                    window: 10,
                }),
        )
        .unwrap();
        let cost = estimate(&plan).unwrap();
        // The aggregate sits behind an eq-const select (default 0.1), so
        // its weighted work is a tenth of its unweighted profile.
        let agg = cost
            .nodes
            .iter()
            .find(|n| n.evals_per_tuple == 1.0 && n.input_rate < 1.0)
            .expect("aggregate node with discounted rate");
        assert!((agg.input_rate - 0.1).abs() < 1e-9, "{agg:?}");

        // Calibrate the select's selectivity to 1.0 (measured: everything
        // passes) — downstream rate and total work must rise.
        let select_id = plan
            .mops()
            .find(|n| matches!(n.members[0].def, OpDef::Select(_)))
            .map(|n| n.id)
            .unwrap();
        let calibrated = estimate_with(
            &plan,
            &SelectivityModel::new().with_override(select_id, 1.0),
        )
        .unwrap();
        assert!(calibrated.work > cost.work, "{calibrated:?} vs {cost:?}");
        assert_eq!(calibrated.evals_per_tuple, cost.evals_per_tuple);
    }

    /// Time calibration: a measured time weight scales a node's work
    /// term without touching the unweighted per-tuple profile.
    #[test]
    fn time_weights_scale_work_only() {
        let plan = selections(4);
        let base = estimate(&plan).unwrap();
        let ids: Vec<MopId> = plan.mops().map(|n| n.id).collect();
        let mut model = SelectivityModel::new();
        for &id in &ids {
            model = model.with_time_weight(id, 2.0);
        }
        assert!(model.is_calibrated());
        let weighted = estimate_with(&plan, &model).unwrap();
        assert!((weighted.work - 2.0 * base.work).abs() < 1e-9);
        assert_eq!(weighted.evals_per_tuple, base.evals_per_tuple);
        assert_eq!(weighted.state_copies, base.state_copies);
        // Sanitization: junk weights are dropped, big ones clamped.
        let m = SelectivityModel::new()
            .with_time_weight(MopId(0), f64::NAN)
            .with_time_weight(MopId(1), -1.0)
            .with_time_weight(MopId(2), 1e9);
        assert_eq!(m.time_weight_for(MopId(0)), 1.0);
        assert_eq!(m.time_weight_for(MopId(1)), 1.0);
        assert_eq!(m.time_weight_for(MopId(2)), 1e3);
    }

    #[test]
    fn selectivity_model_sanitizes_measurements() {
        let model = SelectivityModel::from_measured(vec![
            (MopId(0), 0.5),
            (MopId(1), f64::NAN),
            (MopId(2), -3.0),
        ]);
        assert!(model.is_calibrated());
        assert_eq!(model.override_for(MopId(0)), Some(0.5));
        assert_eq!(model.override_for(MopId(1)), None, "NaN dropped");
        assert_eq!(model.override_for(MopId(2)), Some(0.0), "clamped");
        assert!(!SelectivityModel::new().is_calibrated());
    }
}
