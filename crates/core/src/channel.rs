//! Channel tuples — stream tuples tagged with a membership component (§3.1).

use rumor_types::{Membership, Tuple};

/// A tuple flowing through a channel.
///
/// A channel is logically the union of a set of streams; each channel tuple
/// carries a [`Membership`] bit vector recording the subset of encoded
/// streams the tuple belongs to. For a plain stream (a channel of capacity
/// one — the degenerate, zero-overhead case) the membership is always
/// `{0}`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelTuple {
    /// The payload tuple. Reference counted: cloning a channel tuple for
    /// fan-out to several consumers shares the value storage.
    pub tuple: Tuple,
    /// Which encoded streams (by position within the channel) this tuple
    /// belongs to.
    pub membership: Membership,
}

impl ChannelTuple {
    /// A tuple of a single-stream channel.
    pub fn solo(tuple: Tuple) -> Self {
        ChannelTuple {
            tuple,
            membership: Membership::singleton(0),
        }
    }

    /// A tuple with explicit membership.
    pub fn new(tuple: Tuple, membership: Membership) -> Self {
        ChannelTuple { tuple, membership }
    }

    /// Whether the tuple belongs to the stream at channel position `pos` —
    /// the *decoding step* of m-op processing (§3.1).
    pub fn belongs_to(&self, pos: usize) -> bool {
        self.membership.contains(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_types::Membership;

    #[test]
    fn solo_belongs_to_position_zero() {
        let ct = ChannelTuple::solo(Tuple::ints(0, &[1]));
        assert!(ct.belongs_to(0));
        assert!(!ct.belongs_to(1));
    }

    #[test]
    fn explicit_membership() {
        let ct = ChannelTuple::new(Tuple::ints(0, &[1]), Membership::from_indices([1, 3]));
        assert!(!ct.belongs_to(0));
        assert!(ct.belongs_to(1));
        assert!(ct.belongs_to(3));
    }

    #[test]
    fn clone_shares_payload() {
        let ct = ChannelTuple::solo(Tuple::ints(0, &[1, 2, 3]));
        let cu = ct.clone();
        assert!(ct.tuple.shares_storage(&cu.tuple));
    }
}
