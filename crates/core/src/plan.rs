//! The physical query plan: a DAG of m-ops connected by channels.
//!
//! In RUMOR a *single* query plan implements all currently active logical
//! queries (§2.1). Nodes are physical multi-operators (m-ops, §2.2); edges
//! are channels (§3.1), which generalize streams. Streams remain the unit of
//! query semantics — every *member* operator of an m-op reads streams and
//! produces exactly one output stream — while channels are the physical
//! transport: each stream belongs to exactly one channel, and an m-op port
//! reads exactly one channel.

use std::collections::HashMap;

use rumor_types::{ChannelId, MopId, QueryId, Result, RumorError, Schema, SourceId, StreamId};

use crate::logical::{LogicalPlan, OpDef};
use crate::mop::MopContext;

/// How an m-op is implemented — chosen by the rewrite rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MopKind {
    /// Reference implementation: execute each member operator one by one
    /// (the semantics-defining implementation of §2.2).
    Naive,
    /// Predicate-indexed shared selection (rule sσ) \[10, 16\].
    IndexedSelect,
    /// Shared projection evaluation (same input stream).
    SharedProject,
    /// Shared aggregate evaluation (rule sα) \[22\].
    SharedAggregate,
    /// Shared window-join evaluation (rule s⋈) \[12\].
    SharedJoin,
    /// Shared sequence evaluation with AI instance index (rule s;).
    SharedSequence,
    /// Shared iteration evaluation (rule sµ).
    SharedIterate,
    /// Channel-based shared selection (rule cσ).
    ChannelSelect,
    /// Channel-based shared projection (rule cπ; the π example of §3.1).
    ChannelProject,
    /// Shared fragment aggregation over a channel (rule cα) \[15\].
    FragmentAggregate,
    /// Precision-sharing join over a channel (rule c⋈) \[14\].
    PrecisionJoin,
    /// Channel-based shared sequence (rule c;, §4.4).
    ChannelSequence,
    /// Channel-based shared iteration (rule cµ, §4.4).
    ChannelIterate,
}

/// What produces a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Producer {
    /// An external source feeds this base stream.
    Source(SourceId),
    /// The member `member` of m-op `mop` produces this stream.
    Mop {
        /// Producing m-op.
        mop: MopId,
        /// Member index within the m-op.
        member: usize,
    },
}

/// A registered external source.
#[derive(Debug, Clone)]
pub struct SourceDef {
    /// Source id.
    pub id: SourceId,
    /// Source name (unique).
    pub name: String,
    /// Schema of the base stream(s).
    pub schema: Schema,
    /// Sharable label (§3.2 base case 2): two sources with the same label
    /// produce sharable streams. Defaults to the source name, making a
    /// stream trivially sharable with itself (base case 1).
    pub sharable_label: String,
    /// The base stream carrying this source's tuples (the first stream for
    /// group sources).
    pub stream: StreamId,
    /// All base streams. Plain sources have one; *channel sources* (group
    /// sources) expose several streams pre-encoded into one channel — the
    /// externally-fed channel of Workload 3 (§5.2).
    pub streams: Vec<StreamId>,
}

/// A stream in the plan.
#[derive(Debug, Clone)]
pub struct StreamDef {
    /// Stream id.
    pub id: StreamId,
    /// Schema.
    pub schema: Schema,
    /// Producer (source or m-op member).
    pub producer: Producer,
}

/// A channel: an ordered set of encoded streams (§3.1). Position within
/// `streams` is the membership bit position.
#[derive(Debug, Clone)]
pub struct ChannelDef {
    /// Channel id.
    pub id: ChannelId,
    /// Encoded streams in membership order.
    pub streams: Vec<StreamId>,
}

impl ChannelDef {
    /// Channel capacity — the number of encoded streams (§5.2 Workload 3).
    pub fn capacity(&self) -> usize {
        self.streams.len()
    }

    /// Position of a stream within this channel.
    pub fn position_of(&self, stream: StreamId) -> Option<usize> {
        self.streams.iter().position(|&s| s == stream)
    }
}

/// One member operator implemented by an m-op.
#[derive(Debug, Clone)]
pub struct Member {
    /// The operator definition.
    pub def: OpDef,
    /// Input streams, one per port.
    pub inputs: Vec<StreamId>,
    /// The member's output stream.
    pub output: StreamId,
}

/// An m-op node of the plan graph.
#[derive(Debug, Clone)]
pub struct MopNode {
    /// Node id.
    pub id: MopId,
    /// Implementation kind.
    pub kind: MopKind,
    /// The set of operators this m-op implements (§2.2).
    pub members: Vec<Member>,
    /// Input channels, one per port. Invariant: for every member `m` and
    /// port `p`, `m.inputs[p]` is encoded by channel `inputs[p]`.
    pub inputs: Vec<ChannelId>,
}

impl MopNode {
    /// The operator arity (all members of an m-op share it).
    pub fn arity(&self) -> usize {
        self.inputs.len()
    }

    /// Output streams of all members, in member order.
    pub fn output_streams(&self) -> impl Iterator<Item = StreamId> + '_ {
        self.members.iter().map(|m| m.output)
    }
}

/// The structural difference between two states of a plan, at m-op
/// granularity — what an incremental optimization
/// ([`crate::rules::Optimizer::integrate`]) or a query retirement
/// ([`PlanGraph::remove_query`]) actually changed.
///
/// Engines consume this (via
/// `rumor_engine::ExecutablePlan::apply_delta`) to hot-swap a compiled
/// plan: `removed` ops are dropped, `added` ops compile cold, `rewired`
/// ops — live on both sides but with a different resolved
/// [`MopContext`] — are recompiled cold, and every m-op in none of the
/// three lists keeps its existing instance *and its accumulated state*.
#[derive(Debug, Clone, Default)]
pub struct PlanDelta {
    /// m-ops live after the change but not before, ascending.
    pub added: Vec<MopId>,
    /// m-ops live before the change but retired by it, ascending.
    pub removed: Vec<MopId>,
    /// m-ops live on both sides whose resolved execution context changed
    /// (members, kinds, channel encodings, or positions), ascending.
    pub rewired: Vec<MopId>,
    /// Sources whose *direct query taps* changed, ascending. A bare
    /// source tap (`LogicalPlan::Source` as a whole query) adds or
    /// removes no m-ops, so the three lists above can all be empty while
    /// the routing analysis still shifts (a pinned component flips
    /// between `Pinned` and `PinnedSplit` with the tap): the incremental
    /// re-analysis ([`crate::partition::reanalyze`]) dirties these
    /// sources' components too.
    pub retapped: Vec<SourceId>,
}

impl PlanDelta {
    /// Whether the change left every live m-op's compiled form — and
    /// every source's direct-tap set — intact.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty()
            && self.removed.is_empty()
            && self.rewired.is_empty()
            && self.retapped.is_empty()
    }

    /// Total number of touched m-ops plus retapped sources (so
    /// `len() == 0` exactly when [`PlanDelta::is_empty`]).
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len() + self.rewired.len() + self.retapped.len()
    }

    /// Whether the delta touches the given m-op.
    pub fn touches(&self, id: MopId) -> bool {
        self.added.contains(&id) || self.removed.contains(&id) || self.rewired.contains(&id)
    }
}

/// A snapshot of every live m-op's resolved execution context (plus the
/// query-tap set), taken before a plan mutation so the mutation can
/// report a [`PlanDelta`].
#[derive(Debug, Clone)]
pub struct PlanSnapshot {
    ctxs: HashMap<MopId, MopContext>,
    taps: Vec<(QueryId, StreamId)>,
}

impl PlanSnapshot {
    /// Whether the snapshot contains the m-op.
    pub fn contains(&self, id: MopId) -> bool {
        self.ctxs.contains_key(&id)
    }

    /// The delta from this snapshot to the plan's current state.
    pub fn delta(&self, plan: &PlanGraph) -> PlanDelta {
        let mut delta = PlanDelta::default();
        for node in plan.mops() {
            match self.ctxs.get(&node.id) {
                None => delta.added.push(node.id),
                Some(old) => {
                    let now = MopContext::build(plan, node.id).expect("live m-op");
                    if *old != now {
                        delta.rewired.push(node.id);
                    }
                }
            }
        }
        for &id in self.ctxs.keys() {
            if plan.mop_opt(id).is_none() {
                delta.removed.push(id);
            }
        }
        // Direct source taps that appeared or disappeared (stream defs
        // are never deleted, so producers of old taps still resolve).
        for &(_, s) in self
            .taps
            .iter()
            .filter(|t| !plan.query_outputs.contains(t))
            .chain(plan.query_outputs.iter().filter(|t| !self.taps.contains(t)))
        {
            if let Producer::Source(src) = plan.stream(s).producer {
                delta.retapped.push(src);
            }
        }
        delta.added.sort_unstable();
        delta.removed.sort_unstable();
        delta.rewired.sort_unstable();
        delta.retapped.sort_unstable();
        delta.retapped.dedup();
        delta
    }
}

/// The shared physical plan implementing all active queries.
#[derive(Debug, Clone, Default)]
pub struct PlanGraph {
    sources: Vec<SourceDef>,
    source_by_name: HashMap<String, SourceId>,
    group_stream_names: HashMap<String, StreamId>,
    streams: Vec<StreamDef>,
    channels: Vec<Option<ChannelDef>>,
    stream_channel: Vec<ChannelId>,
    mops: Vec<Option<MopNode>>,
    /// consumers[stream] = m-ops with a member reading that stream.
    consumers: Vec<Vec<MopId>>,
    query_outputs: Vec<(QueryId, StreamId)>,
    next_query: u32,
}

impl PlanGraph {
    /// Creates an empty plan.
    pub fn new() -> Self {
        PlanGraph::default()
    }

    // ------------------------------------------------------------------
    // Sources and streams
    // ------------------------------------------------------------------

    /// Registers an external source. The optional `sharable_label` marks
    /// sources whose streams are mutually sharable (§3.2, base case 2);
    /// it defaults to the source name.
    pub fn add_source(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        sharable_label: Option<String>,
    ) -> Result<SourceId> {
        let name = name.into();
        if self.source_by_name.contains_key(&name) {
            return Err(RumorError::plan(format!("duplicate source `{name}`")));
        }
        let id = SourceId::from_index(self.sources.len());
        let stream = self.new_stream(schema.clone(), Producer::Source(id));
        self.sources.push(SourceDef {
            id,
            name: name.clone(),
            schema,
            sharable_label: sharable_label.unwrap_or_else(|| name.clone()),
            stream,
            streams: vec![stream],
        });
        self.source_by_name.insert(name, id);
        Ok(id)
    }

    /// Registers a *channel source*: `k` base streams with union-compatible
    /// content, pre-encoded into a single channel whose tuples arrive from
    /// outside with an explicit membership component — the input shape of
    /// Workload 3 (§5.2), where the generator emits channel tuples
    /// belonging to all of S1..S10 at once.
    ///
    /// The member streams are named `{name}.{i}` and can be referenced from
    /// logical plans like any stream.
    pub fn add_source_group(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        k: usize,
    ) -> Result<SourceId> {
        let name = name.into();
        if self.source_by_name.contains_key(&name) {
            return Err(RumorError::plan(format!("duplicate source `{name}`")));
        }
        if k == 0 {
            return Err(RumorError::plan(
                "channel source needs >= 1 stream".to_string(),
            ));
        }
        let id = SourceId::from_index(self.sources.len());
        let mut streams = Vec::with_capacity(k);
        for i in 0..k {
            let s = self.new_stream(schema.clone(), Producer::Source(id));
            self.group_stream_names.insert(format!("{name}.{i}"), s);
            streams.push(s);
        }
        // Re-encode the member streams into one channel (they were created
        // in singleton channels).
        let new_ch = ChannelId::from_index(self.channels.len());
        self.channels.push(Some(ChannelDef {
            id: new_ch,
            streams: streams.clone(),
        }));
        for &s in &streams {
            let old = self.stream_channel[s.index()];
            self.channels[old.index()] = None;
            self.stream_channel[s.index()] = new_ch;
        }
        self.sources.push(SourceDef {
            id,
            name: name.clone(),
            schema,
            sharable_label: name.clone(),
            stream: streams[0],
            streams,
        });
        self.source_by_name.insert(name, id);
        Ok(id)
    }

    /// Resolves a `{group}.{i}` member-stream name.
    pub fn group_stream(&self, name: &str) -> Option<StreamId> {
        self.group_stream_names.get(name).copied()
    }

    /// Looks up a source by name.
    pub fn source_by_name(&self, name: &str) -> Option<&SourceDef> {
        self.source_by_name
            .get(name)
            .map(|&id| &self.sources[id.index()])
    }

    /// All sources.
    pub fn sources(&self) -> &[SourceDef] {
        &self.sources
    }

    /// Source by id.
    pub fn source(&self, id: SourceId) -> &SourceDef {
        &self.sources[id.index()]
    }

    fn new_stream(&mut self, schema: Schema, producer: Producer) -> StreamId {
        let id = StreamId::from_index(self.streams.len());
        self.streams.push(StreamDef {
            id,
            schema,
            producer,
        });
        self.consumers.push(Vec::new());
        // Every new stream starts in its own singleton channel: a plain
        // stream is a channel of capacity one.
        let cid = ChannelId::from_index(self.channels.len());
        self.channels.push(Some(ChannelDef {
            id: cid,
            streams: vec![id],
        }));
        self.stream_channel.push(cid);
        id
    }

    /// Stream definition.
    pub fn stream(&self, id: StreamId) -> &StreamDef {
        &self.streams[id.index()]
    }

    /// Number of streams ever created (ids are dense).
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// The channel a stream is encoded by.
    pub fn channel_of(&self, stream: StreamId) -> ChannelId {
        self.stream_channel[stream.index()]
    }

    /// Channel definition.
    pub fn channel(&self, id: ChannelId) -> &ChannelDef {
        self.channels[id.index()]
            .as_ref()
            .expect("dangling channel id")
    }

    /// Number of channel slots (including retired ones).
    pub fn channel_slots(&self) -> usize {
        self.channels.len()
    }

    /// Live channels.
    pub fn channels(&self) -> impl Iterator<Item = &ChannelDef> {
        self.channels.iter().filter_map(|c| c.as_ref())
    }

    /// Position of a stream within its channel.
    pub fn position_in_channel(&self, stream: StreamId) -> usize {
        self.channel(self.channel_of(stream))
            .position_of(stream)
            .expect("stream_channel out of sync")
    }

    /// m-ops with a member reading `stream`.
    pub fn consumers_of(&self, stream: StreamId) -> &[MopId] {
        &self.consumers[stream.index()]
    }

    // ------------------------------------------------------------------
    // M-ops
    // ------------------------------------------------------------------

    /// Adds a single-member m-op (a traditional physical operator) reading
    /// the given input streams, and returns `(mop, output stream)`.
    pub fn add_op(&mut self, def: OpDef, inputs: Vec<StreamId>) -> Result<(MopId, StreamId)> {
        if inputs.len() != def.arity() {
            return Err(RumorError::plan(format!(
                "operator {} expects {} inputs, got {}",
                def.symbol(),
                def.arity(),
                inputs.len()
            )));
        }
        let in_schemas: Vec<&Schema> = inputs
            .iter()
            .map(|&s| {
                self.streams
                    .get(s.index())
                    .map(|d| &d.schema)
                    .ok_or_else(|| RumorError::plan(format!("unknown stream {s}")))
            })
            .collect::<Result<_>>()?;
        let out_schema = def.output_schema(&in_schemas)?;

        let id = MopId::from_index(self.mops.len());
        // Reserve the node slot before creating the output stream so the
        // producer reference is valid.
        self.mops.push(None);
        let output = self.new_stream(out_schema, Producer::Mop { mop: id, member: 0 });
        let input_channels: Vec<ChannelId> = inputs.iter().map(|&s| self.channel_of(s)).collect();
        let node = MopNode {
            id,
            kind: MopKind::Naive,
            members: vec![Member {
                def,
                inputs: inputs.clone(),
                output,
            }],
            inputs: input_channels,
        };
        self.mops[id.index()] = Some(node);
        for s in inputs {
            self.consumers[s.index()].push(id);
        }
        Ok((id, output))
    }

    /// m-op node by id (panics on retired ids — rules must not hold stale ids).
    pub fn mop(&self, id: MopId) -> &MopNode {
        self.mops[id.index()].as_ref().expect("retired m-op id")
    }

    /// m-op node by id if still live.
    pub fn mop_opt(&self, id: MopId) -> Option<&MopNode> {
        self.mops.get(id.index()).and_then(|n| n.as_ref())
    }

    /// Live m-op nodes.
    pub fn mops(&self) -> impl Iterator<Item = &MopNode> {
        self.mops.iter().filter_map(|n| n.as_ref())
    }

    /// Number of live m-ops.
    pub fn mop_count(&self) -> usize {
        self.mops.iter().filter(|n| n.is_some()).count()
    }

    /// Number of m-op id slots (including retired ones).
    pub fn mop_slots(&self) -> usize {
        self.mops.len()
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Registers a logical query, building its naive (unshared) operator
    /// chain, and returns the query id. Optimization happens separately via
    /// the rule engine.
    ///
    /// Atomic: a failing registration (unknown source, schema error deep
    /// in the tree) rolls the plan back to its prior state — essential on
    /// a *live* plan, where orphaned operators would otherwise be
    /// installed by the next hot swap and consume events forever.
    pub fn add_query(&mut self, plan: &LogicalPlan) -> Result<QueryId> {
        let (n_streams, n_channels, n_mops) =
            (self.streams.len(), self.channels.len(), self.mops.len());
        match self.build_logical(plan) {
            Ok(out) => {
                let qid = QueryId(self.next_query);
                self.next_query += 1;
                self.query_outputs.push((qid, out));
                Ok(qid)
            }
            Err(e) => {
                // `build_logical` only ever appends (streams, channels,
                // m-ops, and consumer entries referencing the new m-ops),
                // so truncating to the entry marks undoes it exactly.
                self.streams.truncate(n_streams);
                self.consumers.truncate(n_streams);
                self.stream_channel.truncate(n_streams);
                self.channels.truncate(n_channels);
                self.mops.truncate(n_mops);
                for list in &mut self.consumers {
                    list.retain(|c| c.index() < n_mops);
                }
                Err(e)
            }
        }
    }

    fn build_logical(&mut self, plan: &LogicalPlan) -> Result<StreamId> {
        match plan {
            LogicalPlan::Source(name) => self
                .source_by_name(name)
                .map(|s| s.stream)
                .or_else(|| self.group_stream(name))
                .ok_or_else(|| RumorError::unknown(format!("source `{name}`"))),
            LogicalPlan::Select { input, predicate } => {
                let i = self.build_logical(input)?;
                let (_, out) = self.add_op(OpDef::Select(predicate.clone()), vec![i])?;
                Ok(out)
            }
            LogicalPlan::Project { input, map } => {
                let i = self.build_logical(input)?;
                let (_, out) = self.add_op(OpDef::Project(map.clone()), vec![i])?;
                Ok(out)
            }
            LogicalPlan::Aggregate { input, spec } => {
                let i = self.build_logical(input)?;
                let (_, out) = self.add_op(OpDef::Aggregate(spec.clone()), vec![i])?;
                Ok(out)
            }
            LogicalPlan::Join { left, right, spec } => {
                let l = self.build_logical(left)?;
                let r = self.build_logical(right)?;
                let (_, out) = self.add_op(OpDef::Join(spec.clone()), vec![l, r])?;
                Ok(out)
            }
            LogicalPlan::Sequence { left, right, spec } => {
                let l = self.build_logical(left)?;
                let r = self.build_logical(right)?;
                let (_, out) = self.add_op(OpDef::Sequence(spec.clone()), vec![l, r])?;
                Ok(out)
            }
            LogicalPlan::Iterate { left, right, spec } => {
                let l = self.build_logical(left)?;
                let r = self.build_logical(right)?;
                let (_, out) = self.add_op(OpDef::Iterate(spec.clone()), vec![l, r])?;
                Ok(out)
            }
        }
    }

    /// Registered `(query, output stream)` pairs.
    pub fn query_outputs(&self) -> &[(QueryId, StreamId)] {
        &self.query_outputs
    }

    /// Output stream of a query.
    pub fn query_output(&self, q: QueryId) -> Option<StreamId> {
        self.query_outputs
            .iter()
            .find(|(qid, _)| *qid == q)
            .map(|(_, s)| *s)
    }

    /// Snapshots every live m-op's resolved execution context (see
    /// [`PlanSnapshot::delta`]). Take one before a plan mutation to report
    /// what the mutation changed.
    pub fn snapshot(&self) -> PlanSnapshot {
        PlanSnapshot {
            ctxs: self
                .mops()
                .map(|n| {
                    (
                        n.id,
                        MopContext::build(self, n.id).expect("live m-op resolves"),
                    )
                })
                .collect(),
            taps: self.query_outputs.clone(),
        }
    }

    /// Retires a query: drops its output tap, prunes operators and
    /// channels no other query references, and un-splits stateless shared
    /// m-ops left serving a single member (their kind reverts to
    /// [`MopKind::Naive`] — no sharing apparatus for one query). Returns
    /// the [`PlanDelta`] engines need to hot-swap a compiled plan.
    ///
    /// Stateful m-ops (joins, sequences, iterations, aggregates) are only
    /// retired when *every* member is dead. A stateful m-op that still
    /// serves other queries keeps its dead members instead of being
    /// restructured: pruning them would change its compiled context, and a
    /// hot swap would then have to restart the survivors' operator state
    /// from cold. The retained members cost their per-tuple evaluation
    /// until the whole m-op dies; full re-optimization (a fresh engine)
    /// reclaims them.
    pub fn remove_query(&mut self, q: QueryId) -> Result<PlanDelta> {
        let before = self.snapshot();
        let pos = self
            .query_outputs
            .iter()
            .position(|(qid, _)| *qid == q)
            .ok_or_else(|| RumorError::unknown(format!("query {q}")))?;
        self.query_outputs.remove(pos);
        self.prune()?;
        if cfg!(debug_assertions) {
            self.validate()?;
        }
        Ok(before.delta(self))
    }

    /// Removes operators no live query (transitively) observes. See
    /// [`PlanGraph::remove_query`] for the stateless/stateful asymmetry.
    fn prune(&mut self) -> Result<()> {
        let order = self.topo_order()?;

        // Which channels feed an m-op holding stateful members: removing a
        // stream from such a channel would shift its channel-mates'
        // positions and therefore the stateful consumer's compiled
        // context, cold-starting state a hot swap must preserve.
        let mut stateful_reader = vec![false; self.channels.len()];
        for node in self.mops() {
            if node.members.iter().all(|m| m.def.is_stateless()) {
                continue;
            }
            for &ch in &node.inputs {
                stateful_reader[ch.index()] = true;
            }
        }
        // An m-op sheds dead members individually only when every member
        // is stateless *and* no member output sits in a multi-stream
        // channel read by a stateful consumer; otherwise a partially dead
        // op is kept whole (retired only once every member is dead).
        let splittable: HashMap<MopId, bool> = self
            .mops()
            .map(|node| {
                let ok = node.members.iter().all(|m| m.def.is_stateless())
                    && node.members.iter().all(|m| {
                        let ch = self.channel_of(m.output);
                        self.channel(ch).capacity() == 1 || !stateful_reader[ch.index()]
                    });
                (node.id, ok)
            })
            .collect();

        // A stream is *needed* when a query taps it or a surviving member
        // reads it. Reverse-topological pass: every consumer settles
        // before its producer. A kept-whole m-op keeps all members, so all
        // its member inputs stay needed; a splittable m-op keeps only
        // needed members, so only their inputs propagate.
        let mut needed = vec![false; self.streams.len()];
        for &(_, s) in &self.query_outputs {
            needed[s.index()] = true;
        }
        for &id in order.iter().rev() {
            let node = self.mop(id);
            if !node.members.iter().any(|m| needed[m.output.index()]) {
                continue; // fully dead: consumes nothing
            }
            for m in &node.members {
                if !splittable[&id] || needed[m.output.index()] {
                    for &s in &m.inputs {
                        needed[s.index()] = true;
                    }
                }
            }
        }

        for &id in &order {
            let node = self.mops[id.index()].as_ref().expect("live in topo order");
            let alive = node.members.iter().any(|m| needed[m.output.index()]);
            if !alive {
                let node = self.mops[id.index()].take().expect("checked live");
                for m in &node.members {
                    for &s in &m.inputs {
                        self.consumers[s.index()].retain(|&c| c != id);
                    }
                    self.drop_stream_encoding(m.output);
                }
                continue;
            }
            if !splittable[&id] || node.members.iter().all(|m| needed[m.output.index()]) {
                continue; // kept whole, or fully live
            }
            // Stateless m-op with dead members: prune them.
            let mut node = self.mops[id.index()].take().expect("checked live");
            let (kept, dead): (Vec<Member>, Vec<Member>) = node
                .members
                .drain(..)
                .partition(|m| needed[m.output.index()]);
            for m in &dead {
                for &s in &m.inputs {
                    if !kept.iter().any(|k| k.inputs.contains(&s)) {
                        self.consumers[s.index()].retain(|&c| c != id);
                    }
                }
                self.drop_stream_encoding(m.output);
                // The dead output stream dangles; point its producer at a
                // surviving member so it reads as an orphaned (aliased-away)
                // stream rather than an out-of-range member reference.
                self.streams[m.output.index()].producer = Producer::Mop { mop: id, member: 0 };
            }
            for (idx, m) in kept.iter().enumerate() {
                self.streams[m.output.index()].producer = Producer::Mop {
                    mop: id,
                    member: idx,
                };
            }
            node.members = kept;
            if node.members.len() == 1 {
                node.kind = MopKind::Naive;
            }
            self.mops[id.index()] = Some(node);
        }
        Ok(())
    }

    /// Removes a stream from its channel, dropping the channel when it
    /// becomes empty.
    fn drop_stream_encoding(&mut self, s: StreamId) {
        let cid = self.stream_channel[s.index()];
        if let Some(ch) = self.channels[cid.index()].as_mut() {
            ch.streams.retain(|&x| x != s);
            if ch.streams.is_empty() {
                self.channels[cid.index()] = None;
            }
        }
    }

    // ------------------------------------------------------------------
    // Rewrite primitives used by m-rule actions
    // ------------------------------------------------------------------

    /// Merges a set of m-ops into a single target m-op of the given kind
    /// (the generic m-rule action of §2.3). Members are concatenated in
    /// group order; members whose `(def, inputs)` coincide are deduplicated
    /// (common subexpression elimination): their output streams are aliased
    /// to the first occurrence's output, so downstream consumers are
    /// rewired automatically.
    ///
    /// Requires all nodes to agree on input channels per port.
    pub fn merge_mops(&mut self, group: &[MopId], kind: MopKind) -> Result<MopId> {
        if group.is_empty() {
            return Err(RumorError::rule("empty merge group".to_string()));
        }
        let arity = self.mop(group[0]).arity();
        let inputs = self.mop(group[0]).inputs.clone();
        for &id in group {
            let node = self.mop(id);
            if node.arity() != arity || node.inputs != inputs {
                return Err(RumorError::rule(format!(
                    "merge group disagrees on inputs: {} vs {}",
                    group[0], id
                )));
            }
        }

        // Collect members, deduplicating identical (def, inputs).
        let mut members: Vec<Member> = Vec::new();
        let mut aliases: Vec<(StreamId, StreamId)> = Vec::new();
        for &id in group {
            let node_members = self.mop(id).members.clone();
            for m in node_members {
                if let Some(existing) = members
                    .iter()
                    .find(|e| e.def == m.def && e.inputs == m.inputs)
                {
                    aliases.push((m.output, existing.output));
                } else {
                    members.push(m);
                }
            }
        }

        let new_id = MopId::from_index(self.mops.len());
        // Rewire producer references of surviving member outputs.
        for (idx, m) in members.iter().enumerate() {
            self.streams[m.output.index()].producer = Producer::Mop {
                mop: new_id,
                member: idx,
            };
        }
        // Retire old nodes and unregister their consumer entries.
        for &id in group {
            let node = self.mops[id.index()].take().expect("retired m-op id");
            for m in &node.members {
                for &s in &m.inputs {
                    self.consumers[s.index()].retain(|&c| c != id);
                }
            }
        }
        let member_inputs: Vec<Vec<StreamId>> = members.iter().map(|m| m.inputs.clone()).collect();
        self.mops.push(Some(MopNode {
            id: new_id,
            kind,
            members,
            inputs,
        }));
        for ins in member_inputs {
            for s in ins {
                if !self.consumers[s.index()].contains(&new_id) {
                    self.consumers[s.index()].push(new_id);
                }
            }
        }
        // Apply CSE aliases after the new node exists.
        for (from, to) in aliases {
            self.alias_stream(from, to)?;
        }
        Ok(new_id)
    }

    /// Redirects every consumer of `from` (m-op member inputs and query
    /// outputs) to `to`, and retires `from`. The streams must have equal
    /// schemas. This is the CSE primitive behind rules s; and sµ (§4.3).
    pub fn alias_stream(&mut self, from: StreamId, to: StreamId) -> Result<()> {
        if from == to {
            return Ok(());
        }
        if self.streams[from.index()].schema != self.streams[to.index()].schema {
            return Err(RumorError::rule(format!(
                "cannot alias {from} to {to}: schema mismatch"
            )));
        }
        let consumer_ids = std::mem::take(&mut self.consumers[from.index()]);
        for mid in consumer_ids {
            let node = self.mops[mid.index()].as_mut().expect("retired consumer");
            for m in &mut node.members {
                for (p, s) in m.inputs.iter_mut().enumerate() {
                    if *s == from {
                        *s = to;
                        node.inputs[p] = self.stream_channel[to.index()];
                    }
                }
            }
            if !self.consumers[to.index()].contains(&mid) {
                self.consumers[to.index()].push(mid);
            }
        }
        for (_, out) in self.query_outputs.iter_mut() {
            if *out == from {
                *out = to;
            }
        }
        // Remove the stream from its channel; drop the channel if empty.
        let cid = self.stream_channel[from.index()];
        if let Some(ch) = self.channels[cid.index()].as_mut() {
            ch.streams.retain(|&s| s != from);
            if ch.streams.is_empty() {
                self.channels[cid.index()] = None;
            }
        }
        Ok(())
    }

    /// Encodes a set of streams into a single new channel (the channel
    /// mapping step of §3.2). Preconditions enforced here:
    ///
    /// * at least two streams, all distinct;
    /// * union-compatible schemas;
    /// * all produced by the same m-op (criterion (b) of §3.2);
    /// * each currently in a singleton channel (no re-encoding).
    ///
    /// Consumer m-ops' port channels are rewired automatically.
    pub fn encode_channel(&mut self, streams: &[StreamId]) -> Result<ChannelId> {
        if streams.len() < 2 {
            return Err(RumorError::rule(
                "channel encoding needs at least two streams".to_string(),
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for &s in streams {
            if !seen.insert(s) {
                return Err(RumorError::rule(format!("duplicate stream {s} in channel")));
            }
        }
        let first_schema = &self.streams[streams[0].index()].schema;
        let producer_of = |p: &Producer| match p {
            Producer::Mop { mop, .. } => Some(*mop),
            Producer::Source(_) => None,
        };
        let first_prod = producer_of(&self.streams[streams[0].index()].producer);
        for &s in streams {
            let def = &self.streams[s.index()];
            if !def.schema.union_compatible(first_schema) {
                return Err(RumorError::rule(format!(
                    "stream {s} is not union-compatible with {}",
                    streams[0]
                )));
            }
            if producer_of(&def.producer) != first_prod || first_prod.is_none() {
                return Err(RumorError::rule(
                    "channel streams must originate from the same m-op (§3.2)".to_string(),
                ));
            }
            let cid = self.stream_channel[s.index()];
            if self.channel(cid).capacity() != 1 {
                return Err(RumorError::rule(format!(
                    "stream {s} is already encoded by a multi-stream channel"
                )));
            }
        }

        let new_id = ChannelId::from_index(self.channels.len());
        self.channels.push(Some(ChannelDef {
            id: new_id,
            streams: streams.to_vec(),
        }));
        for &s in streams {
            let old = self.stream_channel[s.index()];
            self.channels[old.index()] = None;
            self.stream_channel[s.index()] = new_id;
        }
        // Rewire consumers' port channels.
        for &s in streams {
            for &mid in self.consumers[s.index()].clone().iter() {
                let node = self.mops[mid.index()].as_mut().expect("retired consumer");
                let member_inputs: Vec<Vec<StreamId>> =
                    node.members.iter().map(|m| m.inputs.clone()).collect();
                for (p, ch) in node.inputs.iter_mut().enumerate() {
                    if member_inputs.iter().any(|ins| ins[p] == s) {
                        *ch = new_id;
                    }
                }
            }
        }
        Ok(new_id)
    }

    /// Rewires one member's port input to a different stream (used by
    /// single-query rewrites such as predicate pushdown). The new stream
    /// must carry the same schema, and after the rewire every member of the
    /// node must still read the same channel on that port.
    pub fn rewire_member_input(
        &mut self,
        mop: MopId,
        member: usize,
        port: usize,
        new_stream: StreamId,
    ) -> Result<()> {
        let new_channel = self.channel_of(new_stream);
        let node = self.mops[mop.index()]
            .as_mut()
            .ok_or_else(|| RumorError::plan(format!("retired m-op {mop}")))?;
        let m = node
            .members
            .get_mut(member)
            .ok_or_else(|| RumorError::plan(format!("{mop}: no member {member}")))?;
        let old_stream = *m
            .inputs
            .get(port)
            .ok_or_else(|| RumorError::plan(format!("{mop}: no port {port}")))?;
        m.inputs[port] = new_stream;
        // All members must agree on the port channel.
        if node
            .members
            .iter()
            .any(|m| self.stream_channel[m.inputs[port].index()] != new_channel)
        {
            return Err(RumorError::plan(format!(
                "{mop}: port {port} members span multiple channels after rewire"
            )));
        }
        node.inputs[port] = new_channel;
        let still_used = node.members.iter().any(|m| m.inputs.contains(&old_stream));
        if !still_used {
            self.consumers[old_stream.index()].retain(|&c| c != mop);
        }
        if !self.consumers[new_stream.index()].contains(&mop) {
            self.consumers[new_stream.index()].push(mop);
        }
        if self.streams[new_stream.index()].schema != self.streams[old_stream.index()].schema {
            return Err(RumorError::plan(format!(
                "{mop}: rewired input schema mismatch"
            )));
        }
        Ok(())
    }

    /// Replaces one member's definition. The new definition must preserve
    /// the member's output schema (rewrites may only change *how* a stream
    /// is computed, never its shape).
    pub fn set_member_def(&mut self, mop: MopId, member: usize, def: OpDef) -> Result<()> {
        let node = self
            .mops
            .get(mop.index())
            .and_then(|n| n.as_ref())
            .ok_or_else(|| RumorError::plan(format!("retired m-op {mop}")))?;
        let m = node
            .members
            .get(member)
            .ok_or_else(|| RumorError::plan(format!("{mop}: no member {member}")))?;
        let in_schemas: Vec<&Schema> = m
            .inputs
            .iter()
            .map(|&s| &self.streams[s.index()].schema)
            .collect();
        let new_schema = def.output_schema(&in_schemas)?;
        if new_schema != self.streams[m.output.index()].schema {
            return Err(RumorError::plan(format!(
                "{mop}: new definition changes output schema"
            )));
        }
        let node = self.mops[mop.index()].as_mut().expect("checked above");
        node.members[member].def = def;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Structure queries & validation
    // ------------------------------------------------------------------

    /// Topological order of the live m-ops (producers before consumers).
    /// Errors if the plan has a cycle.
    pub fn topo_order(&self) -> Result<Vec<MopId>> {
        let mut indegree: HashMap<MopId, usize> = HashMap::new();
        let mut edges: HashMap<MopId, Vec<MopId>> = HashMap::new();
        for node in self.mops() {
            indegree.entry(node.id).or_insert(0);
            for m in &node.members {
                for &s in &m.inputs {
                    if let Producer::Mop { mop, .. } = self.streams[s.index()].producer {
                        edges.entry(mop).or_default().push(node.id);
                        *indegree.entry(node.id).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut ready: Vec<MopId> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&id, _)| id)
            .collect();
        ready.sort();
        let mut order = Vec::with_capacity(indegree.len());
        while let Some(id) = ready.pop() {
            order.push(id);
            if let Some(outs) = edges.get(&id) {
                for &next in outs {
                    let d = indegree.get_mut(&next).expect("edge to unknown node");
                    *d -= 1;
                    if *d == 0 {
                        ready.push(next);
                    }
                }
            }
        }
        if order.len() != indegree.len() {
            return Err(RumorError::plan("plan graph has a cycle".to_string()));
        }
        Ok(order)
    }

    /// Registration-order-independent structural identity for every live
    /// m-op.
    ///
    /// Keys are canonical string renderings built bottom-up in topological
    /// order: a source stream renders as `src:<name>#<position>`, a member
    /// as its definition applied to its input-stream keys, and an m-op as
    /// its kind over the *sorted* member keys. Two plans holding the same
    /// operators under permuted `MopId`/`StreamId` numbering therefore
    /// assign equal keys to corresponding nodes — which is what lets the
    /// rule driver order rewrite candidates canonically instead of by
    /// registration order.
    ///
    /// Cyclic plans (no topological order) return an empty map; callers
    /// fall back to id order.
    pub fn structural_keys(&self) -> HashMap<MopId, String> {
        let Ok(order) = self.topo_order() else {
            return HashMap::new();
        };
        let mut stream_key: HashMap<StreamId, String> = HashMap::new();
        for src in &self.sources {
            for (i, &s) in src.streams.iter().enumerate() {
                stream_key.insert(s, format!("src:{}#{}", src.name, i));
            }
        }
        let mut keys = HashMap::new();
        for id in order {
            let node = self.mop(id);
            let mut member_keys = Vec::with_capacity(node.members.len());
            for m in &node.members {
                let ins: Vec<&str> = m
                    .inputs
                    .iter()
                    .map(|s| stream_key.get(s).map(String::as_str).unwrap_or("?"))
                    .collect();
                let mk = format!("{:?}({})", m.def, ins.join(","));
                stream_key.insert(m.output, mk.clone());
                member_keys.push(mk);
            }
            member_keys.sort();
            keys.insert(id, format!("{:?}[{}]", node.kind, member_keys.join(";")));
        }
        keys
    }

    /// Validates every structural invariant of the plan. Used by tests and
    /// after rule applications in debug builds; not on the data path.
    pub fn validate(&self) -> Result<()> {
        // Streams: producer references are consistent.
        for def in &self.streams {
            match def.producer {
                Producer::Source(sid) => {
                    let src = self
                        .sources
                        .get(sid.index())
                        .ok_or_else(|| RumorError::plan(format!("{}: bad source", def.id)))?;
                    if !src.streams.contains(&def.id) {
                        return Err(RumorError::plan(format!(
                            "{}: source stream mismatch",
                            def.id
                        )));
                    }
                }
                Producer::Mop { mop, member } => {
                    if let Some(node) = self.mop_opt(mop) {
                        let m = node.members.get(member).ok_or_else(|| {
                            RumorError::plan(format!("{}: bad member index", def.id))
                        })?;
                        if m.output != def.id {
                            // Stream was aliased away; it must no longer be
                            // referenced by any channel or consumer.
                            let cid = self.stream_channel[def.id.index()];
                            if self.channels[cid.index()]
                                .as_ref()
                                .is_some_and(|c| c.streams.contains(&def.id))
                            {
                                return Err(RumorError::plan(format!(
                                    "aliased stream {} still encoded",
                                    def.id
                                )));
                            }
                            continue;
                        }
                    } else {
                        continue; // producer retired; stream must be dangling
                    }
                }
            }
        }
        // Channels partition live streams; members' port channels agree.
        for ch in self.channels() {
            if ch.streams.is_empty() {
                return Err(RumorError::plan(format!("{}: empty channel", ch.id)));
            }
            for &s in &ch.streams {
                if self.stream_channel[s.index()] != ch.id {
                    return Err(RumorError::plan(format!(
                        "stream {s} channel index out of sync"
                    )));
                }
            }
            let first = &self.streams[ch.streams[0].index()].schema;
            for &s in &ch.streams[1..] {
                if !self.streams[s.index()].schema.union_compatible(first) {
                    return Err(RumorError::plan(format!(
                        "{}: union-incompatible streams",
                        ch.id
                    )));
                }
            }
        }
        // M-ops: member inputs live in the node's port channels; members
        // have matching arity; consumer index is consistent.
        for node in self.mops() {
            for m in &node.members {
                if m.inputs.len() != node.inputs.len() || m.def.arity() != node.inputs.len() {
                    return Err(RumorError::plan(format!("{}: arity mismatch", node.id)));
                }
                for (p, &s) in m.inputs.iter().enumerate() {
                    if self.stream_channel[s.index()] != node.inputs[p] {
                        return Err(RumorError::plan(format!(
                            "{}: member input {s} not in port {p} channel",
                            node.id
                        )));
                    }
                    if !self.consumers[s.index()].contains(&node.id) {
                        return Err(RumorError::plan(format!(
                            "{}: missing consumer index entry for {s}",
                            node.id
                        )));
                    }
                }
            }
        }
        // Query outputs reference live streams (producer live).
        for &(q, s) in &self.query_outputs {
            let def = &self.streams[s.index()];
            if let Producer::Mop { mop, member } = def.producer {
                let ok = self
                    .mop_opt(mop)
                    .and_then(|n| n.members.get(member))
                    .is_some_and(|m| m.output == s);
                if !ok {
                    return Err(RumorError::plan(format!(
                        "query {q} output {s} has no live producer"
                    )));
                }
            }
        }
        // Acyclicity.
        self.topo_order().map(|_| ())
    }

    /// Total number of member operators across live m-ops — the paper's
    /// measure of how much sharing the rules achieved.
    pub fn member_count(&self) -> usize {
        self.mops().map(|n| n.members.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_expr::Predicate;

    fn plan_with_source() -> (PlanGraph, StreamId) {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(3), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        (p, s)
    }

    #[test]
    fn add_source_creates_singleton_channel() {
        let (p, s) = plan_with_source();
        let ch = p.channel(p.channel_of(s));
        assert_eq!(ch.capacity(), 1);
        assert_eq!(ch.streams, vec![s]);
        assert_eq!(p.position_in_channel(s), 0);
        p.validate().unwrap();
    }

    #[test]
    fn duplicate_source_rejected() {
        let (mut p, _) = plan_with_source();
        assert!(p.add_source("S", Schema::ints(1), None).is_err());
    }

    #[test]
    fn add_op_wires_consumers() {
        let (mut p, s) = plan_with_source();
        let (id, out) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 1i64)), vec![s])
            .unwrap();
        assert_eq!(p.consumers_of(s), &[id]);
        assert_eq!(p.stream(out).producer, Producer::Mop { mop: id, member: 0 });
        assert_eq!(p.mop(id).kind, MopKind::Naive);
        p.validate().unwrap();
    }

    #[test]
    fn add_query_builds_chain() {
        let (mut p, _) = plan_with_source();
        let q = LogicalPlan::source("S")
            .select(Predicate::attr_eq_const(0, 5i64))
            .select(Predicate::attr_eq_const(1, 6i64));
        let qid = p.add_query(&q).unwrap();
        assert_eq!(p.mop_count(), 2);
        let out = p.query_output(qid).unwrap();
        assert_eq!(p.stream(out).schema, Schema::ints(3));
        p.validate().unwrap();
        let topo = p.topo_order().unwrap();
        assert_eq!(topo.len(), 2);
    }

    #[test]
    fn unknown_source_errors() {
        let mut p = PlanGraph::new();
        assert!(p
            .add_query(&LogicalPlan::source("nope").select(Predicate::True))
            .is_err());
    }

    #[test]
    fn failed_add_query_rolls_back_completely() {
        use crate::logical::SeqSpec;
        let (mut p, _) = plan_with_source();
        p.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 1i64)))
            .unwrap();
        let mops = p.mop_count();
        let streams = p.stream_count();
        let channels = p.channel_slots();
        // The left leg (a stateful sequence input) builds before the
        // unknown right-hand source errors: everything must roll back —
        // on a live plan the orphans would be hot-swapped into workers.
        let bad = LogicalPlan::source("S")
            .select(Predicate::attr_eq_const(1, 2i64))
            .followed_by(
                LogicalPlan::source("TYPO"),
                SeqSpec {
                    predicate: Predicate::True,
                    window: 5,
                },
            );
        assert!(p.add_query(&bad).is_err());
        assert_eq!(p.mop_count(), mops);
        assert_eq!(p.stream_count(), streams);
        assert_eq!(p.channel_slots(), channels);
        p.validate().unwrap();
        // And the plan still works afterwards.
        p.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(2, 3i64)))
            .unwrap();
        p.validate().unwrap();
    }

    #[test]
    fn merge_mops_same_stream() {
        let (mut p, s) = plan_with_source();
        let (a, out_a) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 1i64)), vec![s])
            .unwrap();
        let (b, out_b) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 2i64)), vec![s])
            .unwrap();
        let merged = p.merge_mops(&[a, b], MopKind::IndexedSelect).unwrap();
        assert_eq!(p.mop_count(), 1);
        let node = p.mop(merged);
        assert_eq!(node.members.len(), 2);
        assert_eq!(node.kind, MopKind::IndexedSelect);
        // Output streams survive with rewired producers.
        assert_eq!(
            p.stream(out_a).producer,
            Producer::Mop {
                mop: merged,
                member: 0
            }
        );
        assert_eq!(
            p.stream(out_b).producer,
            Producer::Mop {
                mop: merged,
                member: 1
            }
        );
        assert_eq!(p.consumers_of(s), &[merged]);
        p.validate().unwrap();
    }

    #[test]
    fn merge_dedupes_identical_members() {
        let (mut p, s) = plan_with_source();
        let pred = Predicate::attr_eq_const(0, 1i64);
        let (a, out_a) = p.add_op(OpDef::Select(pred.clone()), vec![s]).unwrap();
        let (b, out_b) = p.add_op(OpDef::Select(pred.clone()), vec![s]).unwrap();
        // Downstream consumer of the second output.
        let (c, _) = p
            .add_op(
                OpDef::Select(Predicate::attr_eq_const(1, 2i64)),
                vec![out_b],
            )
            .unwrap();
        let merged = p.merge_mops(&[a, b], MopKind::IndexedSelect).unwrap();
        let node = p.mop(merged);
        assert_eq!(node.members.len(), 1, "identical members deduplicated");
        // The downstream consumer now reads out_a.
        assert_eq!(p.mop(c).members[0].inputs[0], out_a);
        assert!(p.consumers_of(out_a).contains(&c));
        p.validate().unwrap();
    }

    #[test]
    fn merge_rejects_different_inputs() {
        let (mut p, s) = plan_with_source();
        let (a, out_a) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 1i64)), vec![s])
            .unwrap();
        let (b, _) = p
            .add_op(
                OpDef::Select(Predicate::attr_eq_const(0, 2i64)),
                vec![out_a],
            )
            .unwrap();
        assert!(p.merge_mops(&[a, b], MopKind::IndexedSelect).is_err());
    }

    #[test]
    fn alias_rewires_queries_and_consumers() {
        let (mut p, s) = plan_with_source();
        let pred = Predicate::attr_eq_const(0, 1i64);
        let (_, out_a) = p.add_op(OpDef::Select(pred.clone()), vec![s]).unwrap();
        let (_, out_b) = p.add_op(OpDef::Select(pred), vec![s]).unwrap();
        let (c, _) = p
            .add_op(OpDef::Select(Predicate::True), vec![out_b])
            .unwrap();
        p.query_outputs.push((QueryId(0), out_b));
        p.alias_stream(out_b, out_a).unwrap();
        assert_eq!(p.mop(c).members[0].inputs[0], out_a);
        assert_eq!(p.query_output(QueryId(0)), Some(out_a));
        p.validate().unwrap();
    }

    #[test]
    fn alias_schema_mismatch_rejected() {
        let (mut p, s) = plan_with_source();
        let (_, sel_out) = p.add_op(OpDef::Select(Predicate::True), vec![s]).unwrap();
        let (_, proj_out) = p
            .add_op(OpDef::Project(rumor_expr::SchemaMap::identity(1)), vec![s])
            .unwrap();
        assert!(p.alias_stream(sel_out, proj_out).is_err());
    }

    #[test]
    fn encode_channel_rewires_ports() {
        let (mut p, s) = plan_with_source();
        // One m-op with two members producing two streams (an IndexedSelect).
        let (a, out_a) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 1i64)), vec![s])
            .unwrap();
        let (b, out_b) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 2i64)), vec![s])
            .unwrap();
        let sel = p.merge_mops(&[a, b], MopKind::IndexedSelect).unwrap();
        let (c1, _) = p
            .add_op(
                OpDef::Select(Predicate::attr_eq_const(1, 3i64)),
                vec![out_a],
            )
            .unwrap();
        let (c2, _) = p
            .add_op(
                OpDef::Select(Predicate::attr_eq_const(1, 3i64)),
                vec![out_b],
            )
            .unwrap();
        let ch = p.encode_channel(&[out_a, out_b]).unwrap();
        assert_eq!(p.channel_of(out_a), ch);
        assert_eq!(p.channel_of(out_b), ch);
        assert_eq!(p.position_in_channel(out_b), 1);
        assert_eq!(p.mop(c1).inputs[0], ch);
        assert_eq!(p.mop(c2).inputs[0], ch);
        // The producing m-op is unaffected on the input side.
        assert_eq!(p.mop(sel).inputs[0], p.channel_of(s));
        p.validate().unwrap();
    }

    #[test]
    fn encode_channel_rejects_cross_producer() {
        let (mut p, s) = plan_with_source();
        let (_, out_a) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 1i64)), vec![s])
            .unwrap();
        let (_, out_b) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 2i64)), vec![s])
            .unwrap();
        // Different producing m-ops: must be rejected (§3.2).
        assert!(p.encode_channel(&[out_a, out_b]).is_err());
        // Base streams have no producing m-op: rejected too.
        assert!(p.encode_channel(&[s, out_a]).is_err());
        // Singleton and duplicate groups rejected.
        assert!(p.encode_channel(&[out_a]).is_err());
        assert!(p.encode_channel(&[out_a, out_a]).is_err());
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let (mut p, s) = plan_with_source();
        let (a, out_a) = p.add_op(OpDef::Select(Predicate::True), vec![s]).unwrap();
        let (b, out_b) = p
            .add_op(OpDef::Select(Predicate::True), vec![out_a])
            .unwrap();
        let (c, _) = p
            .add_op(OpDef::Select(Predicate::True), vec![out_b])
            .unwrap();
        let order = p.topo_order().unwrap();
        let pos = |id: MopId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(b) < pos(c));
    }

    #[test]
    fn remove_query_prunes_dead_chain() {
        let (mut p, _) = plan_with_source();
        let q1 = p
            .add_query(
                &LogicalPlan::source("S")
                    .select(Predicate::attr_eq_const(0, 1i64))
                    .select(Predicate::attr_eq_const(1, 2i64)),
            )
            .unwrap();
        let q2 = p
            .add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(2, 3i64)))
            .unwrap();
        assert_eq!(p.mop_count(), 3);
        let delta = p.remove_query(q1).unwrap();
        assert_eq!(p.mop_count(), 1, "q1's two-op chain fully retired");
        assert_eq!(delta.removed.len(), 2);
        assert!(delta.added.is_empty() && delta.rewired.is_empty());
        assert!(p.query_output(q1).is_none());
        assert!(p.query_output(q2).is_some());
        p.validate().unwrap();
        // Removing an unknown or already-removed query errors.
        assert!(p.remove_query(q1).is_err());
        assert!(p.remove_query(QueryId(99)).is_err());
    }

    #[test]
    fn remove_query_unsplits_shared_select_to_naive() {
        let (mut p, s) = plan_with_source();
        let (a, _) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 1i64)), vec![s])
            .unwrap();
        let (b, out_b) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 2i64)), vec![s])
            .unwrap();
        let merged = p.merge_mops(&[a, b], MopKind::IndexedSelect).unwrap();
        let out_a = p.mop(merged).members[0].output;
        p.query_outputs.push((QueryId(0), out_a));
        p.query_outputs.push((QueryId(1), out_b));
        p.next_query = 2;

        let delta = p.remove_query(QueryId(1)).unwrap();
        let node = p.mop(merged);
        assert_eq!(node.members.len(), 1, "dead member pruned");
        assert_eq!(node.kind, MopKind::Naive, "single member un-splits");
        assert_eq!(delta.rewired, vec![merged]);
        assert_eq!(
            p.stream(out_a).producer,
            Producer::Mop {
                mop: merged,
                member: 0
            }
        );
        p.validate().unwrap();

        // Removing the last query retires the m-op entirely.
        let delta = p.remove_query(QueryId(0)).unwrap();
        assert_eq!(p.mop_count(), 0);
        assert_eq!(delta.removed, vec![merged]);
        p.validate().unwrap();
    }

    #[test]
    fn remove_query_keeps_cse_shared_stream() {
        let (mut p, _) = plan_with_source();
        let q = LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 7i64));
        let q1 = p.add_query(&q).unwrap();
        let q2 = p.add_query(&q).unwrap();
        // Simulate CSE: both queries tap the same output stream.
        let out = p.query_output(q1).unwrap();
        let dup = p.query_output(q2).unwrap();
        let (dup_mop, _) = match p.stream(dup).producer {
            Producer::Mop { mop, member } => (mop, member),
            _ => panic!(),
        };
        p.merge_mops(
            &[
                match p.stream(out).producer {
                    Producer::Mop { mop, .. } => mop,
                    _ => panic!(),
                },
                dup_mop,
            ],
            MopKind::IndexedSelect,
        )
        .unwrap();
        assert_eq!(p.query_output(q1), p.query_output(q2), "CSE aliased");
        let delta = p.remove_query(q1).unwrap();
        assert!(delta.removed.is_empty(), "stream still tapped by q2");
        assert!(p.query_output(q2).is_some());
        p.validate().unwrap();
    }

    #[test]
    fn remove_query_keeps_partially_dead_stateful_mop_whole() {
        use crate::logical::SeqSpec;
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(3), None).unwrap();
        p.add_source("T", Schema::ints(3), None).unwrap();
        let seq = |w| {
            LogicalPlan::source("S").followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: rumor_expr::Predicate::True,
                    window: w,
                },
            )
        };
        let q1 = p.add_query(&seq(5)).unwrap();
        let q2 = p.add_query(&seq(9)).unwrap();
        // Merge the two sequences into one shared stateful m-op.
        let ids: Vec<MopId> = p.mops().map(|n| n.id).collect();
        let merged = p.merge_mops(&ids, MopKind::SharedSequence).unwrap();
        assert_eq!(p.mop(merged).members.len(), 2);

        let delta = p.remove_query(q1).unwrap();
        // The shared stateful m-op keeps its dead member (state
        // continuity for q2's member): nothing rewired, nothing removed.
        assert!(delta.is_empty(), "{delta:?}");
        assert_eq!(p.mop(merged).members.len(), 2);
        p.validate().unwrap();

        // Once the last query goes, the whole m-op dies.
        p.remove_query(q2).unwrap();
        assert_eq!(p.mop_count(), 0);
        p.validate().unwrap();
    }

    #[test]
    fn member_count_tracks_sharing() {
        let (mut p, s) = plan_with_source();
        let (a, _) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 1i64)), vec![s])
            .unwrap();
        let (b, _) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 2i64)), vec![s])
            .unwrap();
        assert_eq!(p.member_count(), 2);
        p.merge_mops(&[a, b], MopKind::IndexedSelect).unwrap();
        assert_eq!(p.member_count(), 2);
        assert_eq!(p.mop_count(), 1);
    }
}
