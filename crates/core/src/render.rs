//! Plan rendering: ASCII summaries and Graphviz DOT output, for producing
//! Figure 1 / Figure 6 / Figure 8-style pictures of rewritten plans.

use std::fmt::Write as _;

use rumor_types::MopId;

use crate::plan::{MopKind, PlanGraph, Producer};

fn kind_label(kind: MopKind) -> &'static str {
    match kind {
        MopKind::Naive => "naive",
        MopKind::IndexedSelect => "σ-index",
        MopKind::SharedProject => "π-shared",
        MopKind::SharedAggregate => "α-shared",
        MopKind::SharedJoin => "⋈-shared",
        MopKind::SharedSequence => ";-shared",
        MopKind::SharedIterate => "µ-shared",
        MopKind::ChannelSelect => "σ-channel",
        MopKind::ChannelProject => "π-channel",
        MopKind::FragmentAggregate => "α-fragment",
        MopKind::PrecisionJoin => "⋈-precision",
        MopKind::ChannelSequence => ";-channel",
        MopKind::ChannelIterate => "µ-channel",
    }
}

/// Renders a compact, deterministic text listing of the plan: sources,
/// m-ops (kind, members, inputs, outputs) and multi-stream channels.
pub fn render_text(plan: &PlanGraph) -> String {
    render_annotated(plan, |_| None)
}

/// [`render_text`] with a caller-supplied annotation appended to each
/// m-op header line (separated by ` — `). This is the hook the engine's
/// `Session::explain` uses to attach live runtime counters to the plan
/// listing without `rumor-core` knowing anything about execution.
pub fn render_annotated(plan: &PlanGraph, mut note: impl FnMut(MopId) -> Option<String>) -> String {
    let mut out = String::new();
    for src in plan.sources() {
        let _ = writeln!(
            out,
            "source {} `{}` -> {} {}",
            src.id, src.name, src.stream, src.schema
        );
    }
    let mut order = plan.topo_order().unwrap_or_default();
    order.sort();
    for id in order {
        let node = plan.mop(id);
        match note(node.id) {
            Some(n) => {
                let _ = writeln!(out, "mop {} [{}] — {}", node.id, kind_label(node.kind), n);
            }
            None => {
                let _ = writeln!(out, "mop {} [{}]", node.id, kind_label(node.kind));
            }
        }
        for m in &node.members {
            let ins: Vec<String> = m.inputs.iter().map(|s| s.to_string()).collect();
            let _ = writeln!(out, "  {} ({}) -> {}", m.def, ins.join(", "), m.output);
        }
    }
    for ch in plan.channels() {
        if ch.capacity() > 1 {
            let streams: Vec<String> = ch.streams.iter().map(|s| s.to_string()).collect();
            let _ = writeln!(out, "channel {} encodes [{}]", ch.id, streams.join(", "));
        }
    }
    for &(q, s) in plan.query_outputs() {
        let _ = writeln!(out, "query {q} <- {s}");
    }
    out
}

/// Renders a fixed-width proportional bar for a share in `[0.0, 1.0]`:
/// `share_bar(0.3, 10)` yields `"[###-------]"`. Out-of-range and
/// non-finite shares are clamped, so callers can pass raw ratios. The
/// engine's `Session::explain` uses this to visualise per-m-op time
/// share next to the plan listing.
pub fn share_bar(share: f64, width: usize) -> String {
    let share = if share.is_finite() {
        share.clamp(0.0, 1.0)
    } else {
        0.0
    };
    let filled = ((share * width as f64).round() as usize).min(width);
    let mut out = String::with_capacity(width + 2);
    out.push('[');
    for i in 0..width {
        out.push(if i < filled { '#' } else { '-' });
    }
    out.push(']');
    out
}

/// Renders the plan as a Graphviz DOT digraph. Channels of capacity > 1 are
/// drawn as dashed edges, as in the paper's figures.
pub fn render_dot(plan: &PlanGraph) -> String {
    let mut out = String::from("digraph rumor {\n  rankdir=BT;\n");
    for src in plan.sources() {
        let _ = writeln!(
            out,
            "  \"{}\" [shape=ellipse,label=\"{}\"];",
            src.stream, src.name
        );
    }
    for node in plan.mops() {
        let defs: Vec<String> = node
            .members
            .iter()
            .map(|m| m.def.symbol().to_string())
            .collect();
        let _ = writeln!(
            out,
            "  \"{}\" [shape=box,label=\"{} {{{}}} ({})\"];",
            node.id,
            node.id,
            defs.join(","),
            kind_label(node.kind)
        );
        for m in &node.members {
            for &s in &m.inputs {
                let cap = plan.channel(plan.channel_of(s)).capacity();
                let style = if cap > 1 { "dashed" } else { "solid" };
                let from: String = match plan.stream(s).producer {
                    Producer::Source(_) => format!("{s}"),
                    Producer::Mop { mop, .. } => format!("{mop}"),
                };
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\" [style={},label=\"{}\"];",
                    from, node.id, style, s
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::LogicalPlan;
    use rumor_expr::Predicate;
    use rumor_types::Schema;

    fn sample_plan() -> PlanGraph {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(2), None).unwrap();
        p.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 1i64)))
            .unwrap();
        p
    }

    #[test]
    fn text_lists_sources_mops_queries() {
        let txt = render_text(&sample_plan());
        assert!(txt.contains("source src0 `S`"));
        assert!(txt.contains("[naive]"));
        assert!(txt.contains("query q0"));
    }

    #[test]
    fn dot_marks_channels_dashed() {
        use crate::logical::{AggFunc, AggSpec};
        use rumor_expr::Expr;
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(2), None).unwrap();
        let agg = AggSpec {
            func: AggFunc::Sum,
            input: Expr::col(1),
            group_by: vec![],
            window: 5,
        };
        for c in 0..2i64 {
            p.add_query(
                &LogicalPlan::source("S")
                    .select(Predicate::attr_eq_const(0, c))
                    .aggregate(agg.clone()),
            )
            .unwrap();
        }
        crate::rules::Optimizer::new(crate::rules::OptimizerConfig::default())
            .optimize(&mut p)
            .unwrap();
        let dot = render_dot(&p);
        assert!(
            dot.contains("style=dashed"),
            "channel edges drawn dashed:\n{dot}"
        );
        let txt = render_text(&p);
        assert!(
            txt.contains("channel"),
            "multi-stream channels listed:\n{txt}"
        );
    }

    #[test]
    fn share_bar_fills_proportionally_and_clamps() {
        assert_eq!(share_bar(0.0, 10), "[----------]");
        assert_eq!(share_bar(0.3, 10), "[###-------]");
        assert_eq!(share_bar(1.0, 10), "[##########]");
        assert_eq!(share_bar(7.5, 4), "[####]");
        assert_eq!(share_bar(-2.0, 4), "[----]");
        assert_eq!(share_bar(f64::NAN, 4), "[----]");
    }

    #[test]
    fn dot_is_wellformed() {
        let dot = render_dot(&sample_plan());
        assert!(dot.starts_with("digraph rumor {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=ellipse"));
    }
}
