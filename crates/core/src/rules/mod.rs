//! The m-rule framework (§2.3) and the rule-driven optimizer.
//!
//! An m-rule is a pair of *condition* and *action* functions on the query
//! plan. The condition identifies a set of m-ops with a sharing opportunity;
//! the action replaces them with a single target m-op implementing the same
//! members more efficiently. Because a rule's condition formally ranges over
//! the powerset of all m-ops, a practical rule also provides a *grouping*
//! function that partitions candidate m-ops by a hash key in O(n), so the
//! optimizer never enumerates subsets.
//!
//! Conflict resolution (§7 future work, implemented here): rules carry a
//! total priority order, groups are processed deterministically, and every
//! application is recorded in a [`RewriteTrace`] so plans are reproducible.

pub mod catalog;

use std::collections::HashSet;

use rumor_types::{MopId, Result};

use crate::plan::PlanGraph;
use crate::sharable::Sharability;

/// A multi-query transformation rule.
pub trait MRule: Send + Sync {
    /// Stable rule name (Table 1 uses e.g. `s_sigma`, `c_mu`).
    fn name(&self) -> &'static str;

    /// Priority: lower runs earlier. Establishes the total order that
    /// removes nondeterminism from rule application (§7).
    fn priority(&self) -> u32;

    /// Minimum group size for the action to be worthwhile (1 for
    /// single-query rewrites like predicate pushdown, 2 for merges).
    fn min_group(&self) -> usize {
        2
    }

    /// Partitions candidate m-ops into groups that the condition may accept.
    fn find_groups(&self, plan: &PlanGraph, sharable: &Sharability) -> Vec<Vec<MopId>>;

    /// The condition function: may this exact set of m-ops be merged?
    fn condition(&self, plan: &PlanGraph, sharable: &Sharability, group: &[MopId]) -> bool;

    /// The action function: merges the group, returning the target m-op.
    fn apply(&self, plan: &mut PlanGraph, group: &[MopId]) -> Result<MopId>;
}

/// One recorded rule application.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Rule name.
    pub rule: &'static str,
    /// The merged group.
    pub group: Vec<MopId>,
    /// The target m-op produced by the action.
    pub target: MopId,
}

/// The full record of an optimization run.
#[derive(Debug, Clone, Default)]
pub struct RewriteTrace {
    /// Applications in order.
    pub entries: Vec<TraceEntry>,
    /// Number of fixpoint passes executed.
    pub passes: usize,
}

impl RewriteTrace {
    /// Number of applications of a given rule.
    pub fn count(&self, rule: &str) -> usize {
        self.entries.iter().filter(|e| e.rule == rule).count()
    }
}

/// Optimizer configuration: which rule families run.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Enable single-query rewrites (sequence predicate pushdown).
    pub enable_pushdown: bool,
    /// Enable the same-stream sharing rules (sσ, sπ, sα, s⋈, s;, sµ).
    pub enable_sharing: bool,
    /// Enable the channel rules (cσ, cπ, cα, c⋈, c;, cµ) — §3.3/§4.4.
    pub enable_channels: bool,
    /// Individually disabled rule names (for ablations).
    pub disabled_rules: HashSet<String>,
    /// Fixpoint pass budget.
    pub max_passes: usize,
    /// Run full plan validation after every pass (tests/debug).
    pub validate_each_pass: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            enable_pushdown: true,
            enable_sharing: true,
            enable_channels: true,
            disabled_rules: HashSet::new(),
            max_passes: 64,
            validate_each_pass: cfg!(debug_assertions),
        }
    }
}

impl OptimizerConfig {
    /// No optimization at all — the naive one-plan-per-query baseline.
    pub fn unoptimized() -> Self {
        OptimizerConfig {
            enable_pushdown: false,
            enable_sharing: false,
            enable_channels: false,
            ..OptimizerConfig::default()
        }
    }

    /// Sharing rules but no channels — the "W/o Channel" configuration of
    /// Figures 10(c,d) and 11.
    pub fn without_channels() -> Self {
        OptimizerConfig {
            enable_channels: false,
            ..OptimizerConfig::default()
        }
    }

    /// Disables one rule by name (ablations).
    pub fn disable(mut self, rule: &str) -> Self {
        self.disabled_rules.insert(rule.to_string());
        self
    }
}

/// The rule-driven multi-query optimizer.
pub struct Optimizer {
    rules: Vec<Box<dyn MRule>>,
    config: OptimizerConfig,
}

impl Optimizer {
    /// Builds the optimizer with the standard rule catalogue (Table 1).
    pub fn new(config: OptimizerConfig) -> Self {
        let rules = catalog::standard_rules(&config);
        Optimizer::with_rules(rules, config)
    }

    /// Builds an optimizer over an explicit rule set.
    pub fn with_rules(mut rules: Vec<Box<dyn MRule>>, config: OptimizerConfig) -> Self {
        rules.sort_by_key(|r| r.priority());
        Optimizer { rules, config }
    }

    /// Registered rule names in priority order.
    pub fn rule_names(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    /// Runs the rules to fixpoint over the plan.
    ///
    /// Each pass recomputes the sharable-streams analysis, then runs the
    /// rules in priority order; the first rule that fires applies *all* its
    /// (disjoint) groups, then the pass restarts so later rules observe the
    /// rewritten plan. Terminates when a full pass fires nothing.
    pub fn optimize(&self, plan: &mut PlanGraph) -> Result<RewriteTrace> {
        let mut trace = RewriteTrace::default();
        'passes: for _pass in 0..self.config.max_passes {
            trace.passes += 1;
            let sharable = Sharability::analyze(plan);
            for rule in &self.rules {
                if self.config.disabled_rules.contains(rule.name()) {
                    continue;
                }
                let groups = rule.find_groups(plan, &sharable);
                let mut fired = false;
                for group in groups {
                    if group.len() < rule.min_group() {
                        continue;
                    }
                    if group.iter().any(|&id| plan.mop_opt(id).is_none()) {
                        continue;
                    }
                    if !rule.condition(plan, &sharable, &group) {
                        continue;
                    }
                    let target = rule.apply(plan, &group)?;
                    trace.entries.push(TraceEntry {
                        rule: rule.name(),
                        group,
                        target,
                    });
                    fired = true;
                }
                if fired {
                    if self.config.validate_each_pass {
                        plan.validate()?;
                    }
                    continue 'passes;
                }
            }
            return Ok(trace); // full pass fired nothing: fixpoint
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::LogicalPlan;
    use rumor_expr::Predicate;
    use rumor_types::Schema;

    #[test]
    fn unoptimized_config_runs_no_rules() {
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(2), None).unwrap();
        for c in 0..4 {
            plan.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, c as i64)))
                .unwrap();
        }
        let opt = Optimizer::new(OptimizerConfig::unoptimized());
        let trace = opt.optimize(&mut plan).unwrap();
        assert!(trace.entries.is_empty());
        assert_eq!(plan.mop_count(), 4);
    }

    #[test]
    fn incremental_reoptimization_merges_into_existing_mops() {
        // Register + optimize, then register more queries and re-optimize:
        // the new selections must join the existing indexed m-op (the
        // incremental registration story of §1: queries arrive over time).
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(2), None).unwrap();
        for c in 0..3 {
            plan.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, c as i64)))
                .unwrap();
        }
        let opt = Optimizer::new(OptimizerConfig::default());
        opt.optimize(&mut plan).unwrap();
        assert_eq!(plan.mop_count(), 1);

        for c in 3..6 {
            plan.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, c as i64)))
                .unwrap();
        }
        assert_eq!(plan.mop_count(), 4);
        let trace = opt.optimize(&mut plan).unwrap();
        assert_eq!(trace.count("s_sigma"), 1, "new nodes join the old m-op");
        assert_eq!(plan.mop_count(), 1);
        assert_eq!(plan.mops().next().unwrap().members.len(), 6);
        plan.validate().unwrap();
    }

    #[test]
    fn trace_counts() {
        let mut t = RewriteTrace::default();
        t.entries.push(TraceEntry {
            rule: "s_sigma",
            group: vec![],
            target: rumor_types::MopId(0),
        });
        assert_eq!(t.count("s_sigma"), 1);
        assert_eq!(t.count("c_mu"), 0);
    }
}
