//! The m-rule framework (§2.3) and the rule-driven optimizer.
//!
//! An m-rule is a pair of *condition* and *action* functions on the query
//! plan. The condition identifies a set of m-ops with a sharing opportunity;
//! the action replaces them with a single target m-op implementing the same
//! members more efficiently. Because a rule's condition formally ranges over
//! the powerset of all m-ops, a practical rule also provides a *grouping*
//! function that partitions candidate m-ops by a hash key in O(n), so the
//! optimizer never enumerates subsets.
//!
//! Conflict resolution (§7 future work, implemented here): rules carry a
//! total priority order, groups are processed deterministically, and every
//! application is recorded in a [`RewriteTrace`] so plans are reproducible.

pub mod catalog;

use std::collections::HashSet;

use rumor_types::{MopId, QueryId, Result};

use crate::cost::{self, SelectivityModel};
use crate::logical::LogicalPlan;
use crate::plan::{PlanDelta, PlanGraph, Producer};
use crate::sharable::Sharability;

/// A multi-query transformation rule.
pub trait MRule: Send + Sync {
    /// Stable rule name (Table 1 uses e.g. `s_sigma`, `c_mu`).
    fn name(&self) -> &'static str;

    /// Priority: lower runs earlier. Establishes the total order that
    /// removes nondeterminism from rule application (§7).
    fn priority(&self) -> u32;

    /// Minimum group size for the action to be worthwhile (1 for
    /// single-query rewrites like predicate pushdown, 2 for merges).
    fn min_group(&self) -> usize {
        2
    }

    /// Partitions candidate m-ops into groups that the condition may accept.
    fn find_groups(&self, plan: &PlanGraph, sharable: &Sharability) -> Vec<Vec<MopId>>;

    /// The condition function: may this exact set of m-ops be merged?
    fn condition(&self, plan: &PlanGraph, sharable: &Sharability, group: &[MopId]) -> bool;

    /// The action function: merges the group, returning the target m-op.
    fn apply(&self, plan: &mut PlanGraph, group: &[MopId]) -> Result<MopId>;

    /// Whether the action encodes streams into channels (the c-rules of
    /// §3.3/§4.4). Channel encoding rewires the compiled context of every
    /// producer and consumer of the encoded streams, so incremental
    /// optimization ([`Optimizer::integrate`]) must check the blast radius
    /// before letting such a rule fire on a live plan.
    fn encodes_channels(&self) -> bool {
        false
    }
}

/// One recorded rule application.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Rule name.
    pub rule: &'static str,
    /// The merged group.
    pub group: Vec<MopId>,
    /// The target m-op produced by the action.
    pub target: MopId,
}

/// The full record of an optimization run.
#[derive(Debug, Clone, Default)]
pub struct RewriteTrace {
    /// Applications in order.
    pub entries: Vec<TraceEntry>,
    /// Number of fixpoint passes executed.
    pub passes: usize,
    /// Sharing opportunities an *incremental* run declined, with the
    /// reason (see [`Optimizer::integrate`]): each notes a merge full
    /// re-optimization would have performed but a live hot swap could not,
    /// because it would have disturbed stateful operator state. Empty for
    /// from-scratch [`Optimizer::optimize`] runs.
    pub notes: Vec<String>,
}

impl RewriteTrace {
    /// Number of applications of a given rule.
    pub fn count(&self, rule: &str) -> usize {
        self.entries.iter().filter(|e| e.rule == rule).count()
    }

    /// Records a note, deduplicated: retry loops re-decline the same
    /// (m-op group, reason) every pass, and diagnostics only need each
    /// line once. Returns whether the note was newly added.
    pub fn note(&mut self, line: String) -> bool {
        if self.notes.contains(&line) {
            return false;
        }
        self.notes.push(line);
        true
    }

    /// Whether the incremental run fell short of the full-reoptimization
    /// fixpoint (see [`RewriteTrace::notes`]).
    pub fn fell_back(&self) -> bool {
        !self.notes.is_empty()
    }
}

/// How [`Optimizer::optimize`] chooses among applicable rewrites.
///
/// The rule catalogue is the move generator either way; the strategy
/// decides *which* applicable move commits next. Both strategies reach
/// semantically identical plans (every rule preserves query results —
/// the conformance matrix pins byte-identical outputs across both), but
/// the plans can differ in shape: greedy can lock in a locally-good merge
/// that blocks a better one (e.g. encoding a small stream family into a
/// channel before a larger overlapping family, leaving the large family
/// unmergeable), which a cost-scored search avoids.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SearchStrategy {
    /// The paper's behavior (default): rules run in priority order and
    /// the first applicable rule fires all its groups, then the pass
    /// restarts. Cheapest; order-sensitive only up to the canonical
    /// candidate ordering.
    #[default]
    Greedy,
    /// Cost-based sharing search: every applicable (rule, group)
    /// candidate across the whole catalogue is applied speculatively to a
    /// clone of the plan, the outcome is scored with
    /// [`crate::cost::estimate_with`] (see [`crate::cost::PlanCost::score`]
    /// for the objective; plans that fail to topo-sort score as infinite),
    /// and the best-scoring candidate commits. Repeats until no candidate
    /// remains. Ties break toward the catalogue's priority/canonical
    /// order, so the search degenerates to greedy when the model is
    /// indifferent.
    CostBased {
        /// Scoring depth: `1` scores each candidate's immediate outcome;
        /// `k > 1` additionally plays out `k − 1` best-immediate follow-up
        /// moves on the speculative plan before scoring, so a candidate is
        /// credited for the merges it *enables*. Values are clamped to at
        /// least 1. Cost grows with plan clones per candidate; 2 is a good
        /// default.
        lookahead: usize,
    },
}

/// Optimizer configuration: which rule families run.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Enable single-query rewrites (sequence predicate pushdown).
    pub enable_pushdown: bool,
    /// Enable the same-stream sharing rules (sσ, sπ, sα, s⋈, s;, sµ).
    pub enable_sharing: bool,
    /// Enable the channel rules (cσ, cπ, cα, c⋈, c;, cµ) — §3.3/§4.4.
    pub enable_channels: bool,
    /// Individually disabled rule names (for ablations).
    pub disabled_rules: HashSet<String>,
    /// Fixpoint pass budget.
    pub max_passes: usize,
    /// Run full plan validation after every pass (tests/debug).
    pub validate_each_pass: bool,
    /// How [`Optimizer::optimize`] picks the next rewrite (the search
    /// knob). Defaults to [`SearchStrategy::Greedy`] so existing behavior
    /// is unchanged; see [`OptimizerConfig::cost_based`].
    pub search: SearchStrategy,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            enable_pushdown: true,
            enable_sharing: true,
            enable_channels: true,
            disabled_rules: HashSet::new(),
            max_passes: 64,
            validate_each_pass: cfg!(debug_assertions),
            search: SearchStrategy::Greedy,
        }
    }
}

impl OptimizerConfig {
    /// No optimization at all — the naive one-plan-per-query baseline.
    pub fn unoptimized() -> Self {
        OptimizerConfig {
            enable_pushdown: false,
            enable_sharing: false,
            enable_channels: false,
            ..OptimizerConfig::default()
        }
    }

    /// Sharing rules but no channels — the "W/o Channel" configuration of
    /// Figures 10(c,d) and 11.
    pub fn without_channels() -> Self {
        OptimizerConfig {
            enable_channels: false,
            ..OptimizerConfig::default()
        }
    }

    /// Disables one rule by name (ablations).
    pub fn disable(mut self, rule: &str) -> Self {
        self.disabled_rules.insert(rule.to_string());
        self
    }

    /// The cost-based sharing search with the default lookahead of 2
    /// (each candidate is scored after its best single follow-up move, so
    /// enabling merges counts in its favor). Everything else matches
    /// [`OptimizerConfig::default`].
    pub fn cost_based() -> Self {
        OptimizerConfig {
            search: SearchStrategy::CostBased { lookahead: 2 },
            ..OptimizerConfig::default()
        }
    }
}

/// The rule-driven multi-query optimizer.
pub struct Optimizer {
    rules: Vec<Box<dyn MRule>>,
    config: OptimizerConfig,
    selectivity: SelectivityModel,
}

impl Optimizer {
    /// Builds the optimizer with the standard rule catalogue (Table 1).
    pub fn new(config: OptimizerConfig) -> Self {
        let rules = catalog::standard_rules(&config);
        Optimizer::with_rules(rules, config)
    }

    /// Builds an optimizer over an explicit rule set.
    pub fn with_rules(mut rules: Vec<Box<dyn MRule>>, config: OptimizerConfig) -> Self {
        rules.sort_by_key(|r| r.priority());
        Optimizer {
            rules,
            config,
            selectivity: SelectivityModel::default(),
        }
    }

    /// Calibrates the cost model with measured per-m-op selectivities
    /// (typically `StatsSnapshot::selectivity_model` from the engine).
    /// Affects [`SearchStrategy::CostBased`] scoring and the
    /// refused-merge ranking of [`Optimizer::integrate`]; the greedy path
    /// ignores it.
    pub fn with_selectivity(mut self, model: SelectivityModel) -> Self {
        self.selectivity = model;
        self
    }

    /// Registered rule names in priority order.
    pub fn rule_names(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    /// Runs the rules to fixpoint over the plan, using the configured
    /// [`SearchStrategy`] to choose among applicable rewrites.
    pub fn optimize(&self, plan: &mut PlanGraph) -> Result<RewriteTrace> {
        match self.config.search {
            SearchStrategy::Greedy => self.optimize_greedy(plan),
            SearchStrategy::CostBased { lookahead } => {
                self.optimize_cost_based(plan, lookahead.max(1))
            }
        }
    }

    /// The greedy fixpoint (the paper's driver).
    ///
    /// Each pass recomputes the sharable-streams analysis, then runs the
    /// rules in priority order; the first rule that fires applies *all* its
    /// (disjoint) groups, then the pass restarts so later rules observe the
    /// rewritten plan. Terminates when a full pass fires nothing.
    fn optimize_greedy(&self, plan: &mut PlanGraph) -> Result<RewriteTrace> {
        let mut trace = RewriteTrace::default();
        'passes: for _pass in 0..self.config.max_passes {
            trace.passes += 1;
            let sharable = Sharability::analyze(plan);
            for rule in &self.rules {
                if self.config.disabled_rules.contains(rule.name()) {
                    continue;
                }
                let groups = rule.find_groups(plan, &sharable);
                let mut fired = false;
                for group in groups {
                    if group.len() < rule.min_group() {
                        continue;
                    }
                    if group.iter().any(|&id| plan.mop_opt(id).is_none()) {
                        continue;
                    }
                    if !rule.condition(plan, &sharable, &group) {
                        continue;
                    }
                    let target = rule.apply(plan, &group)?;
                    trace.entries.push(TraceEntry {
                        rule: rule.name(),
                        group,
                        target,
                    });
                    fired = true;
                }
                if fired {
                    if self.config.validate_each_pass {
                        plan.validate()?;
                    }
                    continue 'passes;
                }
            }
            return Ok(trace); // full pass fired nothing: fixpoint
        }
        Ok(trace)
    }

    /// The cost-based sharing search (see [`SearchStrategy::CostBased`]).
    ///
    /// One rewrite commits per step: all applicable (rule, group)
    /// candidates are enumerated, each is played out on a clone of the
    /// plan (to `lookahead` moves deep) and scored with the calibrated
    /// cost model, and the best-scoring candidate is applied for real.
    /// Candidates are enumerated in priority/canonical order and a later
    /// candidate must beat the incumbent by a real margin, so ties fall
    /// to the same rewrite greedy would pick.
    fn optimize_cost_based(&self, plan: &mut PlanGraph, lookahead: usize) -> Result<RewriteTrace> {
        let mut trace = RewriteTrace::default();
        // One candidate commits per step; merges strictly shrink the plan
        // and pushdown disables itself, so this budget is a backstop, not
        // a tuning knob.
        let budget = self
            .config
            .max_passes
            .saturating_mul(plan.mop_count().max(4));
        for _step in 0..budget {
            trace.passes += 1;
            let sharable = Sharability::analyze(plan);
            let cands = self.candidates(plan, &sharable);
            if cands.is_empty() {
                break;
            }
            let mut best: Option<(f64, usize)> = None;
            for (i, (rule, group)) in cands.iter().enumerate() {
                let Some(score) = self.score_candidate(plan, *rule, group, lookahead) else {
                    continue;
                };
                if best.is_none_or(|(b, _)| score < b - 1e-9) {
                    best = Some((score, i));
                }
            }
            let Some((_, i)) = best else { break };
            let (rule, group) = cands.into_iter().nth(i).expect("index in range");
            let target = self.rules[rule].apply(plan, &group)?;
            trace.entries.push(TraceEntry {
                rule: self.rules[rule].name(),
                group,
                target,
            });
            if self.config.validate_each_pass {
                plan.validate()?;
            }
        }
        Ok(trace)
    }

    /// Every applicable (rule index, group) pair on the current plan, in
    /// rule-priority order with groups in canonical order.
    fn candidates(&self, plan: &PlanGraph, sharable: &Sharability) -> Vec<(usize, Vec<MopId>)> {
        let mut out = Vec::new();
        for (ri, rule) in self.rules.iter().enumerate() {
            if self.config.disabled_rules.contains(rule.name()) {
                continue;
            }
            for group in rule.find_groups(plan, sharable) {
                if group.len() < rule.min_group() {
                    continue;
                }
                if group.iter().any(|&id| plan.mop_opt(id).is_none()) {
                    continue;
                }
                if !rule.condition(plan, sharable, &group) {
                    continue;
                }
                out.push((ri, group));
            }
        }
        out
    }

    /// Applies one candidate to a clone of the plan, optionally plays out
    /// `lookahead − 1` further best-immediate moves, and returns the
    /// resulting score. `None` when the candidate's action fails (it is
    /// simply not in the running this step).
    fn score_candidate(
        &self,
        plan: &PlanGraph,
        rule: usize,
        group: &[MopId],
        lookahead: usize,
    ) -> Option<f64> {
        let mut probe = plan.clone();
        self.rules[rule].apply(&mut probe, group).ok()?;
        for _ in 1..lookahead {
            let sharable = Sharability::analyze(&probe);
            let followups = self.candidates(&probe, &sharable);
            let mut best: Option<(f64, usize, Vec<MopId>)> = None;
            for (ri, g) in followups {
                let mut next = probe.clone();
                if self.rules[ri].apply(&mut next, &g).is_err() {
                    continue;
                }
                let s = score_plan(&next, &self.selectivity);
                if best.as_ref().is_none_or(|(b, _, _)| s < *b - 1e-9) {
                    best = Some((s, ri, g));
                }
            }
            let Some((_, ri, g)) = best else { break };
            self.rules[ri].apply(&mut probe, &g).ok()?;
        }
        Some(score_plan(&probe, &self.selectivity))
    }

    /// Estimated benefit (score reduction) of a rewrite `integrate` had
    /// to decline: the refused-alternative ranking surfaced in
    /// [`RewriteTrace::notes`]. `None` when the speculative application
    /// fails or either plan cannot be scored.
    fn refused_benefit(&self, plan: &PlanGraph, rule: &dyn MRule, group: &[MopId]) -> Option<f64> {
        let before = cost::estimate_with(plan, &self.selectivity).ok()?.score();
        let mut probe = plan.clone();
        rule.apply(&mut probe, group).ok()?;
        let after = cost::estimate_with(&probe, &self.selectivity).ok()?.score();
        Some(before - after)
    }

    /// Merges one *new* query into an already-optimized plan — the
    /// incremental registration story of §1, made a first-class operation.
    ///
    /// Where [`Optimizer::optimize`] re-derives the whole shared plan,
    /// `integrate` registers the query's naive operator chain and then runs
    /// the m-rule catalogue *scoped to the touched region*: a group is only
    /// considered when it contains at least one m-op created by this
    /// integration (the new chain or a merge target derived from it). The
    /// rest of the plan is never restructured, so a compiled runtime can
    /// hot-swap to the result via the returned [`PlanDelta`] with every
    /// untouched operator keeping its state.
    ///
    /// **Fallback.** A merge that would restructure an existing *stateful*
    /// m-op (or re-encode a channel feeding/leaving one) cannot be applied
    /// to a live plan without cold-starting that operator's state, so
    /// `integrate` declines it and records the declined opportunity in
    /// [`RewriteTrace::notes`]. On such workloads the incremental plan may
    /// hold more operators than full re-optimization would produce — the
    /// notes say exactly which merges were skipped and why; re-optimizing
    /// from scratch (a fresh engine over the same queries) reclaims them.
    /// Stateless merges (shared selections, projections, channel encodings
    /// among stateless consumers) are applied exactly as a full run would.
    pub fn integrate(&self, plan: &mut PlanGraph, query: &LogicalPlan) -> Result<Integration> {
        let before = plan.snapshot();
        // Stateful m-ops with (potentially) live runtime state: the
        // integration must leave their compiled contexts bit-identical.
        let protected: HashSet<MopId> = plan
            .mops()
            .filter(|n| n.members.iter().any(|m| !m.def.is_stateless()))
            .map(|n| n.id)
            .collect();
        let query_id = plan.add_query(query)?;
        let mut touched: HashSet<MopId> = plan
            .mops()
            .map(|n| n.id)
            .filter(|&id| !before.contains(id))
            .collect();

        let mut trace = RewriteTrace::default();
        // Refused-alternative ranking: each unique declined merge is
        // scored once (estimated benefit had it been applied) so the best
        // foregone rewrite can be surfaced in the notes.
        let mut refused: Vec<(String, f64)> = Vec::new();
        'passes: for _pass in 0..self.config.max_passes {
            trace.passes += 1;
            let sharable = Sharability::analyze(plan);
            for rule in &self.rules {
                if self.config.disabled_rules.contains(rule.name()) {
                    continue;
                }
                let groups = rule.find_groups(plan, &sharable);
                let mut fired = false;
                for group in groups {
                    if group.len() < rule.min_group() {
                        continue;
                    }
                    if !group.iter().any(|id| touched.contains(id)) {
                        continue; // outside the touched region
                    }
                    if group.iter().any(|&id| plan.mop_opt(id).is_none()) {
                        continue;
                    }
                    if !rule.condition(plan, &sharable, &group) {
                        continue;
                    }
                    if let Some(reason) =
                        integration_conflict(plan, rule.as_ref(), &group, &protected)
                    {
                        let newly_declined = trace.note(format!(
                            "{}: declined {:?}: {}",
                            rule.name(),
                            group,
                            reason
                        ));
                        if newly_declined {
                            if let Some(benefit) = self.refused_benefit(plan, rule.as_ref(), &group)
                            {
                                refused.push((format!("{} {:?}", rule.name(), group), benefit));
                            }
                        }
                        continue;
                    }
                    let target = rule.apply(plan, &group)?;
                    touched.insert(target);
                    trace.entries.push(TraceEntry {
                        rule: rule.name(),
                        group,
                        target,
                    });
                    fired = true;
                }
                if fired {
                    if self.config.validate_each_pass {
                        plan.validate()?;
                    }
                    continue 'passes;
                }
            }
            break; // scoped fixpoint
        }
        if let Some((desc, benefit)) = refused
            .into_iter()
            .filter(|(_, b)| b.is_finite())
            .max_by(|a, b| a.1.total_cmp(&b.1))
        {
            trace.note(format!(
                "best refused alternative: {desc} (estimated score reduction {benefit:.3})"
            ));
        }
        let delta = before.delta(plan);
        Ok(Integration {
            query: query_id,
            trace,
            delta,
        })
    }
}

/// Scores a plan under a selectivity model; plans that cannot be scored
/// (no topological order) are infinitely expensive so the search never
/// commits to a broken rewrite.
fn score_plan(plan: &PlanGraph, model: &SelectivityModel) -> f64 {
    cost::estimate_with(plan, model)
        .map(|c| c.score())
        .unwrap_or(f64::INFINITY)
}

/// The outcome of one [`Optimizer::integrate`] call.
#[derive(Debug, Clone)]
pub struct Integration {
    /// The id assigned to the merged-in query.
    pub query: QueryId,
    /// The scoped rewrite record, including any declined merges
    /// ([`RewriteTrace::notes`]).
    pub trace: RewriteTrace,
    /// What the integration changed, for runtime hot-swap.
    pub delta: PlanDelta,
}

/// Why a rule application must not fire during an incremental integration,
/// or `None` when it is safe. Safe means: no *protected* (stateful, live)
/// m-op is merged away, and no channel encoding rewires the compiled
/// context of a protected producer or consumer outside the group.
fn integration_conflict(
    plan: &PlanGraph,
    rule: &dyn MRule,
    group: &[MopId],
    protected: &HashSet<MopId>,
) -> Option<String> {
    if let Some(id) = group.iter().find(|id| protected.contains(id)) {
        return Some(format!(
            "merging would restructure stateful m-op {id} and cold-start its live state"
        ));
    }
    if rule.encodes_channels() {
        // The c-rule action encodes the group's port-0 input streams and
        // the target's output streams into channels; both rewire every
        // producer/consumer of those streams.
        for &id in group {
            let node = plan.mop(id);
            for m in &node.members {
                let mut affected: Vec<MopId> = Vec::new();
                if let Producer::Mop { mop, .. } = plan.stream(m.inputs[0]).producer {
                    affected.push(mop);
                }
                affected.extend(plan.consumers_of(m.inputs[0]).iter().copied());
                affected.extend(plan.consumers_of(m.output).iter().copied());
                if let Some(hit) = affected
                    .iter()
                    .find(|x| protected.contains(x) && !group.contains(x))
                {
                    return Some(format!(
                        "channel encoding would rewire stateful m-op {hit} outside the group"
                    ));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::LogicalPlan;
    use rumor_expr::Predicate;
    use rumor_types::Schema;

    #[test]
    fn unoptimized_config_runs_no_rules() {
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(2), None).unwrap();
        for c in 0..4 {
            plan.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, c as i64)))
                .unwrap();
        }
        let opt = Optimizer::new(OptimizerConfig::unoptimized());
        let trace = opt.optimize(&mut plan).unwrap();
        assert!(trace.entries.is_empty());
        assert_eq!(plan.mop_count(), 4);
    }

    #[test]
    fn incremental_reoptimization_merges_into_existing_mops() {
        // Register + optimize, then register more queries and re-optimize:
        // the new selections must join the existing indexed m-op (the
        // incremental registration story of §1: queries arrive over time).
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(2), None).unwrap();
        for c in 0..3 {
            plan.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, c as i64)))
                .unwrap();
        }
        let opt = Optimizer::new(OptimizerConfig::default());
        opt.optimize(&mut plan).unwrap();
        assert_eq!(plan.mop_count(), 1);

        for c in 3..6 {
            plan.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, c as i64)))
                .unwrap();
        }
        assert_eq!(plan.mop_count(), 4);
        let trace = opt.optimize(&mut plan).unwrap();
        assert_eq!(trace.count("s_sigma"), 1, "new nodes join the old m-op");
        assert_eq!(plan.mop_count(), 1);
        assert_eq!(plan.mops().next().unwrap().members.len(), 6);
        plan.validate().unwrap();
    }

    #[test]
    fn integrate_merges_stateless_query_into_shared_mop() {
        // Incremental integration of a selection must reach the same
        // operator count as full re-optimization: the new selection joins
        // the existing predicate-indexed m-op.
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(2), None).unwrap();
        for c in 0..3 {
            plan.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, c as i64)))
                .unwrap();
        }
        let opt = Optimizer::new(OptimizerConfig::default());
        opt.optimize(&mut plan).unwrap();
        assert_eq!(plan.mop_count(), 1);
        let old_id = plan.mops().next().unwrap().id;

        let outcome = opt
            .integrate(
                &mut plan,
                &LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 9i64)),
            )
            .unwrap();
        assert_eq!(plan.mop_count(), 1, "new selection joined the shared m-op");
        assert_eq!(plan.mops().next().unwrap().members.len(), 4);
        assert_eq!(outcome.trace.count("s_sigma"), 1);
        assert!(!outcome.trace.fell_back());
        // The old m-op was merged away; the target is new.
        assert!(outcome.delta.removed.contains(&old_id));
        assert_eq!(outcome.delta.added.len(), 1);
        plan.validate().unwrap();
    }

    #[test]
    fn integrate_declines_stateful_merge_and_records_why() {
        use crate::logical::SeqSpec;
        let seq = || {
            LogicalPlan::source("S").followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: Predicate::True,
                    window: 10,
                },
            )
        };
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(2), None).unwrap();
        plan.add_source("T", Schema::ints(2), None).unwrap();
        plan.add_query(&seq()).unwrap();
        let opt = Optimizer::new(OptimizerConfig::default());
        opt.optimize(&mut plan).unwrap();
        let stateful: Vec<MopId> = plan.mops().map(|n| n.id).collect();

        // An identical query: full re-optimization would CSE-merge it into
        // the existing (stateful) sequence m-op; integration must decline
        // — the existing op's AI-index state would not survive the merge —
        // and say so in the notes.
        let outcome = opt.integrate(&mut plan, &seq()).unwrap();
        assert!(outcome.trace.fell_back(), "{:?}", outcome.trace.notes);
        assert!(outcome.trace.notes[0].contains("stateful"));
        assert_eq!(plan.mop_count(), 2, "new sequence op stays separate");
        // The existing stateful op was not touched by the delta.
        for id in stateful {
            assert!(!outcome.delta.touches(id));
        }
        plan.validate().unwrap();

        // The oracle check the acceptance criterion names: full
        // re-optimization over the same queries reaches a smaller plan.
        let mut fresh = PlanGraph::new();
        fresh.add_source("S", Schema::ints(2), None).unwrap();
        fresh.add_source("T", Schema::ints(2), None).unwrap();
        fresh.add_query(&seq()).unwrap();
        fresh.add_query(&seq()).unwrap();
        opt.optimize(&mut fresh).unwrap();
        assert_eq!(fresh.mop_count(), 1);
    }

    #[test]
    fn integrate_leaves_unrelated_components_untouched() {
        use crate::logical::SeqSpec;
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(2), None).unwrap();
        plan.add_source("T", Schema::ints(2), None).unwrap();
        plan.add_source("U", Schema::ints(2), None).unwrap();
        plan.add_query(&LogicalPlan::source("S").followed_by(
            LogicalPlan::source("T"),
            SeqSpec {
                predicate: Predicate::True,
                window: 8,
            },
        ))
        .unwrap();
        let opt = Optimizer::new(OptimizerConfig::default());
        opt.optimize(&mut plan).unwrap();
        let existing: Vec<MopId> = plan.mops().map(|n| n.id).collect();

        let outcome = opt
            .integrate(
                &mut plan,
                &LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 1i64)),
            )
            .unwrap();
        assert!(outcome.delta.removed.is_empty());
        assert!(outcome.delta.rewired.is_empty());
        assert_eq!(outcome.delta.added.len(), 1);
        for id in existing {
            assert!(!outcome.delta.touches(id));
        }
        plan.validate().unwrap();
    }

    #[test]
    fn trace_counts() {
        let mut t = RewriteTrace::default();
        t.entries.push(TraceEntry {
            rule: "s_sigma",
            group: vec![],
            target: rumor_types::MopId(0),
        });
        assert_eq!(t.count("s_sigma"), 1);
        assert_eq!(t.count("c_mu"), 0);
    }

    #[test]
    fn trace_notes_deduplicate() {
        let mut t = RewriteTrace::default();
        assert!(t.note("s_seq: declined [op1, op2]: stateful".to_string()));
        assert!(!t.note("s_seq: declined [op1, op2]: stateful".to_string()));
        assert!(t.note("another".to_string()));
        assert_eq!(t.notes.len(), 2);
    }

    /// A rule that keeps firing for a bounded number of passes without
    /// changing anything — stand-in for the churn retry loops that made
    /// `integrate` re-encounter (and re-note) the same declined merge on
    /// every restarted pass.
    struct PassChurner {
        remaining: std::sync::atomic::AtomicUsize,
    }

    impl MRule for PassChurner {
        fn name(&self) -> &'static str {
            "pass_churner"
        }
        fn priority(&self) -> u32 {
            99
        }
        fn min_group(&self) -> usize {
            1
        }
        fn find_groups(&self, plan: &PlanGraph, _: &Sharability) -> Vec<Vec<MopId>> {
            plan.mops().map(|n| vec![n.id]).collect()
        }
        fn condition(&self, _: &PlanGraph, _: &Sharability, _: &[MopId]) -> bool {
            self.remaining.load(std::sync::atomic::Ordering::SeqCst) > 0
        }
        fn apply(&self, _: &mut PlanGraph, group: &[MopId]) -> Result<MopId> {
            self.remaining
                .fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
            Ok(group[0])
        }
    }

    #[test]
    fn integrate_retry_passes_do_not_duplicate_decline_notes() {
        use crate::logical::SeqSpec;
        let seq = || {
            LogicalPlan::source("S").followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: Predicate::True,
                    window: 10,
                },
            )
        };
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(2), None).unwrap();
        plan.add_source("T", Schema::ints(2), None).unwrap();
        plan.add_query(&seq()).unwrap();
        let config = OptimizerConfig::default();
        Optimizer::new(config.clone()).optimize(&mut plan).unwrap();

        // A rule catalogue whose last rule keeps restarting passes: the
        // stateful decline is re-encountered on every pass and must be
        // recorded once, not once per pass.
        let mut rules = catalog::standard_rules(&config);
        rules.push(Box::new(PassChurner {
            remaining: std::sync::atomic::AtomicUsize::new(3),
        }));
        let opt = Optimizer::with_rules(rules, config);
        let outcome = opt.integrate(&mut plan, &seq()).unwrap();
        assert!(outcome.trace.passes >= 3, "churner kept passes restarting");
        let declines: Vec<&String> = outcome
            .trace
            .notes
            .iter()
            .filter(|n| n.contains("declined"))
            .collect();
        assert_eq!(declines.len(), 1, "{:?}", outcome.trace.notes);
    }

    #[test]
    fn integrate_ranks_best_refused_alternative() {
        use crate::logical::SeqSpec;
        let seq = || {
            LogicalPlan::source("S").followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: Predicate::True,
                    window: 10,
                },
            )
        };
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(2), None).unwrap();
        plan.add_source("T", Schema::ints(2), None).unwrap();
        plan.add_query(&seq()).unwrap();
        let opt = Optimizer::new(OptimizerConfig::default());
        opt.optimize(&mut plan).unwrap();

        let outcome = opt.integrate(&mut plan, &seq()).unwrap();
        assert!(outcome.trace.fell_back());
        let ranking = outcome
            .trace
            .notes
            .iter()
            .find(|n| n.starts_with("best refused alternative"))
            .expect("refused-merge ranking note");
        assert!(ranking.contains("s_seq"), "{ranking}");
        assert!(
            ranking.contains("score reduction"),
            "benefit surfaced: {ranking}"
        );
    }

    /// The workload where greedy locks itself out: two aggregate families
    /// over overlapping select outputs. Canonical ordering makes greedy
    /// channel-encode the *small* family first, leaving the large family
    /// spanning two channels — permanently unmergeable. The cost-based
    /// search scores both candidates, commits the large merge first, and
    /// then the small family (now wholly inside the large channel) merges
    /// too.
    fn overlapping_agg_families(small: i64, big: i64) -> PlanGraph {
        use crate::logical::{AggFunc, AggSpec};
        use rumor_expr::Expr;
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(3), None).unwrap();
        let agg = |col: usize| AggSpec {
            func: AggFunc::Sum,
            input: Expr::col(col),
            group_by: vec![],
            window: 8,
        };
        for c in 0..small {
            plan.add_query(
                &LogicalPlan::source("S")
                    .select(Predicate::attr_eq_const(0, c))
                    .aggregate(agg(1)),
            )
            .unwrap();
        }
        for c in 0..big {
            plan.add_query(
                &LogicalPlan::source("S")
                    .select(Predicate::attr_eq_const(0, c))
                    .aggregate(agg(2)),
            )
            .unwrap();
        }
        plan
    }

    #[test]
    fn cost_based_search_escapes_greedy_channel_lockout() {
        let mut greedy_plan = overlapping_agg_families(3, 5);
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut greedy_plan)
            .unwrap();
        greedy_plan.validate().unwrap();

        let mut cost_plan = overlapping_agg_families(3, 5);
        Optimizer::new(OptimizerConfig::cost_based())
            .optimize(&mut cost_plan)
            .unwrap();
        cost_plan.validate().unwrap();

        assert!(
            cost_plan.mop_count() < greedy_plan.mop_count(),
            "cost-based {} vs greedy {}",
            cost_plan.mop_count(),
            greedy_plan.mop_count()
        );
        assert_eq!(
            cost_plan.mop_count(),
            3,
            "index + two fragment aggregates: {:?}",
            cost_plan.mops().map(|n| n.kind).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cost_based_matches_greedy_on_plain_sharing() {
        let build = || {
            let mut plan = PlanGraph::new();
            plan.add_source("S", Schema::ints(2), None).unwrap();
            for c in 0..8 {
                plan.add_query(
                    &LogicalPlan::source("S").select(Predicate::attr_eq_const(0, c as i64)),
                )
                .unwrap();
            }
            plan
        };
        let mut greedy = build();
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut greedy)
            .unwrap();
        let mut cost = build();
        Optimizer::new(OptimizerConfig::cost_based())
            .optimize(&mut cost)
            .unwrap();
        assert_eq!(greedy.mop_count(), 1);
        assert_eq!(cost.mop_count(), 1);
        cost.validate().unwrap();
    }
}
