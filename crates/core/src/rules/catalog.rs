//! The standard m-rule catalogue — Table 1 of the paper, plus the
//! sequence-predicate pushdown rewrite that exposes Cayuga's AN index as a
//! predicate-indexing opportunity (§4.3).
//!
//! | rule      | input operators                                             | target m-op |
//! |-----------|-------------------------------------------------------------|-------------|
//! | `s_sigma` | selections reading the same stream                          | predicate indexing \[10,16\] |
//! | `s_pi`    | projections reading the same stream                         | shared projection |
//! | `s_alpha` | aggregations, same stream, same function (≠ group-bys)      | shared aggregate evaluation \[22\] |
//! | `s_join`  | joins, same streams, same predicate (≠ windows)             | shared join evaluation \[12\] |
//! | `s_seq`   | `;` ops, same streams, same predicate                       | CSE / shared sequence (§4.3) |
//! | `s_mu`    | `µ` ops, same streams, same definition                      | CSE / shared iteration (§4.3) |
//! | `c_sigma` | selections, same def, sharable inputs from one m-op         | channel select |
//! | `c_pi`    | projections, same def, sharable inputs from one m-op        | channel project (§3.1 example) |
//! | `c_alpha` | aggregations, same def, sharable inputs from one m-op       | shared fragment aggregation \[15\] |
//! | `c_join`  | joins, same def, sharable left inputs + same right stream   | precision sharing join \[14\] |
//! | `c_seq`   | `;` ops, same def, sharable left inputs + same right stream | channel-based MQO (§4.4) |
//! | `c_mu`    | `µ` ops, same def, sharable left inputs + same right stream | channel-based MQO (§4.4) |

use std::collections::HashMap;

use rumor_expr::{Expr, Predicate, SchemaMap, Side};
use rumor_types::{MopId, Result, RumorError, StreamId};

use crate::logical::{AggFunc, OpDef, SeqSpec};
use crate::plan::{MopKind, MopNode, PlanGraph, Producer};
use crate::rules::{MRule, OptimizerConfig};
use crate::sharable::{Sharability, SigId};

/// Builds the standard rule set for a configuration.
pub fn standard_rules(config: &OptimizerConfig) -> Vec<Box<dyn MRule>> {
    let mut rules: Vec<Box<dyn MRule>> = Vec::new();
    if config.enable_pushdown {
        rules.push(Box::new(SeqPushdown));
    }
    if config.enable_sharing {
        rules.push(merge_rule(
            "s_sigma",
            10,
            MopKind::IndexedSelect,
            false,
            classify_s_sigma,
        ));
        rules.push(merge_rule(
            "s_pi",
            11,
            MopKind::SharedProject,
            false,
            classify_s_pi,
        ));
        rules.push(merge_rule(
            "s_alpha",
            12,
            MopKind::SharedAggregate,
            false,
            classify_s_alpha,
        ));
        rules.push(merge_rule(
            "s_join",
            13,
            MopKind::SharedJoin,
            false,
            classify_s_join,
        ));
        rules.push(merge_rule(
            "s_seq",
            14,
            MopKind::SharedSequence,
            false,
            classify_s_seq,
        ));
        rules.push(merge_rule(
            "s_mu",
            15,
            MopKind::SharedIterate,
            false,
            classify_s_mu,
        ));
    }
    if config.enable_channels {
        rules.push(merge_rule(
            "c_sigma",
            20,
            MopKind::ChannelSelect,
            true,
            classify_c_sigma,
        ));
        rules.push(merge_rule(
            "c_pi",
            21,
            MopKind::ChannelProject,
            true,
            classify_c_pi,
        ));
        rules.push(merge_rule(
            "c_alpha",
            22,
            MopKind::FragmentAggregate,
            true,
            classify_c_alpha,
        ));
        rules.push(merge_rule(
            "c_join",
            23,
            MopKind::PrecisionJoin,
            true,
            classify_c_join,
        ));
        rules.push(merge_rule(
            "c_seq",
            24,
            MopKind::ChannelSequence,
            true,
            classify_c_seq,
        ));
        rules.push(merge_rule(
            "c_mu",
            25,
            MopKind::ChannelIterate,
            true,
            classify_c_mu,
        ));
    }
    rules
}

// ----------------------------------------------------------------------
// Generic keyed merge rule
// ----------------------------------------------------------------------

/// Grouping keys: two m-ops may merge under a rule iff they classify to the
/// same key. Keys embed everything the rule's condition depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum GroupKey {
    /// sσ / sπ: same input stream (operator type fixed by the rule).
    SameStream(StreamId),
    /// sα: same stream + shared aggregate definition (function, input
    /// expression, window) — group-bys free \[22\].
    SameStreamAgg(StreamId, AggFunc, Expr, u64),
    /// s⋈ / s;: same stream pair + same predicate — windows free \[12\].
    SamePairPred(StreamId, StreamId, Predicate),
    /// sµ: same stream pair + same (filter, rebind, rebind map) — windows free.
    SamePairIter(StreamId, StreamId, Predicate, Predicate, SchemaMap),
    /// cσ/cπ/cα: same definition + sharable inputs from the same producer.
    ChannelUnary(OpDef, ProducerKey, SigId),
    /// c⋈/c;/cµ: same definition + sharable left inputs from the same
    /// producer + identical right stream.
    ChannelBinary(OpDef, ProducerKey, SigId, StreamId),
}

/// Where a group of sharable streams originates. The §3.2 criterion (b)
/// requires one producing m-op (so identical tuples are available at the
/// same time for encoding); streams of a *channel source* are already
/// encoded by the external feeder, which satisfies the same requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ProducerKey {
    Mop(MopId),
    SourceChannel(rumor_types::ChannelId),
}

type Classify = fn(&PlanGraph, &Sharability, &MopNode) -> Option<GroupKey>;

struct MergeRule {
    name: &'static str,
    priority: u32,
    kind: MopKind,
    channel: bool,
    classify: Classify,
}

fn merge_rule(
    name: &'static str,
    priority: u32,
    kind: MopKind,
    channel: bool,
    classify: Classify,
) -> Box<dyn MRule> {
    Box::new(MergeRule {
        name,
        priority,
        kind,
        channel,
        classify,
    })
}

impl MRule for MergeRule {
    fn name(&self) -> &'static str {
        self.name
    }

    fn priority(&self) -> u32 {
        self.priority
    }

    fn find_groups(&self, plan: &PlanGraph, sharable: &Sharability) -> Vec<Vec<MopId>> {
        let mut by_key: HashMap<GroupKey, Vec<MopId>> = HashMap::new();
        for node in plan.mops() {
            // Never regroup a node that is already the target kind on its
            // own; it can still join a group with new nodes.
            if let Some(key) = (self.classify)(plan, sharable, node) {
                by_key.entry(key).or_default().push(node.id);
            }
        }
        // Canonical ordering: sort members and groups by structural key
        // (registration-order independent), falling back to id order only
        // between structurally identical nodes — otherwise the plan shape
        // would depend on the order queries were registered in.
        let canon = plan.structural_keys();
        let key_of = |id: MopId| canon.get(&id).map(String::as_str).unwrap_or("");
        let mut groups: Vec<Vec<MopId>> = by_key
            .into_values()
            .filter(|g| g.len() >= 2)
            .map(|mut g| {
                g.sort_by(|&a, &b| key_of(a).cmp(key_of(b)).then(a.cmp(&b)));
                g
            })
            .collect();
        groups.sort_by(|a, b| key_of(a[0]).cmp(key_of(b[0])).then(a[0].cmp(&b[0])));
        groups
    }

    fn condition(&self, plan: &PlanGraph, sharable: &Sharability, group: &[MopId]) -> bool {
        if group.len() < 2 {
            return false;
        }
        let keys: Option<Vec<GroupKey>> = group
            .iter()
            .map(|&id| {
                plan.mop_opt(id)
                    .and_then(|n| (self.classify)(plan, sharable, n))
            })
            .collect();
        let Some(keys) = keys else { return false };
        if keys.windows(2).any(|w| w[0] != w[1]) {
            return false;
        }
        if self.channel {
            channel_precondition(plan, group)
        } else {
            true
        }
    }

    fn apply(&self, plan: &mut PlanGraph, group: &[MopId]) -> Result<MopId> {
        if self.channel {
            channel_apply(plan, group, self.kind)
        } else {
            plan.merge_mops(group, self.kind)
        }
    }

    fn encodes_channels(&self) -> bool {
        self.channel
    }
}

/// Channel rules may only fire when the member input streams can actually be
/// encoded into one channel: union-compatible schemas, and either all in
/// singleton channels or already encoded together.
fn channel_precondition(plan: &PlanGraph, group: &[MopId]) -> bool {
    let streams = port_streams(plan, group, 0);
    if streams.len() >= 2 {
        let first_schema = &plan.stream(streams[0]).schema;
        if !streams
            .iter()
            .all(|&s| plan.stream(s).schema.union_compatible(first_schema))
        {
            return false;
        }
        let first_channel = plan.channel_of(streams[0]);
        let all_same = streams.iter().all(|&s| plan.channel_of(s) == first_channel);
        let all_singleton = streams
            .iter()
            .all(|&s| plan.channel(plan.channel_of(s)).capacity() == 1);
        if !(all_same || all_singleton) {
            return false;
        }
    }
    true
}

/// Distinct member input streams on a port, in first-seen order.
fn port_streams(plan: &PlanGraph, group: &[MopId], port: usize) -> Vec<StreamId> {
    let mut streams = Vec::new();
    for &id in group {
        for m in &plan.mop(id).members {
            let s = m.inputs[port];
            if !streams.contains(&s) {
                streams.push(s);
            }
        }
    }
    streams
}

fn encode_if_needed(plan: &mut PlanGraph, streams: &[StreamId]) -> Result<()> {
    if streams.len() < 2 {
        return Ok(());
    }
    let first = plan.channel_of(streams[0]);
    if streams.iter().all(|&s| plan.channel_of(s) == first) {
        return Ok(()); // already encoded together
    }
    plan.encode_channel(streams)?;
    Ok(())
}

/// The action of every channel rule: encode the (sharable) port-0 input
/// streams into a channel, merge the group, then encode the target's output
/// streams into a channel as well (§4.4: "...and again encode their output
/// streams with a channel D").
fn channel_apply(plan: &mut PlanGraph, group: &[MopId], kind: MopKind) -> Result<MopId> {
    let left_streams = port_streams(plan, group, 0);
    encode_if_needed(plan, &left_streams)?;
    let target = plan.merge_mops(group, kind)?;
    let outs: Vec<StreamId> = plan.mop(target).output_streams().collect();
    let all_singleton = outs
        .iter()
        .all(|&s| plan.channel(plan.channel_of(s)).capacity() == 1);
    if all_singleton {
        encode_if_needed(plan, &outs)?;
    }
    Ok(target)
}

// ----------------------------------------------------------------------
// Classifiers: s-rules
// ----------------------------------------------------------------------

/// All members read the same port-`p` stream; returns it.
fn uniform_port_stream(node: &MopNode, port: usize) -> Option<StreamId> {
    let first = node.members.first()?.inputs.get(port).copied()?;
    node.members
        .iter()
        .all(|m| m.inputs.get(port) == Some(&first))
        .then_some(first)
}

fn classify_s_sigma(_: &PlanGraph, _: &Sharability, node: &MopNode) -> Option<GroupKey> {
    node.members
        .iter()
        .all(|m| matches!(m.def, OpDef::Select(_)))
        .then(|| uniform_port_stream(node, 0))
        .flatten()
        .map(GroupKey::SameStream)
}

fn classify_s_pi(_: &PlanGraph, _: &Sharability, node: &MopNode) -> Option<GroupKey> {
    node.members
        .iter()
        .all(|m| matches!(m.def, OpDef::Project(_)))
        .then(|| uniform_port_stream(node, 0))
        .flatten()
        .map(GroupKey::SameStream)
}

fn classify_s_alpha(_: &PlanGraph, _: &Sharability, node: &MopNode) -> Option<GroupKey> {
    let stream = uniform_port_stream(node, 0)?;
    let mut shared: Option<(AggFunc, &Expr, u64)> = None;
    for m in &node.members {
        let OpDef::Aggregate(spec) = &m.def else {
            return None;
        };
        let key = spec.shared_key();
        match &shared {
            None => shared = Some(key),
            Some(k) if *k == key => {}
            Some(_) => return None,
        }
    }
    let (func, input, window) = shared?;
    Some(GroupKey::SameStreamAgg(stream, func, input.clone(), window))
}

fn classify_s_join(_: &PlanGraph, _: &Sharability, node: &MopNode) -> Option<GroupKey> {
    let l = uniform_port_stream(node, 0)?;
    let r = uniform_port_stream(node, 1)?;
    let mut pred: Option<&Predicate> = None;
    for m in &node.members {
        let OpDef::Join(spec) = &m.def else {
            return None;
        };
        match pred {
            None => pred = Some(&spec.predicate),
            Some(p) if *p == spec.predicate => {}
            Some(_) => return None,
        }
    }
    Some(GroupKey::SamePairPred(l, r, pred?.clone()))
}

fn classify_s_seq(_: &PlanGraph, _: &Sharability, node: &MopNode) -> Option<GroupKey> {
    let l = uniform_port_stream(node, 0)?;
    let r = uniform_port_stream(node, 1)?;
    let mut pred: Option<&Predicate> = None;
    for m in &node.members {
        let OpDef::Sequence(spec) = &m.def else {
            return None;
        };
        match pred {
            None => pred = Some(&spec.predicate),
            Some(p) if *p == spec.predicate => {}
            Some(_) => return None,
        }
    }
    Some(GroupKey::SamePairPred(l, r, pred?.clone()))
}

fn classify_s_mu(_: &PlanGraph, _: &Sharability, node: &MopNode) -> Option<GroupKey> {
    let l = uniform_port_stream(node, 0)?;
    let r = uniform_port_stream(node, 1)?;
    let mut def: Option<(&Predicate, &Predicate, &SchemaMap)> = None;
    for m in &node.members {
        let OpDef::Iterate(spec) = &m.def else {
            return None;
        };
        let key = (&spec.filter, &spec.rebind, &spec.rebind_map);
        match &def {
            None => def = Some(key),
            Some(k) if *k == key => {}
            Some(_) => return None,
        }
    }
    let (f, r_, m) = def?;
    Some(GroupKey::SamePairIter(
        l,
        r,
        f.clone(),
        r_.clone(),
        m.clone(),
    ))
}

// ----------------------------------------------------------------------
// Classifiers: c-rules
// ----------------------------------------------------------------------

/// All members share one definition; returns it.
fn uniform_def(node: &MopNode) -> Option<&OpDef> {
    let first = &node.members.first()?.def;
    node.members
        .iter()
        .all(|m| &m.def == first)
        .then_some(first)
}

/// All members' port-`p` input streams share a signature and a producing
/// m-op (§3.2 criteria (a) and (b)); returns `(producer, signature)`.
fn uniform_port_class(
    plan: &PlanGraph,
    sharable: &Sharability,
    node: &MopNode,
    port: usize,
) -> Option<(ProducerKey, SigId)> {
    let mut result: Option<(ProducerKey, SigId)> = None;
    for m in &node.members {
        let s = *m.inputs.get(port)?;
        let producer = match plan.stream(s).producer {
            Producer::Mop { mop, .. } => ProducerKey::Mop(mop),
            Producer::Source(_) => {
                // Only streams of a channel source qualify: they are
                // already encoded together by the external feeder.
                let ch = plan.channel_of(s);
                if plan.channel(ch).capacity() < 2 {
                    return None;
                }
                ProducerKey::SourceChannel(ch)
            }
        };
        let sig = sharable.signature(s)?;
        match &result {
            None => result = Some((producer, sig)),
            Some(r) if *r == (producer, sig) => {}
            Some(_) => return None,
        }
    }
    result
}

fn classify_c_unary(
    plan: &PlanGraph,
    sharable: &Sharability,
    node: &MopNode,
    is_type: fn(&OpDef) -> bool,
) -> Option<GroupKey> {
    let def = uniform_def(node)?;
    if !is_type(def) {
        return None;
    }
    let (producer, sig) = uniform_port_class(plan, sharable, node, 0)?;
    Some(GroupKey::ChannelUnary(def.clone(), producer, sig))
}

fn classify_c_binary(
    plan: &PlanGraph,
    sharable: &Sharability,
    node: &MopNode,
    is_type: fn(&OpDef) -> bool,
) -> Option<GroupKey> {
    // The `;`/`µ` channel m-ops support per-member duration windows (like
    // rule s⋈ does for joins), so the grouping definition ignores windows.
    let mut defs = node.members.iter().map(|m| normalize_window(&m.def));
    let def = defs.next()?;
    if defs.any(|d| d != def) || !is_type(&def) {
        return None;
    }
    let (producer, sig) = uniform_port_class(plan, sharable, node, 0)?;
    let right = uniform_port_stream(node, 1)?;
    Some(GroupKey::ChannelBinary(def, producer, sig, right))
}

/// Zeroes the duration window of `;`/`µ` definitions for grouping purposes.
fn normalize_window(def: &OpDef) -> OpDef {
    match def {
        OpDef::Sequence(spec) => OpDef::Sequence(SeqSpec {
            predicate: spec.predicate.clone(),
            window: 0,
        }),
        OpDef::Iterate(spec) => {
            let mut spec = spec.clone();
            spec.window = 0;
            OpDef::Iterate(spec)
        }
        other => other.clone(),
    }
}

fn classify_c_sigma(p: &PlanGraph, sh: &Sharability, n: &MopNode) -> Option<GroupKey> {
    classify_c_unary(p, sh, n, |d| matches!(d, OpDef::Select(_)))
}

fn classify_c_pi(p: &PlanGraph, sh: &Sharability, n: &MopNode) -> Option<GroupKey> {
    classify_c_unary(p, sh, n, |d| matches!(d, OpDef::Project(_)))
}

fn classify_c_alpha(p: &PlanGraph, sh: &Sharability, n: &MopNode) -> Option<GroupKey> {
    classify_c_unary(p, sh, n, |d| matches!(d, OpDef::Aggregate(_)))
}

fn classify_c_join(p: &PlanGraph, sh: &Sharability, n: &MopNode) -> Option<GroupKey> {
    classify_c_binary(p, sh, n, |d| matches!(d, OpDef::Join(_)))
}

fn classify_c_seq(p: &PlanGraph, sh: &Sharability, n: &MopNode) -> Option<GroupKey> {
    classify_c_binary(p, sh, n, |d| matches!(d, OpDef::Sequence(_)))
}

fn classify_c_mu(p: &PlanGraph, sh: &Sharability, n: &MopNode) -> Option<GroupKey> {
    classify_c_binary(p, sh, n, |d| matches!(d, OpDef::Iterate(_)))
}

// ----------------------------------------------------------------------
// Sequence predicate pushdown
// ----------------------------------------------------------------------

/// Pushes the event-only (right-side constant) conjuncts of a `;` predicate
/// below the operator as a selection on the second input stream.
///
/// This is the rewrite that turns Cayuga's AN index into an ordinary
/// predicate-indexing opportunity: after pushdown, the per-query event
/// predicates θ3 of Workload 1 (§5.2) become selections that all read the
/// same stream T, so rule sσ merges them into one hash-indexed m-op.
///
/// Safe for `;` because sequence instances are only deleted on a *match*;
/// events that fail the pushed conjunct could never match, so filtering
/// them early is unobservable. (It would be unsound for `µ` whose filter
/// edge can delete instances on non-matching events.)
struct SeqPushdown;

impl SeqPushdown {
    fn pushable(node: &MopNode) -> Option<(SeqSpec, Vec<Predicate>, Vec<Predicate>)> {
        if node.members.len() != 1 {
            return None;
        }
        let OpDef::Sequence(spec) = &node.members[0].def else {
            return None;
        };
        let conjuncts: Vec<Predicate> = match &spec.predicate {
            Predicate::And(ps) => ps.clone(),
            Predicate::True => return None,
            p => vec![p.clone()],
        };
        let (push, keep): (Vec<Predicate>, Vec<Predicate>) = conjuncts
            .into_iter()
            .partition(|c| c.references(Side::Right) && !c.references(Side::Left));
        if push.is_empty() {
            return None;
        }
        Some((spec.clone(), push, keep))
    }
}

impl MRule for SeqPushdown {
    fn name(&self) -> &'static str {
        "seq_pushdown"
    }

    fn priority(&self) -> u32 {
        5
    }

    fn min_group(&self) -> usize {
        1
    }

    fn find_groups(&self, plan: &PlanGraph, _: &Sharability) -> Vec<Vec<MopId>> {
        let canon = plan.structural_keys();
        let key_of = |id: MopId| canon.get(&id).map(String::as_str).unwrap_or("");
        let mut groups: Vec<Vec<MopId>> = plan
            .mops()
            .filter(|n| SeqPushdown::pushable(n).is_some())
            .map(|n| vec![n.id])
            .collect();
        groups.sort_by(|a, b| key_of(a[0]).cmp(key_of(b[0])).then(a[0].cmp(&b[0])));
        groups
    }

    fn condition(&self, plan: &PlanGraph, _: &Sharability, group: &[MopId]) -> bool {
        group.len() == 1
            && plan
                .mop_opt(group[0])
                .is_some_and(|n| SeqPushdown::pushable(n).is_some())
    }

    fn apply(&self, plan: &mut PlanGraph, group: &[MopId]) -> Result<MopId> {
        let id = group[0];
        let node = plan.mop(id);
        let (spec, push, keep) = SeqPushdown::pushable(node)
            .ok_or_else(|| RumorError::rule("pushdown no longer applicable".to_string()))?;
        let right_stream = node.members[0].inputs[1];
        // Rewrite the pushed conjuncts from binary (instance, event) space
        // into unary predicates over the event stream.
        let select_pred = Predicate::and(
            push.iter()
                .map(|c| c.shift_side(Side::Right, 0, Side::Left))
                .collect(),
        );
        let (sel_id, sel_out) = plan.add_op(OpDef::Select(select_pred), vec![right_stream])?;
        plan.rewire_member_input(id, 0, 1, sel_out)?;
        plan.set_member_def(
            id,
            0,
            OpDef::Sequence(SeqSpec {
                predicate: Predicate::and(keep),
                window: spec.window,
            }),
        )?;
        Ok(sel_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{AggSpec, IterSpec, JoinSpec, LogicalPlan};
    use crate::rules::Optimizer;
    use rumor_expr::CmpOp;
    use rumor_types::Schema;

    fn setup_st() -> PlanGraph {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(3), None).unwrap();
        p.add_source("T", Schema::ints(3), None).unwrap();
        p
    }

    /// Table 1: the full catalogue registers all nine paper rules (plus the
    /// extensions), in the documented priority order.
    #[test]
    fn table1_rule_catalogue_registered() {
        let opt = Optimizer::new(OptimizerConfig::default());
        let names = opt.rule_names();
        for required in [
            "s_sigma", "s_alpha", "s_join", "s_seq", "s_mu", // same-stream rules
            "c_alpha", "c_join", "c_seq", "c_mu", // channel rules
        ] {
            assert!(names.contains(&required), "missing rule {required}");
        }
        // Priority order: pushdown, then s-rules, then c-rules.
        let pos = |n: &str| names.iter().position(|&x| x == n).unwrap();
        assert!(pos("seq_pushdown") < pos("s_sigma"));
        assert!(pos("s_sigma") < pos("c_sigma"));
        assert!(pos("s_mu") < pos("c_mu"));
    }

    #[test]
    fn s_sigma_merges_same_stream_selections() {
        let mut p = setup_st();
        for c in 0..5i64 {
            p.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, c)))
                .unwrap();
        }
        let opt = Optimizer::new(OptimizerConfig::default());
        let trace = opt.optimize(&mut p).unwrap();
        assert_eq!(trace.count("s_sigma"), 1);
        assert_eq!(p.mop_count(), 1);
        let node = p.mops().next().unwrap();
        assert_eq!(node.kind, MopKind::IndexedSelect);
        assert_eq!(node.members.len(), 5);
        p.validate().unwrap();
    }

    #[test]
    fn s_sigma_dedupes_identical_queries() {
        let mut p = setup_st();
        let q = LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 7i64));
        let q1 = p.add_query(&q).unwrap();
        let q2 = p.add_query(&q).unwrap();
        let opt = Optimizer::new(OptimizerConfig::default());
        opt.optimize(&mut p).unwrap();
        assert_eq!(p.mop_count(), 1);
        assert_eq!(p.mops().next().unwrap().members.len(), 1, "CSE dedup");
        assert_eq!(p.query_output(q1), p.query_output(q2));
        p.validate().unwrap();
    }

    #[test]
    fn s_alpha_requires_same_function() {
        let mut p = setup_st();
        let agg = |func, group_by: Vec<usize>| {
            LogicalPlan::source("S").aggregate(AggSpec {
                func,
                input: Expr::col(1),
                group_by,
                window: 10,
            })
        };
        p.add_query(&agg(AggFunc::Sum, vec![0])).unwrap();
        p.add_query(&agg(AggFunc::Sum, vec![0, 2])).unwrap();
        p.add_query(&agg(AggFunc::Max, vec![0])).unwrap();
        let opt = Optimizer::new(OptimizerConfig::default());
        let trace = opt.optimize(&mut p).unwrap();
        assert_eq!(trace.count("s_alpha"), 1);
        // Sum group merged; Max stays alone.
        assert_eq!(p.mop_count(), 2);
        let shared = p
            .mops()
            .find(|n| n.kind == MopKind::SharedAggregate)
            .unwrap();
        assert_eq!(shared.members.len(), 2);
        p.validate().unwrap();
    }

    #[test]
    fn s_join_shares_across_windows() {
        let mut p = setup_st();
        let join = |w| {
            LogicalPlan::source("S").join(
                LogicalPlan::source("T"),
                JoinSpec {
                    predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                    window: w,
                },
            )
        };
        p.add_query(&join(10)).unwrap();
        p.add_query(&join(100)).unwrap();
        p.add_query(&join(1000)).unwrap();
        let opt = Optimizer::new(OptimizerConfig::default());
        let trace = opt.optimize(&mut p).unwrap();
        assert_eq!(trace.count("s_join"), 1);
        let node = p.mops().next().unwrap();
        assert_eq!(node.kind, MopKind::SharedJoin);
        assert_eq!(
            node.members.len(),
            3,
            "different windows stay distinct members"
        );
        p.validate().unwrap();
    }

    #[test]
    fn seq_pushdown_extracts_event_predicate() {
        let mut p = setup_st();
        // σθ1(S) ;θ3,win T with θ3 = T.a0 = 5 — the Workload 1 template.
        let q = LogicalPlan::source("S")
            .select(Predicate::attr_eq_const(0, 1i64))
            .followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: Predicate::cmp(CmpOp::Eq, Expr::rcol(0), Expr::lit(5i64)),
                    window: 50,
                },
            );
        p.add_query(&q).unwrap();
        let opt = Optimizer::new(OptimizerConfig::default());
        let trace = opt.optimize(&mut p).unwrap();
        assert_eq!(trace.count("seq_pushdown"), 1);
        // The ; now has a trivial predicate and reads a new selection on T.
        let seq = p
            .mops()
            .find(|n| matches!(n.members[0].def, OpDef::Sequence(_)))
            .unwrap();
        let OpDef::Sequence(spec) = &seq.members[0].def else {
            unreachable!()
        };
        assert_eq!(spec.predicate, Predicate::True);
        let t = p.source_by_name("T").unwrap().stream;
        let sel = p
            .mops()
            .find(|n| matches!(n.members[0].def, OpDef::Select(_)) && n.members[0].inputs[0] == t)
            .unwrap();
        let OpDef::Select(sp) = &sel.members[0].def else {
            unreachable!()
        };
        assert_eq!(sp, &Predicate::attr_eq_const(0, 5i64));
        p.validate().unwrap();
    }

    #[test]
    fn workload1_shape_full_rewrite() {
        // Many σθ1(S) ;θ3 T queries: expect one indexed select on S (FR
        // index), one indexed select on T (AN index via pushdown), and the
        // remaining per-query ; ops.
        let mut p = setup_st();
        let n = 6i64;
        for c in 0..n {
            let q = LogicalPlan::source("S")
                .select(Predicate::attr_eq_const(0, c))
                .followed_by(
                    LogicalPlan::source("T"),
                    SeqSpec {
                        predicate: Predicate::cmp(CmpOp::Eq, Expr::rcol(0), Expr::lit(c)),
                        window: 100,
                    },
                );
            p.add_query(&q).unwrap();
        }
        let opt = Optimizer::new(OptimizerConfig::default());
        let trace = opt.optimize(&mut p).unwrap();
        assert_eq!(trace.count("seq_pushdown"), n as usize);
        assert_eq!(trace.count("s_sigma"), 2, "one index on S, one on T");
        // 2 indexed selects + n sequence m-ops.
        assert_eq!(p.mop_count(), 2 + n as usize);
        p.validate().unwrap();
    }

    #[test]
    fn s_seq_cse_merges_identical_sequences() {
        let mut p = setup_st();
        let q = LogicalPlan::source("S").followed_by(
            LogicalPlan::source("T"),
            SeqSpec {
                predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                window: 10,
            },
        );
        let a = p.add_query(&q).unwrap();
        let b = p.add_query(&q).unwrap();
        let opt = Optimizer::new(OptimizerConfig::default());
        let trace = opt.optimize(&mut p).unwrap();
        assert_eq!(trace.count("s_seq"), 1);
        assert_eq!(p.mop_count(), 1);
        assert_eq!(p.query_output(a), p.query_output(b), "CSE aliased outputs");
        p.validate().unwrap();
    }

    #[test]
    fn c_alpha_builds_channel_over_selection_outputs() {
        // Example 1 / Figure 1(c): σ1, σ2 on S feeding two identical
        // aggregations. Expect: sσ merges the selections, then cα encodes
        // their outputs into a channel and merges the aggregations.
        let mut p = setup_st();
        let agg = AggSpec {
            func: AggFunc::Sum,
            input: Expr::col(1),
            group_by: vec![],
            window: 10,
        };
        for c in 0..2i64 {
            let q = LogicalPlan::source("S")
                .select(Predicate::attr_eq_const(0, c))
                .aggregate(agg.clone());
            p.add_query(&q).unwrap();
        }
        let opt = Optimizer::new(OptimizerConfig::default());
        let trace = opt.optimize(&mut p).unwrap();
        assert_eq!(trace.count("s_sigma"), 1);
        assert_eq!(trace.count("c_alpha"), 1);
        assert_eq!(p.mop_count(), 2);
        let frag = p
            .mops()
            .find(|n| n.kind == MopKind::FragmentAggregate)
            .unwrap();
        // Its two member inputs share one channel of capacity 2.
        let ch = p.channel_of(frag.members[0].inputs[0]);
        assert_eq!(p.channel(ch).capacity(), 2);
        assert_eq!(frag.inputs[0], ch);
        // Output streams also encoded as a channel.
        let out_ch = p.channel_of(frag.members[0].output);
        assert_eq!(p.channel(out_ch).capacity(), 2);
        p.validate().unwrap();
    }

    #[test]
    fn channels_disabled_keeps_streams_plain() {
        let mut p = setup_st();
        let agg = AggSpec {
            func: AggFunc::Sum,
            input: Expr::col(1),
            group_by: vec![],
            window: 10,
        };
        for c in 0..2i64 {
            p.add_query(
                &LogicalPlan::source("S")
                    .select(Predicate::attr_eq_const(0, c))
                    .aggregate(agg.clone()),
            )
            .unwrap();
        }
        let opt = Optimizer::new(OptimizerConfig::without_channels());
        let trace = opt.optimize(&mut p).unwrap();
        assert_eq!(trace.count("c_alpha"), 0);
        assert!(p.channels().all(|c| c.capacity() == 1));
        p.validate().unwrap();
    }

    #[test]
    fn c_mu_full_query2_pipeline() {
        // The n-instance Query 2 plan of Figure 6: α shared, starting
        // conditions σsi merged by sσ, µ merged by cµ over a channel,
        // stopping conditions merged by cσ.
        let mut p = PlanGraph::new();
        p.add_source("CPU", Schema::ints(2), None).unwrap();
        let smoothed = LogicalPlan::source("CPU").aggregate(AggSpec {
            func: AggFunc::Avg,
            input: Expr::col(1),
            group_by: vec![0],
            window: 5,
        });
        let n = 4i64;
        for c in 0..n {
            // Starting condition differs per query; the rest is identical.
            let start =
                smoothed
                    .clone()
                    .select(Predicate::cmp(CmpOp::Lt, Expr::col(1), Expr::lit(c * 10)));
            let mu = start.iterate(
                smoothed.clone(),
                IterSpec {
                    filter: Predicate::cmp(CmpOp::Ne, Expr::col(0), Expr::rcol(0)),
                    rebind: Predicate::and(vec![
                        Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                        Predicate::cmp(CmpOp::Gt, Expr::rcol(1), Expr::col(1)),
                    ]),
                    rebind_map: SchemaMap::new(vec![
                        rumor_expr::NamedExpr::new("a0", Expr::col(0)),
                        rumor_expr::NamedExpr::new("avg", Expr::rcol(1)),
                    ]),
                    window: 100,
                },
            );
            let q = mu.select(Predicate::cmp(CmpOp::Gt, Expr::col(1), Expr::lit(90i64)));
            p.add_query(&q).unwrap();
        }
        let opt = Optimizer::new(OptimizerConfig::default());
        let trace = opt.optimize(&mut p).unwrap();
        assert!(trace.count("s_alpha") >= 1, "smoothing aggregate shared");
        assert_eq!(trace.count("s_sigma"), 1, "starting conditions indexed");
        assert_eq!(trace.count("c_mu"), 1, "µ ops merged over channel");
        assert_eq!(trace.count("c_sigma"), 1, "stopping conditions merged");
        // Final plan: α, σ{s}, µ{1..n}, σ{e} — four m-ops.
        assert_eq!(p.mop_count(), 4);
        p.validate().unwrap();
    }
}
