//! The *sharable streams* relation `~` of §3.2.
//!
//! Two streams are sharable iff they are "the result of the same query
//! plans, modulo any selection operators anywhere in the plan, applied to
//! the same input streams". The paper defines `~` inductively (base cases
//! for identical streams and sharable-labeled sources, inductive cases over
//! unary/binary operators, selection transparency, symmetry, transitivity).
//!
//! We compute `~` by assigning each stream a *structural signature*:
//!
//! * a source stream's signature is its source's sharable label;
//! * a selection's output signature equals its input's signature
//!   (selection transparency);
//! * any other member output's signature is the interned pair of its
//!   operator definition and its inputs' signatures.
//!
//! Two streams are sharable iff their signatures are interned to the same
//! id — which makes `~` "very efficient to compute and store" exactly as
//! the paper requires, and an equivalence relation by construction.

use std::collections::HashMap;

use rumor_types::StreamId;

use crate::logical::OpDef;
use crate::plan::PlanGraph;

/// Interned signature id; equal ids ⟺ sharable streams.
pub type SigId = u32;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum SigNode {
    Source(String),
    Op(OpDef, Vec<SigId>),
}

/// The computed sharability analysis for a plan snapshot.
#[derive(Debug, Default)]
pub struct Sharability {
    sig_of_stream: HashMap<StreamId, SigId>,
}

impl Sharability {
    /// Analyzes the plan and computes every live stream's signature.
    pub fn analyze(plan: &PlanGraph) -> Self {
        let mut intern: HashMap<SigNode, SigId> = HashMap::new();
        let mut sig_of_stream: HashMap<StreamId, SigId> = HashMap::new();
        let intern_node = |node: SigNode, table: &mut HashMap<SigNode, SigId>| -> SigId {
            let next = table.len() as SigId;
            *table.entry(node).or_insert(next)
        };

        // Source streams first. All streams of a channel source share the
        // source's label (§3.2 base case 2).
        for src in plan.sources() {
            let sig = intern_node(SigNode::Source(src.sharable_label.clone()), &mut intern);
            for &stream in &src.streams {
                sig_of_stream.insert(stream, sig);
            }
        }

        // Member outputs in topological order (producers precede consumers).
        let Ok(order) = plan.topo_order() else {
            return Sharability { sig_of_stream };
        };
        for mid in order {
            let node = plan.mop(mid);
            for member in &node.members {
                let input_sigs: Option<Vec<SigId>> = member
                    .inputs
                    .iter()
                    .map(|s| sig_of_stream.get(s).copied())
                    .collect();
                let Some(input_sigs) = input_sigs else {
                    continue;
                };
                let sig = if member.def.is_select() {
                    // Special case for selection (§3.2): σ(T) ~ T.
                    input_sigs[0]
                } else {
                    intern_node(SigNode::Op(member.def.clone(), input_sigs), &mut intern)
                };
                sig_of_stream.insert(member.output, sig);
            }
        }
        Sharability { sig_of_stream }
    }

    /// The signature of a stream, if it was reachable during analysis.
    pub fn signature(&self, stream: StreamId) -> Option<SigId> {
        self.sig_of_stream.get(&stream).copied()
    }

    /// Whether two streams are sharable (`S1 ~ S2`).
    pub fn sharable(&self, a: StreamId, b: StreamId) -> bool {
        match (self.signature(a), self.signature(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{AggFunc, AggSpec};
    use rumor_expr::{Expr, Predicate};
    use rumor_types::Schema;

    fn agg(window: u64) -> OpDef {
        OpDef::Aggregate(AggSpec {
            func: AggFunc::Sum,
            input: Expr::col(0),
            group_by: vec![],
            window,
        })
    }

    #[test]
    fn stream_sharable_with_itself() {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(1), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let sh = Sharability::analyze(&p);
        assert!(sh.sharable(s, s));
    }

    #[test]
    fn selection_outputs_sharable_with_input() {
        // §3.2 special case: σ(T) ~ T, so two selections with different
        // predicates over the same stream are sharable with each other.
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(1), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let (_, o1) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 1i64)), vec![s])
            .unwrap();
        let (_, o2) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 2i64)), vec![s])
            .unwrap();
        let sh = Sharability::analyze(&p);
        assert!(sh.sharable(o1, s));
        assert!(sh.sharable(o1, o2));
    }

    #[test]
    fn same_plan_modulo_selections_is_sharable() {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(1), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        // α(σ1(S)) vs α(σ2(S)): same aggregation over sharable inputs.
        let (_, f1) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 1i64)), vec![s])
            .unwrap();
        let (_, f2) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 2i64)), vec![s])
            .unwrap();
        let (_, a1) = p.add_op(agg(10), vec![f1]).unwrap();
        let (_, a2) = p.add_op(agg(10), vec![f2]).unwrap();
        let sh = Sharability::analyze(&p);
        assert!(sh.sharable(a1, a2));
        // But not sharable with the raw stream or the filters.
        assert!(!sh.sharable(a1, s));
        assert!(!sh.sharable(a1, f1));
    }

    #[test]
    fn different_definitions_not_sharable() {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(1), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let (_, a1) = p.add_op(agg(10), vec![s]).unwrap();
        let (_, a2) = p.add_op(agg(20), vec![s]).unwrap();
        let sh = Sharability::analyze(&p);
        assert!(!sh.sharable(a1, a2), "different windows are different ops");
    }

    #[test]
    fn labeled_sources_are_sharable() {
        let mut p = PlanGraph::new();
        p.add_source("S1", Schema::ints(1), Some("grp".into()))
            .unwrap();
        p.add_source("S2", Schema::ints(1), Some("grp".into()))
            .unwrap();
        p.add_source("T", Schema::ints(1), None).unwrap();
        let s1 = p.source_by_name("S1").unwrap().stream;
        let s2 = p.source_by_name("S2").unwrap().stream;
        let t = p.source_by_name("T").unwrap().stream;
        let sh = Sharability::analyze(&p);
        assert!(sh.sharable(s1, s2));
        assert!(!sh.sharable(s1, t));
        // Inductive case over unary ops: α(S1) ~ α(S2).
        let mut p2 = p.clone();
        let (_, a1) = p2.add_op(agg(10), vec![s1]).unwrap();
        let (_, a2) = p2.add_op(agg(10), vec![s2]).unwrap();
        let sh2 = Sharability::analyze(&p2);
        assert!(sh2.sharable(a1, a2));
    }

    #[test]
    fn binary_inductive_case() {
        use crate::logical::SeqSpec;
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(1), None).unwrap();
        p.add_source("T", Schema::ints(1), None).unwrap();
        let s = p.source_by_name("S").unwrap().stream;
        let t = p.source_by_name("T").unwrap().stream;
        let (_, l1) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 1i64)), vec![s])
            .unwrap();
        let (_, l2) = p
            .add_op(OpDef::Select(Predicate::attr_eq_const(0, 2i64)), vec![s])
            .unwrap();
        let seq = |p: &mut PlanGraph, l, r| {
            p.add_op(
                OpDef::Sequence(SeqSpec {
                    predicate: Predicate::True,
                    window: 5,
                }),
                vec![l, r],
            )
            .unwrap()
            .1
        };
        let q1 = seq(&mut p, l1, t);
        let q2 = seq(&mut p, l2, t);
        let sh = Sharability::analyze(&p);
        assert!(
            sh.sharable(q1, q2),
            "same ; over sharable left and identical right inputs"
        );
    }
}
