//! Static partitioning analysis for shared plans.
//!
//! Data-parallel execution of a shared plan replicates the whole m-op DAG
//! across `n` workers and routes every source tuple to exactly one worker.
//! That is only correct when tuples that must meet in stateful operator
//! state (join/sequence/iterate partners, aggregate group members) are
//! guaranteed to land on the same worker. This module computes, per plan
//! component, whether such a routing exists:
//!
//! * **stateless** — no stateful m-op consumes the component's tuples, so
//!   any distribution (round-robin) preserves per-query result multisets;
//! * **key-partitionable** — every stateful m-op's state is keyed, and the
//!   keys trace back (through selections, projections, and operator
//!   concatenations) to one consistent set of attributes per source, so
//!   hash routing on those attributes co-locates every pair of tuples that
//!   can interact;
//! * **pinned** — no consistent key exists (an unkeyed sequence scan, an
//!   aggregate with no shared group attribute, lost attribute lineage):
//!   the component must run on a single designated worker.
//!
//! Pinned *and keyed* verdicts are additionally refined per source by the
//! stateful-cone analysis: only the subgraph from which a stateful m-op is
//! reachable actually needs the constrained placement, so a source that
//! also feeds purely stateless consumers splits its delivery
//! ([`SourceRoute::PinnedSplit`] / [`SourceRoute::KeySplit`]) and the
//! stateless leg round-robins for load balance.
//!
//! The m-op side of the contract is [`PartitionKeys`], reported by every
//! physical implementation through
//! [`MultiOp::partition_keys`](crate::mop::MultiOp::partition_keys);
//! the plan side is attribute *lineage* — which source attribute a stream
//! attribute is a verbatim copy of — computed here from the operator
//! definitions.

use std::collections::{BTreeSet, HashMap};

use rumor_expr::{Expr, Side};
use rumor_types::{MopId, Result, RumorError, SourceId, StreamId, Value};

use crate::logical::OpDef;
use crate::plan::{PlanDelta, PlanGraph, Producer};

/// How a physical m-op's state is partitioned over its input attributes —
/// the key introspection report backing the partitioning analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionKeys {
    /// No state at all: outputs depend on each input tuple alone, so the
    /// operator is transparent to any input partitioning.
    Stateless,
    /// State is hash-bucketed by an equi-key: tuples interact only when
    /// their key attribute values match position-wise across ports
    /// (window joins, AI-indexed sequences, keyed iterations). `per_port`
    /// holds one attribute list per input port; the lists are parallel
    /// (position `j` of every port compares equal on interacting tuples).
    Equi {
        /// Key attribute positions per input port, parallel across ports.
        per_port: Vec<Vec<usize>>,
    },
    /// State is grouped: tuples interact exactly when they agree on every
    /// listed attribute (window aggregates). Any hash key drawn from a
    /// subset of these attributes keeps each group on one worker.
    Grouped {
        /// Attribute positions (on the single input port) that every
        /// member's grouping refines.
        group_by: Vec<usize>,
    },
    /// Stateful with no exploitable key structure: correct only when all
    /// input the operator can observe stays on one worker.
    Opaque,
}

/// Partitionability of one connected component of the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every m-op reachable from the component's sources is stateless.
    Stateless,
    /// A consistent per-source hash key co-locates all interacting tuples.
    Keyed,
    /// Must execute on a single designated worker.
    Pinned,
}

/// How one source's tuples are routed across workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceRoute {
    /// Any worker may take the tuple (stateless consumers only);
    /// round-robin keeps the load even and stays deterministic.
    RoundRobin,
    /// Hash the listed attribute positions of the tuple.
    Key(Vec<usize>),
    /// Split delivery for a *keyed* component with stateless sibling
    /// queries: the stateful cone still receives every tuple on the
    /// worker selected by hashing the listed attribute positions (exactly
    /// as [`SourceRoute::Key`] would), but the source also feeds purely
    /// stateless consumers (and/or direct query taps) outside the cone,
    /// and that stateless subgraph round-robins across workers instead of
    /// piling onto the hashed worker. Runtimes deliver such tuples twice —
    /// once scoped to each subgraph — so the union of the two scoped
    /// deliveries equals one full delivery. This is the keyed counterpart
    /// of [`SourceRoute::PinnedSplit`].
    KeySplit(Vec<usize>),
    /// Always worker 0.
    Pinned,
    /// Split delivery for a pinned component with stateless sibling
    /// queries: the *stateful subgraph* (every m-op from which a stateful
    /// m-op is reachable) still executes on worker 0, but the source also
    /// feeds purely stateless consumers (and/or direct query taps), and
    /// that stateless subgraph round-robins across workers. Runtimes
    /// deliver such tuples twice — once scoped to each subgraph — so the
    /// union of the two scoped deliveries equals one full delivery.
    PinnedSplit,
}

/// How much of a pinned component actually forces single-worker execution
/// — the per-subgraph refinement of [`Verdict::Pinned`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinScope {
    /// Every consumer of the component's sources leads to a stateful m-op:
    /// the whole component runs on worker 0.
    WholeComponent,
    /// Only the stateful subgraph is pinned; stateless sibling queries of
    /// the same component round-robin ([`SourceRoute::PinnedSplit`]).
    StatefulSubgraph,
}

/// One connected component of the plan's source/m-op graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentReport {
    /// Sources in the component, ascending.
    pub sources: Vec<SourceId>,
    /// The component verdict.
    pub verdict: Verdict,
    /// For pinned components, how much of the component the pin covers
    /// (`None` for stateless/keyed verdicts).
    pub pin_scope: Option<PinScope>,
}

/// The partitioning scheme of a plan: a verdict per component and a
/// routing rule per source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionScheme {
    routes: Vec<SourceRoute>,
    components: Vec<ComponentReport>,
}

impl PartitionScheme {
    /// The routing rule for `source`.
    pub fn route(&self, source: SourceId) -> &SourceRoute {
        &self.routes[source.index()]
    }

    /// Routing rules indexed by source.
    pub fn routes(&self) -> &[SourceRoute] {
        &self.routes
    }

    /// The component reports, in first-source order.
    pub fn components(&self) -> &[ComponentReport] {
        &self.components
    }

    /// Number of components with the given verdict.
    pub fn count(&self, verdict: Verdict) -> usize {
        self.components
            .iter()
            .filter(|c| c.verdict == verdict)
            .count()
    }

    /// Whether any component benefits from more than one worker. A pinned
    /// component whose stateless subgraph splits off
    /// ([`PinScope::StatefulSubgraph`]) counts: its sibling queries
    /// round-robin even though the stateful subgraph stays on worker 0.
    pub fn is_parallelizable(&self) -> bool {
        self.components.iter().any(|c| {
            c.verdict != Verdict::Pinned || c.pin_scope == Some(PinScope::StatefulSubgraph)
        })
    }

    /// The worker index (out of `n`) for a tuple of `source` with the given
    /// attribute values, given a round-robin cursor for the source. The
    /// cursor is advanced only on round-robin routes. For the split routes
    /// ([`SourceRoute::PinnedSplit`], [`SourceRoute::KeySplit`]) this
    /// returns the *stateful* leg (worker 0 / the hashed worker) without
    /// touching the cursor; runtimes that implement the split deliver the
    /// stateless leg separately.
    pub fn worker_for(
        &self,
        source: SourceId,
        values: &[Value],
        n: usize,
        rr_cursor: &mut usize,
    ) -> usize {
        match &self.routes[source.index()] {
            SourceRoute::Pinned | SourceRoute::PinnedSplit => 0,
            SourceRoute::RoundRobin => {
                let w = *rr_cursor % n;
                *rr_cursor = (*rr_cursor + 1) % n;
                w
            }
            SourceRoute::Key(attrs) | SourceRoute::KeySplit(attrs) => {
                use std::hash::{Hash, Hasher};
                let mut h = std::collections::hash_map::DefaultHasher::new();
                for &a in attrs {
                    values
                        .get(a)
                        .cloned()
                        .unwrap_or(Value::Null)
                        .group_key()
                        .hash(&mut h);
                }
                (h.finish() % n as u64) as usize
            }
        }
    }
}

/// A stream attribute's provenance: the source attribute it is a verbatim
/// copy of, when that is statically known.
type Lineage = Vec<Option<(SourceId, usize)>>;

fn member_output_lineage(
    def: &OpDef,
    inputs: &[StreamId],
    lineage: &[Lineage],
    arity_of: impl Fn(StreamId) -> usize,
) -> Lineage {
    let lin = |s: StreamId| -> &Lineage { &lineage[s.index()] };
    match def {
        OpDef::Select(_) => lin(inputs[0]).clone(),
        OpDef::Project(map) => map
            .outputs
            .iter()
            .map(|ne| match &ne.expr {
                Expr::Col {
                    side: Side::Left,
                    index,
                } => lin(inputs[0]).get(*index).copied().flatten(),
                _ => None,
            })
            .collect(),
        OpDef::Aggregate(spec) => {
            let mut out: Lineage = spec
                .group_by
                .iter()
                .map(|&g| lin(inputs[0]).get(g).copied().flatten())
                .collect();
            out.push(None); // the aggregate value column
            out
        }
        OpDef::Join(_) | OpDef::Sequence(_) => {
            let mut out = lin(inputs[0]).clone();
            out.extend(lin(inputs[1]).iter().copied());
            out
        }
        OpDef::Iterate(spec) => {
            // Emitted tuples are rebound instances; an output attribute is a
            // verbatim source copy only when the rebind map passes the same
            // instance position through unchanged (so the copy survives any
            // number of rebinds).
            let n = arity_of(inputs[0]);
            (0..spec.rebind_map.outputs.len())
                .map(|j| {
                    let keeps = spec.rebind_map.outputs[j].expr
                        == Expr::Col {
                            side: Side::Left,
                            index: j,
                        };
                    if keeps && j < n {
                        lin(inputs[0]).get(j).copied().flatten()
                    } else {
                        None
                    }
                })
                .collect()
        }
    }
}

/// Union-find over source indices.
struct Uf {
    parent: Vec<usize>,
}

impl Uf {
    fn new(n: usize) -> Self {
        Uf {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

/// Computes the partitioning scheme of `plan` from the per-m-op key
/// reports (one entry per live m-op; see
/// [`MultiOp::partition_keys`](crate::mop::MultiOp::partition_keys)).
///
/// The analysis is conservative: any attribute whose lineage is lost, any
/// key spanning several sources, and any disagreement between stateful
/// consumers of the same source pins the whole component.
pub fn analyze(plan: &PlanGraph, reports: &[(MopId, PartitionKeys)]) -> Result<PartitionScheme> {
    analyze_inner(plan, reports, None)
}

/// Incremental re-analysis after a plan mutation: recomputes verdicts and
/// routes only for components the [`PlanDelta`] touched, copying every
/// other component's report and routes verbatim from `prev`.
///
/// A component is *dirty* (recomputed) when its source set is not present
/// in `prev` (the mutation split, grew, or connected components), when it
/// contains an ancestor source of an added or rewired m-op, or — for
/// removals, whose former ancestry the new plan no longer records — when
/// its previous verdict was anything but stateless (removing operators can
/// only relax constraints, and stateless cannot relax further). Under
/// those rules the result is identical to a full [`analyze`]; the clean
/// components just skip the constraint-resolution passes.
pub fn reanalyze(
    plan: &PlanGraph,
    reports: &[(MopId, PartitionKeys)],
    prev: &PartitionScheme,
    delta: &PlanDelta,
) -> Result<PartitionScheme> {
    analyze_inner(plan, reports, Some((prev, delta)))
}

fn analyze_inner(
    plan: &PlanGraph,
    reports: &[(MopId, PartitionKeys)],
    scope: Option<(&PartitionScheme, &PlanDelta)>,
) -> Result<PartitionScheme> {
    let n_sources = plan.sources().len();
    let n_streams = plan.stream_count();
    let order = plan.topo_order()?;

    // --- stream lineage and ancestor-source sets, in topo order ---------
    let mut lineage: Vec<Lineage> = vec![Vec::new(); n_streams];
    let mut ancestors: Vec<BTreeSet<SourceId>> = vec![BTreeSet::new(); n_streams];
    for src in plan.sources() {
        for &s in &src.streams {
            lineage[s.index()] = (0..plan.stream(s).schema.len())
                .map(|i| Some((src.id, i)))
                .collect();
            ancestors[s.index()].insert(src.id);
        }
    }
    for &id in &order {
        let node = plan.mop(id);
        for m in &node.members {
            let out =
                member_output_lineage(&m.def, &m.inputs, &lineage, |s| plan.stream(s).schema.len());
            lineage[m.output.index()] = out;
            let mut anc = BTreeSet::new();
            for &s in &m.inputs {
                anc.extend(ancestors[s.index()].iter().copied());
            }
            ancestors[m.output.index()] = anc;
        }
    }

    // --- per-channel lineage/ancestors: the meet over encoded streams ---
    // (an m-op port observes any stream of its channel, so a key attribute
    // is usable only when every encoded stream agrees on its provenance).
    let channel_info = |ch: crate::plan::ChannelDef| -> (Lineage, BTreeSet<SourceId>) {
        let mut anc = BTreeSet::new();
        let mut lin: Option<Lineage> = None;
        for &s in &ch.streams {
            anc.extend(ancestors[s.index()].iter().copied());
            let sl = &lineage[s.index()];
            lin = Some(match lin {
                None => sl.clone(),
                Some(acc) => acc
                    .iter()
                    .zip(sl.iter().chain(std::iter::repeat(&None)))
                    .map(|(a, b)| if a == b { *a } else { None })
                    .collect(),
            });
        }
        (lin.unwrap_or_default(), anc)
    };

    // --- connected components over sources -------------------------------
    let mut uf = Uf::new(n_sources);
    for &id in &order {
        let node = plan.mop(id);
        let mut all: Option<SourceId> = None;
        for m in &node.members {
            for &s in &m.inputs {
                for &a in &ancestors[s.index()] {
                    match all {
                        None => all = Some(a),
                        Some(first) => uf.union(first.index(), a.index()),
                    }
                }
            }
        }
    }

    // --- incremental scoping (see [`reanalyze`]) -------------------------
    // `clean` maps a component root to the previous report to reuse; only
    // dirty components run the constraint passes below.
    let clean: HashMap<usize, (ComponentReport, Vec<(SourceId, SourceRoute)>)> = match scope {
        None => HashMap::new(),
        Some((prev, delta)) => {
            let mut root_of = vec![0usize; n_sources];
            for (s, r) in root_of.iter_mut().enumerate() {
                *r = uf.find(s);
            }
            let mut sets: HashMap<usize, Vec<SourceId>> = HashMap::new();
            for (s, &root) in root_of.iter().enumerate() {
                sets.entry(root).or_default().push(SourceId::from_index(s));
            }
            let prev_by_set: HashMap<&[SourceId], &ComponentReport> = prev
                .components()
                .iter()
                .map(|c| (c.sources.as_slice(), c))
                .collect();
            let mut touched_roots: BTreeSet<usize> = BTreeSet::new();
            for &id in delta.added.iter().chain(delta.rewired.iter()) {
                if let Some(node) = plan.mop_opt(id) {
                    for m in &node.members {
                        for &s in &m.inputs {
                            for &a in &ancestors[s.index()] {
                                touched_roots.insert(root_of[a.index()]);
                            }
                        }
                    }
                }
            }
            // Direct-tap changes add or remove a stateless leg without
            // touching any m-op (`PinScope`/`PinnedSplit` shifts).
            for &src in &delta.retapped {
                if src.index() < n_sources {
                    touched_roots.insert(root_of[src.index()]);
                }
            }
            let mut clean = HashMap::new();
            for (root, sources) in sets {
                if touched_roots.contains(&root) {
                    continue;
                }
                let Some(prev_component) = prev_by_set.get(sources.as_slice()) else {
                    continue; // component shape changed: recompute
                };
                // A removal's former ancestry is unrecoverable here;
                // removals only relax constraints, so all-stateless
                // components (nothing left to relax) are provably
                // unchanged and everything else is recomputed.
                if !delta.removed.is_empty() && prev_component.verdict != Verdict::Stateless {
                    continue;
                }
                let routes: Vec<(SourceId, SourceRoute)> = sources
                    .iter()
                    .map(|&s| (s, prev.route(s).clone()))
                    .collect();
                clean.insert(root, ((*prev_component).clone(), routes));
            }
            clean
        }
    };
    let node_scoped = |uf: &mut Uf, node: &crate::plan::MopNode| -> bool {
        if clean.is_empty() {
            return true;
        }
        let mut any = false;
        for m in &node.members {
            for &s in &m.inputs {
                for &a in &ancestors[s.index()] {
                    any = true;
                    if !clean.contains_key(&uf.find(a.index())) {
                        return true;
                    }
                }
            }
        }
        !any // an ancestorless node cannot be proven clean
    };

    // --- constraint resolution -------------------------------------------
    let mut pinned = vec![false; n_sources];
    let mut exact: Vec<Option<Vec<usize>>> = vec![None; n_sources];
    let mut restrict: Vec<Option<BTreeSet<usize>>> = vec![None; n_sources];

    let pin_component = |uf: &mut Uf, pinned: &mut Vec<bool>, srcs: &BTreeSet<SourceId>| {
        for &s in srcs {
            let r = uf.find(s.index());
            pinned[r] = true;
        }
    };

    // Map one port's key attribute list to `(source, attrs)`; `None` pins.
    let port_key = |node: &crate::plan::MopNode,
                    port: usize,
                    attrs: &[usize]|
     -> Option<(SourceId, Vec<usize>)> {
        let ch = plan.channel(node.inputs[port]).clone();
        let (lin, _) = channel_info(ch);
        let mut src: Option<SourceId> = None;
        let mut mapped = Vec::with_capacity(attrs.len());
        for &a in attrs {
            let (s, sa) = (*lin.get(a)?)?;
            match src {
                None => src = Some(s),
                Some(prev) if prev != s => return None,
                _ => {}
            }
            mapped.push(sa);
        }
        src.map(|s| (s, mapped))
    };

    let node_ancestors = |node: &crate::plan::MopNode| -> BTreeSet<SourceId> {
        let mut anc = BTreeSet::new();
        for m in &node.members {
            for &s in &m.inputs {
                anc.extend(ancestors[s.index()].iter().copied());
            }
        }
        anc
    };

    // Pass 1: exact equi keys and opaque pins.
    for (id, report) in reports {
        let Some(node) = plan.mop_opt(*id) else {
            return Err(RumorError::plan(format!("report for retired m-op {id}")));
        };
        if !node_scoped(&mut uf, node) {
            continue;
        }
        match report {
            PartitionKeys::Stateless | PartitionKeys::Grouped { .. } => {}
            PartitionKeys::Opaque => {
                pin_component(&mut uf, &mut pinned, &node_ancestors(node));
            }
            PartitionKeys::Equi { per_port } => {
                let mut ok = per_port.len() == node.inputs.len()
                    && per_port.iter().all(|p| !p.is_empty())
                    && per_port.windows(2).all(|w| w[0].len() == w[1].len());
                if ok {
                    for (p, attrs) in per_port.iter().enumerate() {
                        match port_key(node, p, attrs) {
                            Some((src, mapped)) => {
                                let si = src.index();
                                match &exact[si] {
                                    None => exact[si] = Some(mapped),
                                    Some(prev) if *prev != mapped => {
                                        ok = false;
                                    }
                                    _ => {}
                                }
                            }
                            None => ok = false,
                        }
                        if !ok {
                            break;
                        }
                    }
                }
                if !ok {
                    pin_component(&mut uf, &mut pinned, &node_ancestors(node));
                }
            }
        }
    }

    // Pass 2: grouped constraints (checked after every exact key exists).
    for (id, report) in reports {
        let PartitionKeys::Grouped { group_by } = report else {
            continue;
        };
        let node = plan.mop(*id);
        if !node_scoped(&mut uf, node) {
            continue;
        }
        let ch = plan.channel(node.inputs[0]).clone();
        let (lin, port_anc) = channel_info(ch);
        let mut allowed: HashMap<SourceId, BTreeSet<usize>> = HashMap::new();
        for &g in group_by {
            if let Some(Some((s, sa))) = lin.get(g) {
                allowed.entry(*s).or_default().insert(*sa);
            }
        }
        for &x in &port_anc {
            let ax = allowed.remove(&x).unwrap_or_default();
            let xi = x.index();
            match &exact[xi] {
                Some(key) => {
                    if !key.iter().all(|a| ax.contains(a)) {
                        pin_component(&mut uf, &mut pinned, &port_anc);
                        break;
                    }
                }
                None => {
                    let next = match restrict[xi].take() {
                        None => ax,
                        Some(r) => r.intersection(&ax).copied().collect(),
                    };
                    restrict[xi] = Some(next);
                }
            }
        }
    }

    // Empty grouped intersections pin their component.
    let empty_restrict: Vec<usize> = restrict
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r, Some(set) if set.is_empty()))
        .map(|(s, _)| s)
        .collect();
    for s in empty_restrict {
        let r = uf.find(s);
        pinned[r] = true;
    }

    // --- stateful cone + per-source stateless subgraph -------------------
    // An m-op is in the *stateful cone* when it is stateful itself (its key
    // report is anything but `Stateless`) or a stateful m-op is reachable
    // downstream of it. A pinned or keyed component only constrains its
    // stateful cone (worker 0 / the hashed worker): source-channel
    // consumers outside the cone (and query taps directly on a source
    // stream) form a stateless subgraph whose work may round-robin across
    // workers ([`SourceRoute::PinnedSplit`], [`SourceRoute::KeySplit`]).
    let stateful_op: HashMap<MopId, bool> = reports
        .iter()
        .map(|(id, r)| (*id, !matches!(r, PartitionKeys::Stateless)))
        .collect();
    let mut channel_consumer_mops: Vec<Vec<MopId>> = vec![Vec::new(); plan.channel_slots()];
    for &id in &order {
        for &ch in &plan.mop(id).inputs {
            channel_consumer_mops[ch.index()].push(id);
        }
    }
    let mut in_cone: HashMap<MopId, bool> = HashMap::new();
    for &id in order.iter().rev() {
        let node = plan.mop(id);
        // Missing reports are treated as stateful (maximally conservative).
        let mut cone = stateful_op.get(&id).copied().unwrap_or(true);
        if !cone {
            'downstream: for m in &node.members {
                let out_ch = plan.channel_of(m.output);
                for consumer in &channel_consumer_mops[out_ch.index()] {
                    if in_cone.get(consumer).copied().unwrap_or(true) {
                        cone = true;
                        break 'downstream;
                    }
                }
            }
        }
        in_cone.insert(id, cone);
    }
    let mut has_free_part = vec![false; n_sources];
    for src in plan.sources() {
        let ch = plan.channel_of(src.stream);
        if channel_consumer_mops[ch.index()]
            .iter()
            .any(|id| !in_cone.get(id).copied().unwrap_or(true))
        {
            has_free_part[src.id.index()] = true;
        }
    }
    for &(_, stream) in plan.query_outputs() {
        if let Producer::Source(source) = plan.stream(stream).producer {
            has_free_part[source.index()] = true;
        }
    }

    // --- verdicts and routes ---------------------------------------------
    let mut by_root: HashMap<usize, Vec<SourceId>> = HashMap::new();
    for s in 0..n_sources {
        let r = uf.find(s);
        by_root.entry(r).or_default().push(SourceId::from_index(s));
    }
    let mut roots: Vec<usize> = by_root.keys().copied().collect();
    roots.sort_unstable();

    let mut routes = vec![SourceRoute::RoundRobin; n_sources];
    let mut components = Vec::with_capacity(roots.len());
    for r in roots {
        let sources = by_root.remove(&r).expect("root listed");
        if let Some((report, prev_routes)) = clean.get(&r) {
            for (s, route) in prev_routes {
                routes[s.index()] = route.clone();
            }
            components.push(report.clone());
            continue;
        }
        let verdict = if pinned[r] {
            Verdict::Pinned
        } else if sources
            .iter()
            .any(|s| exact[s.index()].is_some() || restrict[s.index()].is_some())
        {
            Verdict::Keyed
        } else {
            Verdict::Stateless
        };
        for &s in &sources {
            let si = s.index();
            routes[si] = match verdict {
                Verdict::Pinned => {
                    if has_free_part[si] {
                        SourceRoute::PinnedSplit
                    } else {
                        SourceRoute::Pinned
                    }
                }
                Verdict::Stateless => SourceRoute::RoundRobin,
                Verdict::Keyed => {
                    // Keyed-cone splitting: the hash route only has to cover
                    // the stateful cone. When the source also feeds
                    // consumers outside the cone (stateless sibling
                    // queries, direct taps), those round-robin instead of
                    // piling onto the hashed worker — the keyed analogue of
                    // the pinned-split refinement below.
                    let key = exact[si]
                        .clone()
                        .or_else(|| restrict[si].as_ref().map(|r| r.iter().copied().collect()));
                    match key {
                        Some(key) if has_free_part[si] => SourceRoute::KeySplit(key),
                        Some(key) => SourceRoute::Key(key),
                        // Tuples of this source never reach stateful state.
                        None => SourceRoute::RoundRobin,
                    }
                }
            };
        }
        let pin_scope = (verdict == Verdict::Pinned).then(|| {
            if sources.iter().any(|s| has_free_part[s.index()]) {
                PinScope::StatefulSubgraph
            } else {
                PinScope::WholeComponent
            }
        });
        components.push(ComponentReport {
            sources,
            verdict,
            pin_scope,
        });
    }

    Ok(PartitionScheme { routes, components })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{AggFunc, AggSpec, LogicalPlan, SeqSpec};
    use rumor_expr::{CmpOp, Predicate};
    use rumor_types::Schema;

    fn stateless_reports(plan: &PlanGraph) -> Vec<(MopId, PartitionKeys)> {
        plan.mops()
            .map(|n| (n.id, PartitionKeys::Stateless))
            .collect()
    }

    #[test]
    fn stateless_plan_is_round_robin() {
        let mut p = PlanGraph::new();
        let s = p.add_source("S", Schema::ints(2), None).unwrap();
        p.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 1i64)))
            .unwrap();
        let scheme = analyze(&p, &stateless_reports(&p)).unwrap();
        assert_eq!(scheme.components().len(), 1);
        assert_eq!(scheme.components()[0].verdict, Verdict::Stateless);
        assert_eq!(*scheme.route(s), SourceRoute::RoundRobin);
        assert!(scheme.is_parallelizable());
    }

    #[test]
    fn equi_sequence_keys_both_sources() {
        let mut p = PlanGraph::new();
        let s = p.add_source("S", Schema::ints(3), None).unwrap();
        let t = p.add_source("T", Schema::ints(3), None).unwrap();
        p.add_query(
            &LogicalPlan::source("S")
                .select(Predicate::attr_eq_const(0, 1i64))
                .followed_by(
                    LogicalPlan::source("T"),
                    SeqSpec {
                        predicate: Predicate::cmp(
                            CmpOp::Eq,
                            rumor_expr::Expr::col(1),
                            rumor_expr::Expr::rcol(2),
                        ),
                        window: 10,
                    },
                ),
        )
        .unwrap();
        let reports: Vec<(MopId, PartitionKeys)> = p
            .mops()
            .map(|n| {
                let key = match &n.members[0].def {
                    OpDef::Sequence(_) => PartitionKeys::Equi {
                        per_port: vec![vec![1], vec![2]],
                    },
                    _ => PartitionKeys::Stateless,
                };
                (n.id, key)
            })
            .collect();
        let scheme = analyze(&p, &reports).unwrap();
        assert_eq!(scheme.components().len(), 1);
        assert_eq!(scheme.components()[0].verdict, Verdict::Keyed);
        // The select preserves lineage, so S keys on attr 1, T on attr 2.
        assert_eq!(*scheme.route(s), SourceRoute::Key(vec![1]));
        assert_eq!(*scheme.route(t), SourceRoute::Key(vec![2]));
    }

    #[test]
    fn opaque_op_pins_component_but_not_others() {
        let mut p = PlanGraph::new();
        let s = p.add_source("S", Schema::ints(2), None).unwrap();
        let t = p.add_source("T", Schema::ints(2), None).unwrap();
        let u = p.add_source("U", Schema::ints(2), None).unwrap();
        // S;T with an opaque (unkeyed) sequence; U stays stateless.
        p.add_query(&LogicalPlan::source("S").followed_by(
            LogicalPlan::source("T"),
            SeqSpec {
                predicate: Predicate::True,
                window: 5,
            },
        ))
        .unwrap();
        p.add_query(&LogicalPlan::source("U").select(Predicate::True))
            .unwrap();
        let reports: Vec<(MopId, PartitionKeys)> = p
            .mops()
            .map(|n| {
                let key = match &n.members[0].def {
                    OpDef::Sequence(_) => PartitionKeys::Opaque,
                    _ => PartitionKeys::Stateless,
                };
                (n.id, key)
            })
            .collect();
        let scheme = analyze(&p, &reports).unwrap();
        assert_eq!(scheme.count(Verdict::Pinned), 1);
        assert_eq!(scheme.count(Verdict::Stateless), 1);
        assert_eq!(*scheme.route(s), SourceRoute::Pinned);
        assert_eq!(*scheme.route(t), SourceRoute::Pinned);
        assert_eq!(*scheme.route(u), SourceRoute::RoundRobin);
    }

    #[test]
    fn pinned_component_with_stateless_siblings_splits() {
        let mut p = PlanGraph::new();
        let s = p.add_source("S", Schema::ints(2), None).unwrap();
        let t = p.add_source("T", Schema::ints(2), None).unwrap();
        // An unkeyed (opaque) sequence pins the S/T component...
        p.add_query(&LogicalPlan::source("S").followed_by(
            LogicalPlan::source("T"),
            SeqSpec {
                predicate: Predicate::True,
                window: 5,
            },
        ))
        .unwrap();
        // ...but a purely stateless sibling query on S may round-robin.
        p.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 1i64)))
            .unwrap();
        let reports: Vec<(MopId, PartitionKeys)> = p
            .mops()
            .map(|n| {
                let key = match &n.members[0].def {
                    OpDef::Sequence(_) => PartitionKeys::Opaque,
                    _ => PartitionKeys::Stateless,
                };
                (n.id, key)
            })
            .collect();
        let scheme = analyze(&p, &reports).unwrap();
        assert_eq!(scheme.components().len(), 1);
        assert_eq!(scheme.components()[0].verdict, Verdict::Pinned);
        assert_eq!(
            scheme.components()[0].pin_scope,
            Some(PinScope::StatefulSubgraph)
        );
        // S feeds both subgraphs → split; T feeds only the sequence → pinned.
        assert_eq!(*scheme.route(s), SourceRoute::PinnedSplit);
        assert_eq!(*scheme.route(t), SourceRoute::Pinned);
        assert!(scheme.is_parallelizable());
    }

    #[test]
    fn keyed_component_with_stateless_siblings_splits() {
        let mut p = PlanGraph::new();
        let s = p.add_source("S", Schema::ints(3), None).unwrap();
        let t = p.add_source("T", Schema::ints(3), None).unwrap();
        // An equi-keyed sequence keys the S/T component...
        p.add_query(&LogicalPlan::source("S").followed_by(
            LogicalPlan::source("T"),
            SeqSpec {
                predicate: Predicate::cmp(
                    CmpOp::Eq,
                    rumor_expr::Expr::col(0),
                    rumor_expr::Expr::rcol(0),
                ),
                window: 10,
            },
        ))
        .unwrap();
        // ...but a purely stateless sibling query on S may round-robin.
        p.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(1, 1i64)))
            .unwrap();
        let reports: Vec<(MopId, PartitionKeys)> = p
            .mops()
            .map(|n| {
                let key = match &n.members[0].def {
                    OpDef::Sequence(_) => PartitionKeys::Equi {
                        per_port: vec![vec![0], vec![0]],
                    },
                    _ => PartitionKeys::Stateless,
                };
                (n.id, key)
            })
            .collect();
        let scheme = analyze(&p, &reports).unwrap();
        assert_eq!(scheme.components().len(), 1);
        assert_eq!(scheme.components()[0].verdict, Verdict::Keyed);
        // S feeds both subgraphs → split; T feeds only the sequence → keyed.
        assert_eq!(*scheme.route(s), SourceRoute::KeySplit(vec![0]));
        assert_eq!(*scheme.route(t), SourceRoute::Key(vec![0]));
        assert!(scheme.is_parallelizable());
        // The stateful leg hashes exactly like a plain Key route would.
        let mut cursor = 0usize;
        let vals = [Value::Int(42), Value::Int(0), Value::Int(0)];
        let w_split = scheme.worker_for(s, &vals, 4, &mut cursor);
        let w_key = scheme.worker_for(t, &vals, 4, &mut cursor);
        assert_eq!(w_split, w_key);
        assert_eq!(cursor, 0, "split hashing must not advance the rr cursor");
    }

    #[test]
    fn whole_component_pin_reported_without_siblings() {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(2), None).unwrap();
        p.add_source("T", Schema::ints(2), None).unwrap();
        p.add_query(&LogicalPlan::source("S").followed_by(
            LogicalPlan::source("T"),
            SeqSpec {
                predicate: Predicate::True,
                window: 5,
            },
        ))
        .unwrap();
        let reports: Vec<(MopId, PartitionKeys)> = p
            .mops()
            .map(|n| {
                let key = match &n.members[0].def {
                    OpDef::Sequence(_) => PartitionKeys::Opaque,
                    _ => PartitionKeys::Stateless,
                };
                (n.id, key)
            })
            .collect();
        let scheme = analyze(&p, &reports).unwrap();
        assert_eq!(
            scheme.components()[0].pin_scope,
            Some(PinScope::WholeComponent)
        );
        assert!(!scheme.is_parallelizable());
    }

    #[test]
    fn grouped_aggregate_intersects_group_bys() {
        let mut p = PlanGraph::new();
        let s = p.add_source("S", Schema::ints(3), None).unwrap();
        let agg = |group_by: Vec<usize>| AggSpec {
            func: AggFunc::Sum,
            input: rumor_expr::Expr::col(2),
            group_by,
            window: 10,
        };
        p.add_query(&LogicalPlan::source("S").aggregate(agg(vec![0, 1])))
            .unwrap();
        p.add_query(&LogicalPlan::source("S").aggregate(agg(vec![0])))
            .unwrap();
        let reports: Vec<(MopId, PartitionKeys)> = p
            .mops()
            .map(|n| {
                let key = match &n.members[0].def {
                    OpDef::Aggregate(spec) => PartitionKeys::Grouped {
                        group_by: spec.group_by.clone(),
                    },
                    _ => PartitionKeys::Stateless,
                };
                (n.id, key)
            })
            .collect();
        let scheme = analyze(&p, &reports).unwrap();
        assert_eq!(scheme.components()[0].verdict, Verdict::Keyed);
        // {0,1} ∩ {0} = {0}.
        assert_eq!(*scheme.route(s), SourceRoute::Key(vec![0]));
    }

    #[test]
    fn conflicting_equi_keys_pin() {
        let mut p = PlanGraph::new();
        let s = p.add_source("S", Schema::ints(3), None).unwrap();
        let t = p.add_source("T", Schema::ints(3), None).unwrap();
        let seq = |l: usize, r: usize| SeqSpec {
            predicate: Predicate::cmp(
                CmpOp::Eq,
                rumor_expr::Expr::col(l),
                rumor_expr::Expr::rcol(r),
            ),
            window: 10,
        };
        p.add_query(&LogicalPlan::source("S").followed_by(LogicalPlan::source("T"), seq(0, 0)))
            .unwrap();
        p.add_query(&LogicalPlan::source("S").followed_by(LogicalPlan::source("T"), seq(1, 1)))
            .unwrap();
        let reports: Vec<(MopId, PartitionKeys)> = p
            .mops()
            .map(|n| {
                let key = match &n.members[0].def {
                    OpDef::Sequence(spec) => {
                        let (keys, _) = spec.predicate.split_equi_join();
                        let (l, r): (Vec<_>, Vec<_>) = keys.into_iter().unzip();
                        PartitionKeys::Equi {
                            per_port: vec![l, r],
                        }
                    }
                    _ => PartitionKeys::Stateless,
                };
                (n.id, key)
            })
            .collect();
        let scheme = analyze(&p, &reports).unwrap();
        assert_eq!(scheme.components()[0].verdict, Verdict::Pinned);
        assert_eq!(*scheme.route(s), SourceRoute::Pinned);
        assert_eq!(*scheme.route(t), SourceRoute::Pinned);
    }

    #[test]
    fn projection_that_drops_key_lineage_pins() {
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(2), None).unwrap();
        p.add_source("T", Schema::ints(2), None).unwrap();
        // π computes a fresh value into attr 0, destroying its lineage,
        // then a sequence keys on it.
        let map = rumor_expr::SchemaMap::new(vec![
            rumor_expr::NamedExpr::new(
                "a0",
                rumor_expr::Expr::col(0).mul(rumor_expr::Expr::lit(2i64)),
            ),
            rumor_expr::NamedExpr::new("a1", rumor_expr::Expr::col(1)),
        ]);
        p.add_query(&LogicalPlan::source("S").project(map).followed_by(
            LogicalPlan::source("T"),
            SeqSpec {
                predicate: Predicate::cmp(
                    CmpOp::Eq,
                    rumor_expr::Expr::col(0),
                    rumor_expr::Expr::rcol(0),
                ),
                window: 10,
            },
        ))
        .unwrap();
        let reports: Vec<(MopId, PartitionKeys)> = p
            .mops()
            .map(|n| {
                let key = match &n.members[0].def {
                    OpDef::Sequence(_) => PartitionKeys::Equi {
                        per_port: vec![vec![0], vec![0]],
                    },
                    _ => PartitionKeys::Stateless,
                };
                (n.id, key)
            })
            .collect();
        let scheme = analyze(&p, &reports).unwrap();
        assert_eq!(scheme.components()[0].verdict, Verdict::Pinned);
    }

    #[test]
    fn reanalyze_matches_full_analysis_across_churn() {
        // Keyed S/T component + stateless U component; churn on U and on a
        // new keyed pair, with removals — reanalyze must equal analyze at
        // every step while only recomputing dirty components.
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(3), None).unwrap();
        p.add_source("T", Schema::ints(3), None).unwrap();
        p.add_source("U", Schema::ints(3), None).unwrap();
        let reports = |p: &PlanGraph| -> Vec<(MopId, PartitionKeys)> {
            p.mops()
                .map(|n| {
                    let key = match &n.members[0].def {
                        OpDef::Sequence(spec) => {
                            let (keys, _) = spec.predicate.split_equi_join();
                            if keys.is_empty() {
                                PartitionKeys::Opaque
                            } else {
                                let (l, r): (Vec<_>, Vec<_>) = keys.into_iter().unzip();
                                PartitionKeys::Equi {
                                    per_port: vec![l, r],
                                }
                            }
                        }
                        OpDef::Aggregate(spec) => PartitionKeys::Grouped {
                            group_by: spec.group_by.clone(),
                        },
                        _ => PartitionKeys::Stateless,
                    };
                    (n.id, key)
                })
                .collect()
        };
        let seq = LogicalPlan::source("S").followed_by(
            LogicalPlan::source("T"),
            SeqSpec {
                predicate: Predicate::cmp(
                    CmpOp::Eq,
                    rumor_expr::Expr::col(0),
                    rumor_expr::Expr::rcol(0),
                ),
                window: 10,
            },
        );
        p.add_query(&seq).unwrap();
        let mut scheme = analyze(&p, &reports(&p)).unwrap();

        // Add a stateless query on U: only U's component is dirty.
        let snap = p.snapshot();
        let qu = p
            .add_query(&LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 1i64)))
            .unwrap();
        let delta = snap.delta(&p);
        let incremental = reanalyze(&p, &reports(&p), &scheme, &delta).unwrap();
        assert_eq!(incremental, analyze(&p, &reports(&p)).unwrap());
        scheme = incremental;

        // Add an aggregate on U (stateless → keyed flip of that component).
        let snap = p.snapshot();
        p.add_query(&LogicalPlan::source("U").aggregate(AggSpec {
            func: AggFunc::Sum,
            input: rumor_expr::Expr::col(2),
            group_by: vec![0],
            window: 5,
        }))
        .unwrap();
        let delta = snap.delta(&p);
        let incremental = reanalyze(&p, &reports(&p), &scheme, &delta).unwrap();
        assert_eq!(incremental, analyze(&p, &reports(&p)).unwrap());
        scheme = incremental;

        // Remove the stateless U query: removal-relaxation path.
        let delta = p.remove_query(qu).unwrap();
        let incremental = reanalyze(&p, &reports(&p), &scheme, &delta).unwrap();
        assert_eq!(incremental, analyze(&p, &reports(&p)).unwrap());
    }

    #[test]
    fn reanalyze_tracks_tap_only_deltas() {
        // An opaque sequence pins S/T. A bare source tap adds/removes NO
        // m-ops — the delta's op lists are empty — yet it flips S's route
        // Pinned ↔ PinnedSplit. reanalyze must treat the tap change as
        // dirtying the component, matching full analyze both ways.
        let mut p = PlanGraph::new();
        let s = p.add_source("S", Schema::ints(2), None).unwrap();
        p.add_source("T", Schema::ints(2), None).unwrap();
        p.add_query(&LogicalPlan::source("S").followed_by(
            LogicalPlan::source("T"),
            SeqSpec {
                predicate: Predicate::True,
                window: 5,
            },
        ))
        .unwrap();
        let reports = |p: &PlanGraph| -> Vec<(MopId, PartitionKeys)> {
            p.mops()
                .map(|n| {
                    let key = match &n.members[0].def {
                        OpDef::Sequence(_) => PartitionKeys::Opaque,
                        _ => PartitionKeys::Stateless,
                    };
                    (n.id, key)
                })
                .collect()
        };
        let scheme = analyze(&p, &reports(&p)).unwrap();
        assert_eq!(*scheme.route(s), SourceRoute::Pinned);

        let snap = p.snapshot();
        let q_tap = p.add_query(&LogicalPlan::source("S")).unwrap();
        let delta = snap.delta(&p);
        assert!(delta.added.is_empty() && delta.removed.is_empty() && delta.rewired.is_empty());
        assert_eq!(delta.retapped, vec![s]);
        assert!(!delta.is_empty());
        let incremental = reanalyze(&p, &reports(&p), &scheme, &delta).unwrap();
        assert_eq!(incremental, analyze(&p, &reports(&p)).unwrap());
        assert_eq!(*incremental.route(s), SourceRoute::PinnedSplit);

        let delta = p.remove_query(q_tap).unwrap();
        assert_eq!(delta.retapped, vec![s]);
        let back = reanalyze(&p, &reports(&p), &incremental, &delta).unwrap();
        assert_eq!(back, analyze(&p, &reports(&p)).unwrap());
        assert_eq!(*back.route(s), SourceRoute::Pinned);
    }

    #[test]
    fn worker_for_routes_deterministically() {
        let mut p = PlanGraph::new();
        let s = p.add_source("S", Schema::ints(2), None).unwrap();
        p.add_query(&LogicalPlan::source("S").select(Predicate::True))
            .unwrap();
        let scheme = analyze(&p, &stateless_reports(&p)).unwrap();
        let mut cursor = 0usize;
        let vals = [Value::Int(1), Value::Int(2)];
        let w0 = scheme.worker_for(s, &vals, 3, &mut cursor);
        let w1 = scheme.worker_for(s, &vals, 3, &mut cursor);
        let w2 = scheme.worker_for(s, &vals, 3, &mut cursor);
        assert_eq!((w0, w1, w2), (0, 1, 2));
    }
}
