//! Logical operator definitions and logical query plans.
//!
//! A *logical query* (§2.1) is what the user registers; the optimizer turns
//! a set of logical queries into one physical query plan of m-ops. The
//! [`OpDef`] here is the *definition* of a physical operator — the object
//! m-rules compare when deciding sharability ("two selection operators with
//! the same predicate", "two aggregation operators with the same aggregate
//! function and group-by specification", §3.2).

use std::fmt;

use rumor_expr::{Expr, Predicate, SchemaMap};
use rumor_types::{Field, Result, RumorError, Schema, ValueType};

/// Aggregate functions supported by the sliding-window aggregation operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Count of tuples in the window (per group).
    Count,
    /// Sum of the input expression.
    Sum,
    /// Arithmetic mean of the input expression.
    Avg,
    /// Minimum of the input expression.
    Min,
    /// Maximum of the input expression.
    Max,
}

impl AggFunc {
    /// Output type of the aggregate given its input type.
    pub fn output_type(&self, input: ValueType) -> ValueType {
        match self {
            AggFunc::Count => ValueType::Int,
            AggFunc::Avg => ValueType::Float,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => input,
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        };
        write!(f, "{s}")
    }
}

/// A sliding-window aggregation operator definition.
///
/// Emission model: for every input tuple, the operator updates the window
/// state of the tuple's group and emits the refreshed aggregate for that
/// group (timestamped with the input tuple's timestamp). This per-tuple
/// refresh model is what the paper's Query 1 relies on — the SMOOTHED stream
/// has one smoothed reading per input reading.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggSpec {
    /// Aggregate function.
    pub func: AggFunc,
    /// Aggregated input expression (ignored for `Count`).
    pub input: Expr,
    /// Group-by attribute positions on the input stream.
    pub group_by: Vec<usize>,
    /// Time-based sliding window length (`RANGE`). A tuple with timestamp
    /// `t` aggregates input tuples with timestamps in `(t - window, t]`.
    pub window: u64,
}

impl AggSpec {
    /// The definition "modulo group-by": rule sα shares aggregation
    /// operators with the same function/input/window but *different*
    /// group-by specifications \[22\].
    pub fn shared_key(&self) -> (AggFunc, &Expr, u64) {
        (self.func, &self.input, self.window)
    }

    /// Output schema: the group-by attributes followed by the aggregate
    /// value column (named after the function).
    pub fn output_schema(&self, input: &Schema) -> Result<Schema> {
        let mut fields = Vec::with_capacity(self.group_by.len() + 1);
        for &g in &self.group_by {
            let f = input
                .field(g)
                .ok_or_else(|| RumorError::plan(format!("group-by column {g} out of range")))?;
            fields.push(f.clone());
        }
        let in_ty = self.input.infer_type(input, None)?;
        fields.push(Field::new(
            self.func.to_string(),
            self.func.output_type(in_ty),
        ));
        Schema::new(fields)
    }
}

/// A sliding-window join operator definition.
///
/// Two tuples `l`, `r` join iff `|l.ts - r.ts| <= window` and the predicate
/// holds on the pair. The output is the concatenation of both tuples,
/// timestamped with the later of the two.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JoinSpec {
    /// Join predicate over (left, right).
    pub predicate: Predicate,
    /// Window length. Rule s⋈ shares joins with the same predicate but
    /// different window lengths \[12\].
    pub window: u64,
}

/// The Cayuga sequence operator `;θ` (§4.2).
///
/// Every left-input tuple becomes a stored *instance*. A right-input event
/// `e` matches instance `i` iff `i.ts < e.ts <= i.ts + window` and the
/// predicate holds on `(i, e)`; the match emits `i ⊕ e` and **deletes** the
/// instance (the paper relies on this deletion semantics in §5.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SeqSpec {
    /// Edge predicate over (instance, event).
    pub predicate: Predicate,
    /// Duration window ("duration predicate" in Cayuga terminology).
    pub window: u64,
}

/// The Cayuga iteration operator `µθf,θr` (§4.2).
///
/// Instances are created from left-input tuples. For each right-input event
/// `e` and live instance `i` (within the duration window):
///
/// * if the **filter** predicate θf holds on `(i, e)`, the instance remains
///   unchanged;
/// * if the **rebind** predicate θr holds, the rebind schema map produces an
///   updated instance `i' = Fr(i, e)` which is stored *and emitted*;
/// * if both hold, the automaton is non-deterministic: the instance is
///   duplicated and traverses both edges;
/// * if neither holds, the instance is deleted.
///
/// The rebind map must preserve the instance schema (which is the left
/// input schema): `µ` concatenates an unbounded number of events, so the
/// accumulated pattern state lives in instance attributes updated by `Fr`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IterSpec {
    /// Filter-edge predicate θf over (instance, event).
    pub filter: Predicate,
    /// Rebind-edge predicate θr over (instance, event).
    pub rebind: Predicate,
    /// Rebind schema map Fr: (instance, event) → instance.
    pub rebind_map: SchemaMap,
    /// Duration window for instances.
    pub window: u64,
}

/// The definition of one physical operator — the unit m-rules reason about.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OpDef {
    /// Selection σ.
    Select(Predicate),
    /// Projection π (expressive SQL SELECT-clause projection, §4.2).
    Project(SchemaMap),
    /// Sliding-window aggregation α.
    Aggregate(AggSpec),
    /// Sliding-window join ⋈.
    Join(JoinSpec),
    /// Cayuga sequence `;`.
    Sequence(SeqSpec),
    /// Cayuga iteration `µ`.
    Iterate(IterSpec),
}

impl OpDef {
    /// Number of input ports (1 for unary, 2 for binary operators).
    pub fn arity(&self) -> usize {
        match self {
            OpDef::Select(_) | OpDef::Project(_) | OpDef::Aggregate(_) => 1,
            OpDef::Join(_) | OpDef::Sequence(_) | OpDef::Iterate(_) => 2,
        }
    }

    /// Short operator-type symbol used in plan rendering.
    pub fn symbol(&self) -> &'static str {
        match self {
            OpDef::Select(_) => "σ",
            OpDef::Project(_) => "π",
            OpDef::Aggregate(_) => "α",
            OpDef::Join(_) => "⋈",
            OpDef::Sequence(_) => ";",
            OpDef::Iterate(_) => "µ",
        }
    }

    /// Whether this is a selection — the operator the sharable-streams
    /// relation `~` is transparent to (§3.2).
    pub fn is_select(&self) -> bool {
        matches!(self, OpDef::Select(_))
    }

    /// Whether the operator keeps no state across input tuples. The plan
    /// lifecycle uses this statically (before any physical instantiation):
    /// stateless m-ops may be restructured freely by incremental
    /// optimization and pruning, while stateful ones (windowed joins,
    /// sequences, iterations, aggregates) carry live runtime state that a
    /// hot swap must not disturb.
    pub fn is_stateless(&self) -> bool {
        matches!(self, OpDef::Select(_) | OpDef::Project(_))
    }

    /// Output schema of the operator given its input schemas.
    pub fn output_schema(&self, inputs: &[&Schema]) -> Result<Schema> {
        if inputs.len() != self.arity() {
            return Err(RumorError::plan(format!(
                "operator {} expects {} inputs, got {}",
                self.symbol(),
                self.arity(),
                inputs.len()
            )));
        }
        match self {
            OpDef::Select(pred) => {
                pred.check_types(inputs[0], None)?;
                Ok(inputs[0].clone())
            }
            OpDef::Project(map) => map.output_schema(inputs[0], None),
            OpDef::Aggregate(spec) => spec.output_schema(inputs[0]),
            OpDef::Join(spec) => {
                spec.predicate.check_types(inputs[0], Some(inputs[1]))?;
                Ok(inputs[0].concat(inputs[1]))
            }
            OpDef::Sequence(spec) => {
                spec.predicate.check_types(inputs[0], Some(inputs[1]))?;
                Ok(inputs[0].concat(inputs[1]))
            }
            OpDef::Iterate(spec) => {
                spec.filter.check_types(inputs[0], Some(inputs[1]))?;
                spec.rebind.check_types(inputs[0], Some(inputs[1]))?;
                let out = spec.rebind_map.output_schema(inputs[0], Some(inputs[1]))?;
                if !out.union_compatible(inputs[0]) {
                    return Err(RumorError::plan(
                        "µ rebind map must preserve the instance schema".to_string(),
                    ));
                }
                Ok(out)
            }
        }
    }
}

impl fmt::Display for OpDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpDef::Select(p) => write!(f, "σ[{p}]"),
            OpDef::Project(m) => write!(f, "{m}"),
            OpDef::Aggregate(a) => write!(
                f,
                "α[{}({}) win={} by={:?}]",
                a.func, a.input, a.window, a.group_by
            ),
            OpDef::Join(j) => write!(f, "⋈[{} win={}]", j.predicate, j.window),
            OpDef::Sequence(s) => write!(f, ";[{} win={}]", s.predicate, s.window),
            OpDef::Iterate(i) => write!(
                f,
                "µ[f:{} r:{} map:{} win={}]",
                i.filter, i.rebind, i.rebind_map, i.window
            ),
        }
    }
}

/// A logical query plan — the tree shape a registered query arrives in
/// before the optimizer weaves it into the shared physical plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LogicalPlan {
    /// A named base stream (registered source).
    Source(String),
    /// Selection over an input.
    Select {
        /// Input subplan.
        input: Box<LogicalPlan>,
        /// Selection predicate.
        predicate: Predicate,
    },
    /// Projection over an input.
    Project {
        /// Input subplan.
        input: Box<LogicalPlan>,
        /// Projection map.
        map: SchemaMap,
    },
    /// Sliding-window aggregation.
    Aggregate {
        /// Input subplan.
        input: Box<LogicalPlan>,
        /// Aggregation spec.
        spec: AggSpec,
    },
    /// Sliding-window join.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join spec.
        spec: JoinSpec,
    },
    /// Cayuga sequence.
    Sequence {
        /// First (instance-producing) input.
        left: Box<LogicalPlan>,
        /// Second (event) input.
        right: Box<LogicalPlan>,
        /// Sequence spec.
        spec: SeqSpec,
    },
    /// Cayuga iteration.
    Iterate {
        /// First (instance-producing) input.
        left: Box<LogicalPlan>,
        /// Second (event) input.
        right: Box<LogicalPlan>,
        /// Iteration spec.
        spec: IterSpec,
    },
}

impl LogicalPlan {
    /// Source reference.
    pub fn source(name: impl Into<String>) -> LogicalPlan {
        LogicalPlan::Source(name.into())
    }

    /// Wraps with a selection.
    pub fn select(self, predicate: Predicate) -> LogicalPlan {
        LogicalPlan::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// Wraps with a projection.
    pub fn project(self, map: SchemaMap) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            map,
        }
    }

    /// Wraps with an aggregation.
    pub fn aggregate(self, spec: AggSpec) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            spec,
        }
    }

    /// Joins with another plan.
    pub fn join(self, right: LogicalPlan, spec: JoinSpec) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            spec,
        }
    }

    /// Sequences with an event input.
    pub fn followed_by(self, right: LogicalPlan, spec: SeqSpec) -> LogicalPlan {
        LogicalPlan::Sequence {
            left: Box::new(self),
            right: Box::new(right),
            spec,
        }
    }

    /// Iterates over an event input.
    pub fn iterate(self, right: LogicalPlan, spec: IterSpec) -> LogicalPlan {
        LogicalPlan::Iterate {
            left: Box::new(self),
            right: Box::new(right),
            spec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_expr::{CmpOp, NamedExpr};

    #[test]
    fn arities() {
        assert_eq!(OpDef::Select(Predicate::True).arity(), 1);
        assert_eq!(
            OpDef::Join(JoinSpec {
                predicate: Predicate::True,
                window: 10
            })
            .arity(),
            2
        );
    }

    #[test]
    fn select_schema_passthrough() {
        let s = Schema::ints(3);
        let def = OpDef::Select(Predicate::attr_eq_const(0, 1i64));
        assert_eq!(def.output_schema(&[&s]).unwrap(), s);
        // Out-of-range predicate column is a plan error.
        let bad = OpDef::Select(Predicate::attr_eq_const(7, 1i64));
        assert!(bad.output_schema(&[&s]).is_err());
    }

    #[test]
    fn aggregate_schema() {
        let s = Schema::ints(3);
        let spec = AggSpec {
            func: AggFunc::Avg,
            input: Expr::col(2),
            group_by: vec![0],
            window: 5,
        };
        let out = OpDef::Aggregate(spec).output_schema(&[&s]).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.field(0).unwrap().name, "a0");
        assert_eq!(out.field(1).unwrap().name, "avg");
        assert_eq!(out.field(1).unwrap().ty, ValueType::Float);
    }

    #[test]
    fn agg_func_output_types() {
        assert_eq!(AggFunc::Count.output_type(ValueType::Float), ValueType::Int);
        assert_eq!(AggFunc::Sum.output_type(ValueType::Int), ValueType::Int);
        assert_eq!(AggFunc::Avg.output_type(ValueType::Int), ValueType::Float);
        assert_eq!(AggFunc::Min.output_type(ValueType::Float), ValueType::Float);
    }

    #[test]
    fn join_and_sequence_schema_concat() {
        let l = Schema::ints(2);
        let r = Schema::ints(1);
        let join = OpDef::Join(JoinSpec {
            predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
            window: 100,
        });
        let out = join.output_schema(&[&l, &r]).unwrap();
        assert_eq!(out.len(), 3);
        let seq = OpDef::Sequence(SeqSpec {
            predicate: Predicate::True,
            window: 100,
        });
        assert_eq!(seq.output_schema(&[&l, &r]).unwrap().len(), 3);
    }

    #[test]
    fn iterate_requires_schema_preserving_map() {
        let l = Schema::ints(2);
        let r = Schema::ints(2);
        let good = OpDef::Iterate(IterSpec {
            filter: Predicate::False,
            rebind: Predicate::True,
            rebind_map: SchemaMap::new(vec![
                NamedExpr::new("a0", Expr::col(0)),
                NamedExpr::new("a1", Expr::rcol(1)),
            ]),
            window: 10,
        });
        assert!(good.output_schema(&[&l, &r]).is_ok());

        let bad = OpDef::Iterate(IterSpec {
            filter: Predicate::False,
            rebind: Predicate::True,
            rebind_map: SchemaMap::new(vec![NamedExpr::new("x", Expr::col(0))]),
            window: 10,
        });
        assert!(bad.output_schema(&[&l, &r]).is_err());
    }

    #[test]
    fn shared_key_ignores_group_by() {
        let a = AggSpec {
            func: AggFunc::Sum,
            input: Expr::col(1),
            group_by: vec![0],
            window: 9,
        };
        let b = AggSpec {
            group_by: vec![0, 2],
            ..a.clone()
        };
        assert_eq!(a.shared_key(), b.shared_key());
        assert_ne!(a, b);
    }

    #[test]
    fn logical_builders() {
        let q = LogicalPlan::source("S")
            .select(Predicate::attr_eq_const(0, 3i64))
            .aggregate(AggSpec {
                func: AggFunc::Count,
                input: Expr::col(0),
                group_by: vec![],
                window: 10,
            });
        match q {
            LogicalPlan::Aggregate { input, .. } => match *input {
                LogicalPlan::Select { input, .. } => {
                    assert_eq!(*input, LogicalPlan::source("S"));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn display_symbols() {
        assert_eq!(OpDef::Select(Predicate::True).symbol(), "σ");
        let def = OpDef::Select(Predicate::True);
        assert_eq!(def.to_string(), "σ[true]");
    }

    #[test]
    fn wrong_input_count_rejected() {
        let s = Schema::ints(1);
        let def = OpDef::Select(Predicate::True);
        assert!(def.output_schema(&[&s, &s]).is_err());
    }
}
