//! # rumor-core
//!
//! The core of RUMOR — the rule-based multi-query optimization framework of
//! Hong et al. (*Rule-Based Multi-Query Optimization*, EDBT 2009).
//!
//! RUMOR extends three abstractions of traditional stream engines (Table 2
//! of the paper):
//!
//! | traditional          | RUMOR                       | here |
//! |----------------------|-----------------------------|------|
//! | physical operator    | physical multi-operator     | [`plan::MopNode`], [`mop::MultiOp`] |
//! | transformation rule  | m-rule                      | [`rules::MRule`], [`rules::catalog`] |
//! | stream               | channel                     | [`plan::ChannelDef`], [`channel::ChannelTuple`] |
//!
//! A single [`plan::PlanGraph`] implements *all* registered continuous
//! queries. The [`rules::Optimizer`] applies the m-rule catalogue (Table 1)
//! to fixpoint, merging operators that can share state and computation —
//! predicate indexing, shared aggregation, shared joins, common
//! subexpression elimination for the event operators `;` and `µ`, and the
//! channel-based sharing of §3/§4.4. Physical implementations of the shared
//! m-ops live in the `rumor-ops` crate; the push-based scheduler lives in
//! `rumor-engine`.

#![warn(missing_docs)]

pub mod channel;
pub mod cost;
pub mod logical;
pub mod mop;
pub mod partition;
pub mod plan;
pub mod render;
pub mod rules;
pub mod sharable;

pub use channel::ChannelTuple;
pub use cost::{
    estimate as estimate_cost, estimate_with as estimate_cost_with, MopCost, PlanCost,
    SelectivityModel,
};
pub use logical::{AggFunc, AggSpec, IterSpec, JoinSpec, LogicalPlan, OpDef, SeqSpec};
pub use mop::{CountingEmit, Emit, MemberCtx, MopContext, MultiOp, VecEmit};
pub use partition::{
    analyze as analyze_partitioning, reanalyze as reanalyze_partitioning, ComponentReport,
    PartitionKeys, PartitionScheme, PinScope, SourceRoute, Verdict,
};
pub use plan::{
    ChannelDef, Member, MopKind, MopNode, PlanDelta, PlanGraph, PlanSnapshot, Producer, SourceDef,
    StreamDef,
};
pub use rules::{
    Integration, MRule, Optimizer, OptimizerConfig, RewriteTrace, SearchStrategy, TraceEntry,
};
pub use sharable::{Sharability, SigId};
