//! The push-based executor.
//!
//! The engine mirrors the paper's prototype: a single-threaded, push-based
//! interpreter that feeds externally-arriving tuples (in global timestamp
//! order) through the optimized m-op DAG. M-ops are "the basic scheduling
//! and execution units in the engine" (§2.1); routing between them is by
//! channel.

use std::collections::{HashMap, VecDeque};

use rumor_core::{ChannelTuple, Emit, MopContext, PlanGraph};
use rumor_ops::instantiate;
use rumor_types::{
    ChannelId, Membership, MopId, PortId, QueryId, Result, RumorError, SourceId, Tuple,
};

/// Receives query results during execution.
pub trait QuerySink {
    /// Called once per (query, result tuple).
    fn on_result(&mut self, query: QueryId, tuple: &Tuple);

    /// Whether the sink needs the per-query [`QuerySink::on_result`] calls.
    /// Counting sinks return `false` and receive [`QuerySink::on_batch`]
    /// instead, letting the engine deliver one *channel tuple* shared by
    /// many queries in O(1) — the channel delivery granularity the paper's
    /// throughput numbers assume (one output event per channel tuple, not
    /// one per query).
    fn wants_tuples(&self) -> bool {
        true
    }

    /// Batch notification: `n` query results materialized by one channel
    /// tuple. Only called when [`QuerySink::wants_tuples`] is `false`.
    fn on_batch(&mut self, n: u64, _tuple: &Tuple) {
        let _ = n;
    }
}

/// Discards results (throughput measurements).
#[derive(Debug, Default)]
pub struct DiscardSink;

impl QuerySink for DiscardSink {
    fn on_result(&mut self, _query: QueryId, _tuple: &Tuple) {}

    fn wants_tuples(&self) -> bool {
        false
    }
}

/// Counts results per query.
#[derive(Debug, Default)]
pub struct CountingSink {
    counts: HashMap<QueryId, u64>,
    /// Total results across queries.
    pub total: u64,
}

impl CountingSink {
    /// Result count for one query.
    pub fn count(&self, query: QueryId) -> u64 {
        self.counts.get(&query).copied().unwrap_or(0)
    }
}

impl QuerySink for CountingSink {
    fn on_result(&mut self, query: QueryId, _tuple: &Tuple) {
        *self.counts.entry(query).or_insert(0) += 1;
        self.total += 1;
    }

    fn wants_tuples(&self) -> bool {
        false
    }

    fn on_batch(&mut self, n: u64, _tuple: &Tuple) {
        self.total += n;
    }
}

/// Collects `(query, tuple)` pairs — integration tests compare these.
#[derive(Debug, Default)]
pub struct CollectingSink {
    /// Results in arrival order.
    pub results: Vec<(QueryId, Tuple)>,
}

impl CollectingSink {
    /// The results of one query, in order.
    pub fn of(&self, query: QueryId) -> Vec<&Tuple> {
        self.results
            .iter()
            .filter(|(q, _)| *q == query)
            .map(|(_, t)| t)
            .collect()
    }
}

impl QuerySink for CollectingSink {
    fn on_result(&mut self, query: QueryId, tuple: &Tuple) {
        self.results.push((query, tuple.clone()));
    }
}

/// An emitted event waiting to be routed.
type Pending = VecDeque<(ChannelId, ChannelTuple)>;

struct QueueEmit<'a> {
    pending: &'a mut Pending,
}

impl Emit for QueueEmit<'_> {
    fn emit(&mut self, channel: ChannelId, tuple: Tuple, membership: Membership) {
        self.pending.push_back((channel, ChannelTuple::new(tuple, membership)));
    }
}

/// The compiled, executable form of a plan.
pub struct ExecutablePlan {
    ops: Vec<Box<dyn rumor_core::MultiOp>>,
    /// Parallel to `ops`: the plan node each op implements (diagnostics).
    op_ids: Vec<MopId>,
    /// channel index → (exec index, port) consumers, in topological order.
    consumers: Vec<Vec<(usize, PortId)>>,
    /// channel index → [(position, queries listening on that stream)].
    query_taps: Vec<Vec<(usize, Vec<QueryId>)>>,
    /// channel index → (positions-with-queries mask, queries per position if
    /// uniform) — the O(1) batch-delivery fast path for counting sinks.
    tap_masks: Vec<Option<(Membership, Option<u64>)>>,
    /// source index → its base stream's channel.
    source_channels: Vec<ChannelId>,
    pending: Pending,
    /// Total tuples pushed.
    pub events_in: u64,
}

impl ExecutablePlan {
    /// Compiles a plan: instantiates every m-op and builds routing tables.
    pub fn new(plan: &PlanGraph) -> Result<Self> {
        let order = plan.topo_order()?;
        let mut topo_rank: HashMap<MopId, usize> = HashMap::new();
        for (rank, &id) in order.iter().enumerate() {
            topo_rank.insert(id, rank);
        }
        let mut ops = Vec::with_capacity(order.len());
        let mut op_ids = Vec::with_capacity(order.len());
        let mut exec_index: HashMap<MopId, usize> = HashMap::new();
        for &id in &order {
            let ctx = MopContext::build(plan, id)?;
            exec_index.insert(id, ops.len());
            op_ids.push(id);
            ops.push(instantiate(&ctx)?);
        }

        // Channel consumer lists: an m-op consumes channel `c` on port `p`
        // iff its node lists `c` at that port.
        let mut consumers: Vec<Vec<(usize, PortId)>> = vec![Vec::new(); plan.channel_slots()];
        for &id in &order {
            let node = plan.mop(id);
            for (p, &ch) in node.inputs.iter().enumerate() {
                consumers[ch.index()].push((exec_index[&id], PortId(p as u8)));
            }
        }
        for list in &mut consumers {
            list.sort_by_key(|&(idx, port)| (idx, port));
            list.dedup();
        }

        // Query taps: (channel, position) → queries.
        let mut query_taps: Vec<Vec<(usize, Vec<QueryId>)>> =
            vec![Vec::new(); plan.channel_slots()];
        for &(q, stream) in plan.query_outputs() {
            let ch = plan.channel_of(stream);
            let pos = plan.position_in_channel(stream);
            let taps = &mut query_taps[ch.index()];
            match taps.iter_mut().find(|(p, _)| *p == pos) {
                Some((_, qs)) => qs.push(q),
                None => taps.push((pos, vec![q])),
            }
        }

        let source_channels = plan
            .sources()
            .iter()
            .map(|s| plan.channel_of(s.stream))
            .collect();

        let tap_masks = query_taps
            .iter()
            .map(|taps| {
                if taps.is_empty() {
                    return None;
                }
                let mask = Membership::from_indices(taps.iter().map(|(p, _)| *p));
                let first = taps[0].1.len() as u64;
                let uniform = taps
                    .iter()
                    .all(|(_, qs)| qs.len() as u64 == first)
                    .then_some(first);
                Some((mask, uniform))
            })
            .collect();

        Ok(ExecutablePlan {
            ops,
            op_ids,
            consumers,
            query_taps,
            tap_masks,
            source_channels,
            pending: VecDeque::new(),
            events_in: 0,
        })
    }

    /// Number of compiled m-ops.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Names of the compiled implementations in topological order.
    pub fn op_names(&self) -> Vec<(MopId, &'static str)> {
        self.op_ids
            .iter()
            .zip(&self.ops)
            .map(|(&id, op)| (id, op.name()))
            .collect()
    }

    /// Pushes one channel tuple on a channel source (Workload 3's input
    /// shape): the membership says which of the source's streams the tuple
    /// belongs to.
    pub fn push_channel(
        &mut self,
        source: SourceId,
        tuple: Tuple,
        membership: Membership,
        sink: &mut dyn QuerySink,
    ) -> Result<()> {
        let channel = *self
            .source_channels
            .get(source.index())
            .ok_or_else(|| RumorError::exec(format!("unknown source {source}")))?;
        self.events_in += 1;
        self.pending
            .push_back((channel, ChannelTuple::new(tuple, membership)));
        self.drain(sink);
        Ok(())
    }

    fn drain(&mut self, sink: &mut dyn QuerySink) {
        let detailed = sink.wants_tuples();
        while let Some((ch, ct)) = self.pending.pop_front() {
            // Query taps first: results are observable even when further
            // operators also consume the stream.
            if detailed {
                for (pos, queries) in &self.query_taps[ch.index()] {
                    if ct.belongs_to(*pos) {
                        for &q in queries {
                            sink.on_result(q, &ct.tuple);
                        }
                    }
                }
            } else if let Some((mask, uniform)) = &self.tap_masks[ch.index()] {
                // Channel-granularity delivery: one intersection instead of
                // a per-query fan-out.
                let hits = ct.membership.intersect(mask);
                if !hits.is_empty() {
                    let n = match uniform {
                        Some(per_pos) => hits.len() as u64 * per_pos,
                        None => self.query_taps[ch.index()]
                            .iter()
                            .filter(|(p, _)| hits.contains(*p))
                            .map(|(_, qs)| qs.len() as u64)
                            .sum(),
                    };
                    sink.on_batch(n, &ct.tuple);
                }
            }
            for &(idx, port) in &self.consumers[ch.index()] {
                let mut emit = QueueEmit {
                    pending: &mut self.pending,
                };
                self.ops[idx].process(port, &ct, &mut emit);
            }
        }
    }

    /// Pushes one source tuple through the plan, draining all downstream
    /// work before returning. Tuples must arrive in global timestamp order.
    pub fn push(
        &mut self,
        source: SourceId,
        tuple: Tuple,
        sink: &mut dyn QuerySink,
    ) -> Result<()> {
        let channel = *self
            .source_channels
            .get(source.index())
            .ok_or_else(|| RumorError::exec(format!("unknown source {source}")))?;
        self.events_in += 1;
        self.pending
            .push_back((channel, ChannelTuple::solo(tuple)));
        self.drain(sink);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::{LogicalPlan, Optimizer, OptimizerConfig, SeqSpec};
    use rumor_expr::{CmpOp, Expr, Predicate};
    use rumor_types::Schema;

    fn feed_interleaved(
        exec: &mut ExecutablePlan,
        s: SourceId,
        t: SourceId,
        n: u64,
        sink: &mut impl QuerySink,
    ) {
        // S gets even timestamps, T odd — the paper's §5.1 interleaving.
        for ts in 0..n {
            let src = if ts % 2 == 0 { s } else { t };
            exec.push(src, Tuple::ints(ts, &[(ts % 5) as i64, ts as i64]), sink)
                .unwrap();
        }
    }

    #[test]
    fn selection_query_end_to_end() {
        let mut plan = PlanGraph::new();
        let s = plan.add_source("S", Schema::ints(2), None).unwrap();
        let q = plan
            .add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 3i64)))
            .unwrap();
        let mut exec = ExecutablePlan::new(&plan).unwrap();
        let mut sink = CollectingSink::default();
        for ts in 0..10u64 {
            exec.push(s, Tuple::ints(ts, &[(ts % 5) as i64, 0]), &mut sink)
                .unwrap();
        }
        // a0 == 3 at ts 3 and 8.
        let got = sink.of(q);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].ts, 3);
        assert_eq!(got[1].ts, 8);
        assert_eq!(exec.events_in, 10);
    }

    #[test]
    fn optimized_and_naive_plans_agree() {
        // Two identical queries + one different; the optimized plan must
        // produce exactly the same per-query results.
        let build = || {
            let mut plan = PlanGraph::new();
            plan.add_source("S", Schema::ints(2), None).unwrap();
            plan.add_source("T", Schema::ints(2), None).unwrap();
            let mk = |c: i64| {
                LogicalPlan::source("S")
                    .select(Predicate::attr_eq_const(0, c))
                    .followed_by(
                        LogicalPlan::source("T"),
                        SeqSpec {
                            predicate: Predicate::cmp(CmpOp::Eq, Expr::col(1), Expr::rcol(1)),
                            window: 6,
                        },
                    )
            };
            let qs: Vec<QueryId> = (0..3)
                .map(|i| plan.add_query(&mk(i % 2)).unwrap())
                .collect();
            (plan, qs)
        };

        let (naive_plan, qs) = build();
        let (mut opt_plan, qs2) = build();
        assert_eq!(qs, qs2);
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut opt_plan)
            .unwrap();
        assert!(opt_plan.mop_count() < naive_plan.mop_count());

        let run = |plan: &PlanGraph| {
            let mut exec = ExecutablePlan::new(plan).unwrap();
            let mut sink = CollectingSink::default();
            let s = plan.source_by_name("S").unwrap().id;
            let t = plan.source_by_name("T").unwrap().id;
            feed_interleaved(&mut exec, s, t, 60, &mut sink);
            let mut per_query: Vec<Vec<String>> = Vec::new();
            for &q in &qs {
                let mut v: Vec<String> =
                    sink.of(q).iter().map(|t| t.to_string()).collect();
                v.sort();
                per_query.push(v);
            }
            per_query
        };
        assert_eq!(run(&naive_plan), run(&opt_plan));
    }

    #[test]
    fn counting_sink_counts() {
        let mut sink = CountingSink::default();
        sink.on_result(QueryId(0), &Tuple::ints(0, &[1]));
        sink.on_result(QueryId(0), &Tuple::ints(1, &[1]));
        sink.on_result(QueryId(1), &Tuple::ints(1, &[1]));
        assert_eq!(sink.count(QueryId(0)), 2);
        assert_eq!(sink.count(QueryId(1)), 1);
        assert_eq!(sink.count(QueryId(9)), 0);
        assert_eq!(sink.total, 3);
    }

    #[test]
    fn unknown_source_rejected() {
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(1), None).unwrap();
        let mut exec = ExecutablePlan::new(&plan).unwrap();
        let mut sink = DiscardSink;
        assert!(exec
            .push(SourceId(9), Tuple::ints(0, &[1]), &mut sink)
            .is_err());
    }
}
