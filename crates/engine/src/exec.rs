//! The push-based executor.
//!
//! The engine mirrors the paper's prototype: a single-threaded, push-based
//! interpreter that feeds externally-arriving tuples (in global timestamp
//! order) through the optimized m-op DAG. M-ops are "the basic scheduling
//! and execution units in the engine" (§2.1); routing between them is by
//! channel.

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use rumor_core::{ChannelTuple, Emit, MopContext, MopKind, MultiOp, PartitionKeys, PlanGraph};
use rumor_ops::instantiate;
use rumor_types::{
    ChannelId, Membership, MopId, PortId, QueryId, Result, RumorError, SourceId, Timestamp, Tuple,
};

use crate::metrics::{BatchProfile, FeedMode};
use crate::stats::{ExecStatsReport, GateStats, OpCounters, OpStats, TraceRing, TIME_SAMPLE_EVERY};

/// Receives query results during execution.
pub trait QuerySink {
    /// Called once per (query, result tuple).
    fn on_result(&mut self, query: QueryId, tuple: &Tuple);

    /// Whether the sink needs the per-query [`QuerySink::on_result`] calls.
    /// Counting sinks return `false` and receive [`QuerySink::on_batch`]
    /// instead, letting the engine deliver one *channel tuple* shared by
    /// many queries in O(1) — the channel delivery granularity the paper's
    /// throughput numbers assume (one output event per channel tuple, not
    /// one per query).
    fn wants_tuples(&self) -> bool {
        true
    }

    /// Batch notification: `n` query results materialized by one channel
    /// tuple. Only called when [`QuerySink::wants_tuples`] is `false`.
    fn on_batch(&mut self, n: u64, _tuple: &Tuple) {
        let _ = n;
    }
}

/// Discards results (throughput measurements).
#[derive(Debug, Default)]
pub struct DiscardSink;

impl QuerySink for DiscardSink {
    fn on_result(&mut self, _query: QueryId, _tuple: &Tuple) {}

    fn wants_tuples(&self) -> bool {
        false
    }
}

/// Counts results per query.
///
/// Query ids are dense plan indices, so the per-query counters live in a
/// plain `Vec` indexed by [`QueryId`] — this sink sits on the result hot
/// path of every throughput run, and the previous `HashMap` paid a hash
/// per result.
#[derive(Debug, Default)]
pub struct CountingSink {
    counts: Vec<u64>,
    /// Total results across queries.
    pub total: u64,
}

impl CountingSink {
    /// Result count for one query.
    pub fn count(&self, query: QueryId) -> u64 {
        self.counts.get(query.index()).copied().unwrap_or(0)
    }

    /// Folds another counting sink into this one (sharded workers each own
    /// a sink; the runtime merges them at drain time).
    pub fn merge(&mut self, other: CountingSink) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, c) in other.counts.into_iter().enumerate() {
            self.counts[i] += c;
        }
        self.total += other.total;
    }
}

impl QuerySink for CountingSink {
    fn on_result(&mut self, query: QueryId, _tuple: &Tuple) {
        let i = query.index();
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
        self.total += 1;
    }

    fn wants_tuples(&self) -> bool {
        false
    }

    fn on_batch(&mut self, n: u64, _tuple: &Tuple) {
        self.total += n;
    }
}

/// Collects `(query, tuple)` pairs — integration tests compare these.
#[derive(Debug, Default)]
pub struct CollectingSink {
    /// Results in arrival order.
    pub results: Vec<(QueryId, Tuple)>,
}

impl CollectingSink {
    /// The results of one query, in order.
    pub fn of(&self, query: QueryId) -> Vec<&Tuple> {
        self.results
            .iter()
            .filter(|(q, _)| *q == query)
            .map(|(_, t)| t)
            .collect()
    }

    /// Folds another collecting sink into this one, re-establishing a
    /// deterministic global order (by timestamp, then query id — the order
    /// is independent of how results were distributed across sharded
    /// workers; the sort is stable, so same-key results keep their
    /// per-worker arrival order, worker 0 first). Repeated folds stay
    /// cheap: the stable sort is adaptive, and after the first fold each
    /// call merges two already-sorted runs in near-linear time.
    pub fn merge(&mut self, other: CollectingSink) {
        self.results.extend(other.results);
        self.results.sort_by_key(|(q, t)| (t.ts, *q));
    }
}

impl QuerySink for CollectingSink {
    fn on_result(&mut self, query: QueryId, tuple: &Tuple) {
        self.results.push((query, tuple.clone()));
    }
}

/// Source events per internal drain wave of
/// [`ExecutablePlan::push_batch`]: large enough to amortize routing and
/// dispatch over long channel runs, small enough that a wave's level
/// buffers stay in cache.
const BATCH_CHUNK: usize = 1024;

/// Events risked on one exploration sample of the adaptive dispatch gate
/// (see [`ExecutablePlan::push_batch`]): big enough for a meaningful rate
/// estimate, small enough that probing a badly losing mode stays a
/// bounded fraction of one chunk.
const PROBE_CAP: usize = 128;

/// An emitted event waiting to be routed.
type Pending = VecDeque<(ChannelId, ChannelTuple)>;

struct QueueEmit<'a> {
    pending: &'a mut Pending,
}

impl Emit for QueueEmit<'_> {
    fn emit(&mut self, channel: ChannelId, tuple: Tuple, membership: Membership) {
        self.pending
            .push_back((channel, ChannelTuple::new(tuple, membership)));
    }
}

/// One side of the batched drain's double buffer: parallel channel/tuple
/// vectors, so a run of same-channel events forms a contiguous
/// `&[ChannelTuple]` slice for [`rumor_core::MultiOp::process_batch`].
#[derive(Debug, Default)]
struct EventBuf {
    chans: Vec<ChannelId>,
    tuples: Vec<ChannelTuple>,
}

impl EventBuf {
    fn push(&mut self, channel: ChannelId, tuple: ChannelTuple) {
        self.chans.push(channel);
        self.tuples.push(tuple);
    }

    fn clear(&mut self) {
        self.chans.clear();
        self.tuples.clear();
    }

    fn is_empty(&self) -> bool {
        self.chans.is_empty()
    }
}

/// Emit adapter appending into the *next* level's [`EventBuf`].
struct BufEmit<'a> {
    buf: &'a mut EventBuf,
}

impl Emit for BufEmit<'_> {
    fn emit(&mut self, channel: ChannelId, tuple: Tuple, membership: Membership) {
        self.buf.push(channel, ChannelTuple::new(tuple, membership));
    }
}

/// Emit adapter collecting emissions for the channel-grouped strict drain
/// (they are timestamp-sorted before cascading).
struct CollectEmit<'a> {
    out: &'a mut Vec<(ChannelId, ChannelTuple)>,
}

impl Emit for CollectEmit<'_> {
    fn emit(&mut self, channel: ChannelId, tuple: Tuple, membership: Membership) {
        self.out
            .push((channel, ChannelTuple::new(tuple, membership)));
    }
}

/// Which subgraph of the plan a scoped push addresses.
///
/// Partition-parallel runtimes use scoped pushes to implement
/// [`rumor_core::SourceRoute::PinnedSplit`]: a pinned component's source
/// tuple is delivered twice — its *stateful cone* (every source consumer
/// from which a stateful m-op is reachable) on worker 0, its stateless
/// sibling subgraph on a round-robin worker. One [`ConeScope::Stateful`]
/// push plus one [`ConeScope::Stateless`] push of the same tuple produce,
/// together, exactly the results of one full [`ExecutablePlan::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConeScope {
    /// The whole plan — identical to [`ExecutablePlan::push`].
    Full,
    /// Only source-channel consumers inside the stateful cone; the source
    /// channel's own query taps are *not* delivered (the stateless leg
    /// owns them). Derived events process normally.
    Stateful,
    /// Only source-channel consumers outside the stateful cone, plus the
    /// source channel's query taps.
    Stateless,
}

/// The compiled, executable form of a plan.
pub struct ExecutablePlan {
    ops: Vec<Box<dyn rumor_core::MultiOp>>,
    /// Parallel to `ops`: the plan node each op implements (diagnostics).
    op_ids: Vec<MopId>,
    /// Parallel to `ops`: each op's resolved compile context. Hot swap
    /// ([`ExecutablePlan::apply_delta`]) carries an instance — and its
    /// state — across a plan change exactly when the rebuilt context
    /// compares equal to this one.
    op_ctxs: Vec<MopContext>,
    /// Parallel to `ops`: per-op dispatch counters for the introspection
    /// layer (see [`crate::stats`]). Carried across hot swaps for
    /// surviving op ids, like `events_in`.
    op_counters: Vec<OpCounters>,
    /// channel index → (exec index, port) consumers, in topological order.
    consumers: Vec<Vec<(usize, PortId)>>,
    /// source index → source-channel consumers inside the stateful cone
    /// (ops from which a stateful m-op is reachable) — the
    /// [`ConeScope::Stateful`] root set.
    stateful_root: Vec<Vec<(usize, PortId)>>,
    /// source index → source-channel consumers outside the stateful cone —
    /// the [`ConeScope::Stateless`] root set.
    free_root: Vec<Vec<(usize, PortId)>>,
    /// channel index → stateless consumers only (the hybrid drain routes
    /// these at run granularity).
    batch_consumers: Vec<Vec<(usize, PortId)>>,
    /// channel index → stateful consumers only (the hybrid drain delivers
    /// these per-event, in timestamp order).
    strict_consumers: Vec<Vec<(usize, PortId)>>,
    /// channel index → [(position, queries listening on that stream)].
    query_taps: Vec<Vec<(usize, Vec<QueryId>)>>,
    /// channel index → (positions-with-queries mask, queries per position if
    /// uniform) — the O(1) batch-delivery fast path for counting sinks.
    tap_masks: Vec<Option<(Membership, Option<u64>)>>,
    /// source index → its base stream's channel.
    source_channels: Vec<ChannelId>,
    pending: Pending,
    /// Every compiled op is stateless, so [`ExecutablePlan::push_batch`]
    /// may run the channel-batched drain (see [`rumor_core::MultiOp::is_stateless`]).
    batch_safe: bool,
    /// The plan is stateful but its stateless *prefix* may still be
    /// run-batched (see [`ExecutablePlan::is_prefix_batch_safe`]).
    prefix_batch_safe: bool,
    /// Double buffers of the batched drain, reused across calls.
    cur: EventBuf,
    nxt: EventBuf,
    /// Events bound for stateful consumers, staged by the hybrid drain.
    strict: Vec<(ChannelId, ChannelTuple)>,
    /// Every strict consumer tolerates port-grouped delivery (see
    /// [`rumor_core::MultiOp::port_batch_safe`]), so the hybrid drain may
    /// run its strict phase channel-grouped through
    /// [`rumor_core::MultiOp::process_batch_keyed`].
    strict_regroup_safe: bool,
    /// Highest port index among strict consumers (the channel-grouped
    /// drain delivers lower ports first).
    max_strict_port: usize,
    /// Per-channel staging of the channel-grouped strict drain; entries
    /// and their buffers persist across chunks so allocation amortizes.
    strict_runs: Vec<(ChannelId, Vec<ChannelTuple>)>,
    /// Emission collection buffer of the channel-grouped strict drain.
    strict_emit: Vec<(ChannelId, ChannelTuple)>,
    /// source index → connected component of the m-op graph. Components
    /// share no operators, channels, or queries, so the dispatch gate may
    /// choose a different feed mode per component.
    component_of_source: Vec<usize>,
    /// Adaptive dispatch gate, one profile per component: measured
    /// profitability decides per chunk whether a hybrid-eligible stateful
    /// component runs batched or per-event. Reset (like all routing state)
    /// by [`ExecutablePlan::apply_delta`].
    profiles: Vec<BatchProfile>,
    /// Scratch for splitting a chunk's events by component.
    comp_scratch: Vec<Vec<u32>>,
    /// Flight recorder for this executor's runtime transitions (gate
    /// flips and freezes). Shipped with [`ExecutablePlan::stats_report`];
    /// carried across hot swaps like the counters.
    trace: TraceRing,
    /// Total tuples pushed.
    pub events_in: u64,
    /// One wall-time sampling decision per source event, cached at the
    /// push entry points (every [`crate::stats::TIME_SAMPLE_EVERY`]th
    /// event). The per-event dispatch sites test this flag instead of
    /// re-deriving the stride from each m-op's counters, so an unsampled
    /// event pays one register test per dispatch and no clock reads.
    /// Always `false` under `stats-off`.
    sample_this: bool,
}

impl ExecutablePlan {
    /// Compiles a plan: instantiates every m-op and builds routing tables.
    pub fn new(plan: &PlanGraph) -> Result<Self> {
        let order = plan.topo_order()?;
        let mut ops = Vec::with_capacity(order.len());
        let mut op_ctxs = Vec::with_capacity(order.len());
        for &id in &order {
            let ctx = MopContext::build(plan, id)?;
            ops.push(instantiate(&ctx)?);
            op_ctxs.push(ctx);
        }
        Ok(Self::assemble(plan, order, op_ctxs, ops))
    }

    /// Hot-swaps this compiled plan for `plan` without losing operator
    /// state: every m-op whose resolved context is unchanged keeps its
    /// existing instance — windows, sequence/iteration instance indexes,
    /// aggregate buckets and all — while added or rewired m-ops compile
    /// cold and retired ones are dropped. Routing tables, the batching
    /// gates, and the stateful-cone split are rebuilt from scratch for the
    /// new plan. `events_in` carries over.
    ///
    /// Call between pushes only (the engine fully drains every push
    /// entry point before returning, so there is never buffered work to
    /// lose). Compiled per-query results are unaffected for queries whose
    /// operator chain the [`rumor_core::PlanDelta`] does not touch. On
    /// error the engine is left exactly as it was (everything fallible
    /// runs before any state moves).
    pub fn apply_delta(&mut self, plan: &PlanGraph) -> Result<()> {
        debug_assert!(self.pending.is_empty() && self.strict.is_empty() && self.cur.is_empty());
        // Phase 1 — fallible, `self` untouched: resolve the new plan's
        // contexts and compile cold instances for every op that cannot
        // carry over.
        let order = plan.topo_order()?;
        let old_index: HashMap<MopId, usize> = self
            .op_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        let mut op_ctxs = Vec::with_capacity(order.len());
        let mut cold: HashMap<MopId, Box<dyn MultiOp>> = HashMap::new();
        for &id in &order {
            let ctx = MopContext::build(plan, id)?;
            let reusable = old_index.get(&id).is_some_and(|&i| self.op_ctxs[i] == ctx);
            if !reusable {
                cold.insert(id, instantiate(&ctx)?);
            }
            op_ctxs.push(ctx);
        }
        // Phase 2 — infallible: move the reusable instances out of the
        // old engine and assemble the new one around them.
        let mut survivors: HashMap<MopId, Box<dyn MultiOp>> = self
            .op_ids
            .iter()
            .copied()
            .zip(std::mem::take(&mut self.ops))
            .collect();
        let ops: Vec<Box<dyn MultiOp>> = order
            .iter()
            .map(|id| match cold.remove(id) {
                Some(op) => op,
                None => survivors.remove(id).expect("reusable instance present"),
            })
            .collect();
        let mut fresh = Self::assemble(plan, order, op_ctxs, ops);
        fresh.events_in = self.events_in;
        // The flight recorder spans hot swaps: a swap is exactly the kind
        // of transition its timeline should keep.
        fresh.trace = std::mem::take(&mut self.trace);
        // Stats counters are cumulative for the engine's life: surviving
        // ops keep theirs (cold-compiled replacements start at zero).
        for (i, id) in fresh.op_ids.iter().enumerate() {
            if let Some(&j) = old_index.get(id) {
                fresh.op_counters[i] = self.op_counters[j];
            }
        }
        *self = fresh;
        Ok(())
    }

    /// Builds the routing tables, batching gates, and cone split around
    /// compiled operators (`ops`/`op_ctxs` parallel to the topological
    /// `order`). Infallible: callers finish all fallible work first so
    /// hot swaps cannot leave an engine half-built.
    fn assemble(
        plan: &PlanGraph,
        order: Vec<MopId>,
        op_ctxs: Vec<MopContext>,
        ops: Vec<Box<dyn MultiOp>>,
    ) -> Self {
        let exec_index: HashMap<MopId, usize> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();

        // Channel consumer lists: an m-op consumes channel `c` on port `p`
        // iff its node lists `c` at that port.
        let mut consumers: Vec<Vec<(usize, PortId)>> = vec![Vec::new(); plan.channel_slots()];
        for &id in &order {
            let node = plan.mop(id);
            for (p, &ch) in node.inputs.iter().enumerate() {
                consumers[ch.index()].push((exec_index[&id], PortId(p as u8)));
            }
        }
        for list in &mut consumers {
            list.sort_by_key(|&(idx, port)| (idx, port));
            list.dedup();
        }

        // Query taps: (channel, position) → queries.
        let mut query_taps: Vec<Vec<(usize, Vec<QueryId>)>> =
            vec![Vec::new(); plan.channel_slots()];
        for &(q, stream) in plan.query_outputs() {
            let ch = plan.channel_of(stream);
            let pos = plan.position_in_channel(stream);
            let taps = &mut query_taps[ch.index()];
            match taps.iter_mut().find(|(p, _)| *p == pos) {
                Some((_, qs)) => qs.push(q),
                None => taps.push((pos, vec![q])),
            }
        }

        let source_channels: Vec<ChannelId> = plan
            .sources()
            .iter()
            .map(|s| plan.channel_of(s.stream))
            .collect();

        // Stateful cone (for scoped pushes, see [`ConeScope`]): an op is in
        // the cone when it reports stateful partition keys or any op
        // consuming one of its output channels is. Uses the same
        // introspection (`partition_keys`) as the partitioning analysis so
        // the engine's cone always matches the analysis' split decision.
        let in_stateful_cone = {
            let stateless_key: Vec<bool> = ops
                .iter()
                .map(|op| matches!(op.partition_keys(), PartitionKeys::Stateless))
                .collect();
            let mut op_outputs: Vec<Vec<ChannelId>> = vec![Vec::new(); ops.len()];
            for &id in &order {
                let node = plan.mop(id);
                for m in &node.members {
                    op_outputs[exec_index[&id]].push(plan.channel_of(m.output));
                }
            }
            let mut in_cone = vec![false; ops.len()];
            // Exec indices are topological, so a reverse scan sees every
            // consumer before its producer.
            for idx in (0..ops.len()).rev() {
                let mut cone = !stateless_key[idx];
                if !cone {
                    'downstream: for &ch in &op_outputs[idx] {
                        for &(cidx, _) in &consumers[ch.index()] {
                            if in_cone[cidx] {
                                cone = true;
                                break 'downstream;
                            }
                        }
                    }
                }
                in_cone[idx] = cone;
            }
            in_cone
        };
        let mut stateful_root: Vec<Vec<(usize, PortId)>> = vec![Vec::new(); source_channels.len()];
        let mut free_root: Vec<Vec<(usize, PortId)>> = vec![Vec::new(); source_channels.len()];
        for (si, &ch) in source_channels.iter().enumerate() {
            for &(idx, port) in &consumers[ch.index()] {
                if in_stateful_cone[idx] {
                    stateful_root[si].push((idx, port));
                } else {
                    free_root[si].push((idx, port));
                }
            }
        }

        let tap_masks = query_taps
            .iter()
            .map(|taps| {
                if taps.is_empty() {
                    return None;
                }
                let mask = Membership::from_indices(taps.iter().map(|(p, _)| *p));
                let first = taps[0].1.len() as u64;
                let uniform = taps
                    .iter()
                    .all(|(_, qs)| qs.len() as u64 == first)
                    .then_some(first);
                Some((mask, uniform))
            })
            .collect();

        let batch_safe = ops.iter().all(|op| op.is_stateless());

        // --- hybrid (stateless-prefix) batching gate ---------------------
        // Split each channel's consumers into stateless (run-batchable) and
        // stateful (strict, per-event in timestamp order) sets, then decide
        // whether the hybrid drain reproduces the per-event engine exactly:
        //
        // 1. No stateful op may consume anything derived from a stateful
        //    op's output: stateful cascades are processed inline per seed,
        //    which can reorder equal-timestamp deliveries between siblings.
        // 2. Every channel feeding a stateful op must carry at most one
        //    event per source event along its stateless ancestry (one
        //    emission per member stream, or one channelized tuple), so the
        //    stable timestamp sort of staged strict events reproduces the
        //    per-event delivery order exactly.
        //
        // Runs with equal timestamps inside one chunk are handled at push
        // time (that chunk falls back to the per-event drain).
        let stateless_op: Vec<bool> = ops.iter().map(|op| op.is_stateless()).collect();
        let mut batch_consumers: Vec<Vec<(usize, PortId)>> = vec![Vec::new(); plan.channel_slots()];
        let mut strict_consumers: Vec<Vec<(usize, PortId)>> =
            vec![Vec::new(); plan.channel_slots()];
        for (ch, list) in consumers.iter().enumerate() {
            for &(idx, port) in list {
                if stateless_op[idx] {
                    batch_consumers[ch].push((idx, port));
                } else {
                    strict_consumers[ch].push((idx, port));
                }
            }
        }
        // Producing m-op (exec index) per channel; sources produce the rest.
        let mut producer_of: Vec<Option<usize>> = vec![None; plan.channel_slots()];
        for &id in &order {
            let node = plan.mop(id);
            for m in &node.members {
                producer_of[plan.channel_of(m.output).index()] = Some(exec_index[&id]);
            }
        }
        // Condition 1: no stateful op downstream of a stateful op.
        let mut tainted = vec![false; plan.channel_slots()];
        let mut cascade = false;
        for &id in &order {
            let node = plan.mop(id);
            let idx = exec_index[&id];
            let in_tainted = node.inputs.iter().any(|c| tainted[c.index()]);
            if in_tainted && !stateless_op[idx] {
                cascade = true;
            }
            if in_tainted || !stateless_op[idx] {
                for m in &node.members {
                    tainted[plan.channel_of(m.output).index()] = true;
                }
            }
        }
        // Condition 2: ≤1 event per (source event, channel) upstream of
        // every strict channel. A multi-capacity channel qualifies when
        // its producer *groups* emissions — channelized m-ops by
        // construction, and any op reporting
        // [`rumor_core::MultiOp::grouped_emission`] (one channel tuple
        // with union membership per channel per input tuple).
        let single_emission = |ch: usize| -> bool {
            let mut stack = vec![ch];
            let mut seen = vec![false; plan.channel_slots()];
            while let Some(c) = stack.pop() {
                if std::mem::replace(&mut seen[c], true) {
                    continue;
                }
                let Some(p) = producer_of[c] else {
                    continue; // source-fed channel: one event per push
                };
                let node = plan.mop(order[p]);
                let channelized =
                    matches!(node.kind, MopKind::ChannelSelect | MopKind::ChannelProject);
                if plan.channel(ChannelId::from_index(c)).capacity() > 1
                    && !channelized
                    && !ops[p].grouped_emission()
                {
                    return false; // several members may emit per input event
                }
                stack.extend(node.inputs.iter().map(|i| i.index()));
            }
            true
        };
        // A plan with no stateless op at all still qualifies: its chunks
        // stage straight into the strict phase, where channel-grouped
        // delivery (`process_batch_keyed`) is the payoff.
        let prefix_batch_safe = !batch_safe
            && !cascade
            && strict_consumers
                .iter()
                .enumerate()
                .filter(|(_, l)| !l.is_empty())
                .all(|(ch, _)| single_emission(ch));

        // The strict phase may regroup by channel only when every strict
        // consumer tolerates port-grouped delivery (see
        // [`rumor_core::MultiOp::port_batch_safe`]); one intolerant op
        // (joins, opaque naive plans) keeps the whole plan on the sorted
        // per-event strict path.
        let mut any_strict = false;
        let mut all_tolerant = true;
        let mut max_strict_port = 0usize;
        for &(idx, port) in strict_consumers.iter().flatten() {
            any_strict = true;
            max_strict_port = max_strict_port.max(port.index());
            all_tolerant &= ops[idx].port_batch_safe();
        }
        let strict_regroup_safe = any_strict && all_tolerant;

        // Connected components of the m-op graph (entities: ops, then
        // sources), via union-find over channel producer/consumer edges.
        // Components are fully independent — no shared operators, channels,
        // or query taps — so the adaptive dispatch gate can pick a feed
        // mode per component without affecting any other's results.
        fn uf_find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        fn uf_union(parent: &mut [usize], a: usize, b: usize) {
            let (ra, rb) = (uf_find(parent, a), uf_find(parent, b));
            parent[ra] = rb;
        }
        let n_ops = ops.len();
        let mut parent: Vec<usize> = (0..n_ops + source_channels.len()).collect();
        let mut chan_entity: Vec<Option<usize>> = producer_of.clone();
        for (si, &ch) in source_channels.iter().enumerate() {
            match chan_entity[ch.index()] {
                Some(e) => uf_union(&mut parent, e, n_ops + si),
                None => chan_entity[ch.index()] = Some(n_ops + si),
            }
        }
        for (ch, list) in consumers.iter().enumerate() {
            if let Some(e) = chan_entity[ch] {
                for &(idx, _) in list {
                    uf_union(&mut parent, e, idx);
                }
            }
        }
        let mut roots: HashMap<usize, usize> = HashMap::new();
        let component_of_source: Vec<usize> = (0..source_channels.len())
            .map(|si| {
                let root = uf_find(&mut parent, n_ops + si);
                let next = roots.len();
                *roots.entry(root).or_insert(next)
            })
            .collect();
        let n_components = roots.len().max(1);

        ExecutablePlan {
            op_counters: vec![OpCounters::default(); n_ops],
            ops,
            op_ids: order,
            op_ctxs,
            consumers,
            stateful_root,
            free_root,
            batch_consumers,
            strict_consumers,
            query_taps,
            tap_masks,
            source_channels,
            pending: VecDeque::new(),
            batch_safe,
            prefix_batch_safe,
            cur: EventBuf::default(),
            nxt: EventBuf::default(),
            strict: Vec::new(),
            strict_regroup_safe,
            max_strict_port,
            strict_runs: Vec::new(),
            strict_emit: Vec::new(),
            component_of_source,
            profiles: vec![BatchProfile::default(); n_components],
            comp_scratch: Vec::new(),
            trace: TraceRing::with_capacity(64),
            events_in: 0,
            sample_this: false,
        }
    }

    /// Number of compiled m-ops.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Names of the compiled implementations in topological order.
    pub fn op_names(&self) -> Vec<(MopId, &'static str)> {
        self.op_ids
            .iter()
            .zip(&self.ops)
            .map(|(&id, op)| (id, op.name()))
            .collect()
    }

    /// Pushes one channel tuple on a channel source (Workload 3's input
    /// shape): the membership says which of the source's streams the tuple
    /// belongs to.
    pub fn push_channel(
        &mut self,
        source: SourceId,
        tuple: Tuple,
        membership: Membership,
        sink: &mut dyn QuerySink,
    ) -> Result<()> {
        let channel = *self
            .source_channels
            .get(source.index())
            .ok_or_else(|| RumorError::exec(format!("unknown source {source}")))?;
        self.events_in += 1;
        self.tick_sample();
        self.pending
            .push_back((channel, ChannelTuple::new(tuple, membership)));
        self.drain(sink);
        Ok(())
    }

    /// Refreshes the cached per-event sampling decision — call right
    /// after `events_in` advances at a push entry point.
    #[inline(always)]
    fn tick_sample(&mut self) {
        if crate::stats::STATS_COMPILED {
            self.sample_this = self.events_in & (TIME_SAMPLE_EVERY - 1) == 0;
        }
    }

    /// A clock read for the current dispatch iff the current event is
    /// sampled (see the `sample_this` field). Pair with
    /// [`OpCounters::record_time`].
    #[inline(always)]
    fn sample_clock(&self) -> Option<Instant> {
        if crate::stats::STATS_COMPILED && self.sample_this {
            return Some(Instant::now());
        }
        None
    }

    fn drain(&mut self, sink: &mut dyn QuerySink) {
        let detailed = sink.wants_tuples();
        while let Some((ch, ct)) = self.pending.pop_front() {
            // Query taps first: results are observable even when further
            // operators also consume the stream.
            if detailed {
                for (pos, queries) in &self.query_taps[ch.index()] {
                    if ct.belongs_to(*pos) {
                        for &q in queries {
                            sink.on_result(q, &ct.tuple);
                        }
                    }
                }
            } else if let Some((mask, uniform)) = &self.tap_masks[ch.index()] {
                // Channel-granularity delivery: one intersection instead of
                // a per-query fan-out.
                let hits = ct.membership.intersect(mask);
                if !hits.is_empty() {
                    let n = match uniform {
                        Some(per_pos) => hits.len() as u64 * per_pos,
                        None => self.query_taps[ch.index()]
                            .iter()
                            .filter(|(p, _)| hits.contains(*p))
                            .map(|(_, qs)| qs.len() as u64)
                            .sum(),
                    };
                    sink.on_batch(n, &ct.tuple);
                }
            }
            for &(idx, port) in &self.consumers[ch.index()] {
                let before = self.pending.len();
                let t0 = self.sample_clock();
                let mut emit = QueueEmit {
                    pending: &mut self.pending,
                };
                self.ops[idx].process(port, &ct, &mut emit);
                self.op_counters[idx].record_event((self.pending.len() - before) as u64);
                self.op_counters[idx].record_time(t0, 1);
            }
        }
    }

    /// Pushes one source tuple through the plan, draining all downstream
    /// work before returning. Tuples must arrive in global timestamp order.
    pub fn push(&mut self, source: SourceId, tuple: Tuple, sink: &mut dyn QuerySink) -> Result<()> {
        let channel = *self
            .source_channels
            .get(source.index())
            .ok_or_else(|| RumorError::exec(format!("unknown source {source}")))?;
        self.events_in += 1;
        self.tick_sample();
        self.pending.push_back((channel, ChannelTuple::solo(tuple)));
        self.drain(sink);
        Ok(())
    }

    /// Pushes one source tuple restricted to one subgraph of the plan (see
    /// [`ConeScope`]). `Full` is identical to [`ExecutablePlan::push`];
    /// `Stateful` processes only source consumers inside the stateful cone
    /// (no source-channel taps); `Stateless` delivers the source channel's
    /// taps and processes only consumers outside the cone. Either scoped
    /// delivery fully drains its derived cascade before returning, and the
    /// pair of scoped deliveries reproduces one full push exactly.
    pub fn push_cone(
        &mut self,
        source: SourceId,
        tuple: Tuple,
        scope: ConeScope,
        sink: &mut dyn QuerySink,
    ) -> Result<()> {
        let channel = *self
            .source_channels
            .get(source.index())
            .ok_or_else(|| RumorError::exec(format!("unknown source {source}")))?;
        self.events_in += 1;
        self.tick_sample();
        let ct = ChannelTuple::solo(tuple);
        match scope {
            ConeScope::Full => {
                self.pending.push_back((channel, ct));
            }
            ConeScope::Stateful => {
                for &(idx, port) in &self.stateful_root[source.index()] {
                    let before = self.pending.len();
                    let t0 = self.sample_clock();
                    let mut emit = QueueEmit {
                        pending: &mut self.pending,
                    };
                    self.ops[idx].process(port, &ct, &mut emit);
                    self.op_counters[idx].record_event((self.pending.len() - before) as u64);
                    self.op_counters[idx].record_time(t0, 1);
                }
            }
            ConeScope::Stateless => {
                let detailed = sink.wants_tuples();
                self.deliver_taps(channel, std::slice::from_ref(&ct), detailed, sink);
                for &(idx, port) in &self.free_root[source.index()] {
                    let before = self.pending.len();
                    let t0 = self.sample_clock();
                    let mut emit = QueueEmit {
                        pending: &mut self.pending,
                    };
                    self.ops[idx].process(port, &ct, &mut emit);
                    self.op_counters[idx].record_event((self.pending.len() - before) as u64);
                    self.op_counters[idx].record_time(t0, 1);
                }
            }
        }
        self.drain(sink);
        Ok(())
    }

    /// Whether this plan qualifies for the channel-batched fast path (all
    /// compiled m-ops are stateless).
    pub fn is_batch_safe(&self) -> bool {
        self.batch_safe
    }

    /// Whether this *stateful* plan is eligible for the chunked, gated
    /// batch dispatch: any stateless prefix runs through the
    /// channel-batched drain, and events reaching stateful m-ops are
    /// delivered channel-grouped (per-key sub-batched, see
    /// [`rumor_core::MultiOp::process_batch_keyed`]) or per-event in
    /// timestamp order, as the adaptive gate decides. Plans with no
    /// stateless op at all qualify too — their chunks stage straight into
    /// the strict phase. False when the plan is fully stateless (the
    /// whole plan batches, see [`ExecutablePlan::is_batch_safe`]) or when
    /// exact per-event equivalence cannot be guaranteed statically:
    /// stateful operators feeding stateful operators, or an ancestry that
    /// may emit more than one event per source event on one channel
    /// (multi-member channels qualify only when their producer groups
    /// emissions, see [`rumor_core::MultiOp::grouped_emission`]).
    pub fn is_prefix_batch_safe(&self) -> bool {
        self.prefix_batch_safe
    }

    /// Per-m-op partitioning key reports (see
    /// [`rumor_core::MultiOp::partition_keys`]), the physical input to
    /// [`rumor_core::partition::analyze`].
    pub fn partition_reports(&self) -> Vec<(MopId, PartitionKeys)> {
        self.op_ids
            .iter()
            .zip(&self.ops)
            .map(|(&id, op)| (id, op.partition_keys()))
            .collect()
    }

    /// A point-in-time introspection report for this executor: per-op
    /// dispatch counters (cumulative since construction, hot swaps
    /// included) plus sampled state-size gauges and the adaptive gate's
    /// per-component state. Partition-parallel runtimes fold one report
    /// per worker with [`ExecStatsReport::absorb`].
    pub fn stats_report(&self) -> ExecStatsReport {
        let ops = self
            .op_ids
            .iter()
            .zip(&self.ops)
            .zip(&self.op_counters)
            .map(|((&mop, op), c)| OpStats {
                mop,
                name: op.name().to_string(),
                events_in: c.events_in,
                events_out: c.events_out,
                batch_calls: c.batch_calls,
                event_calls: c.event_calls,
                state_size: op.state_size() as u64,
                sampled_nanos: c.sampled_nanos,
                sampled_calls: c.sampled_calls,
                sampled_events: c.sampled_events,
            })
            .collect();
        let gates = self
            .profiles
            .iter()
            .enumerate()
            .map(|(component, p)| GateStats {
                component,
                mode: p.preferred(),
                frozen: p.is_frozen(),
                forced: BatchProfile::forced(),
            })
            .collect();
        ExecStatsReport {
            ops,
            gates,
            trace: self.trace.events().cloned().collect(),
        }
    }

    /// Pushes a timestamp-ordered slice of source events through the plan.
    ///
    /// Per-query results are identical to pushing the events one at a time
    /// with [`ExecutablePlan::push`]. On stateless plans (see
    /// [`ExecutablePlan::is_batch_safe`]) events are routed at *run*
    /// granularity: consecutive same-channel events form one
    /// [`rumor_core::MultiOp::process_batch`] call per consumer, amortizing
    /// routing, dispatch, and queue bookkeeping over the run. On stateful
    /// plans whose shape permits it (see
    /// [`ExecutablePlan::is_prefix_batch_safe`]) the choice between the
    /// hybrid drain and plain per-event delivery is no longer static: an
    /// *adaptive dispatch gate* (one [`BatchProfile`] per plan component)
    /// times both modes and keeps whichever measures faster, re-probing
    /// the loser on a decaying schedule. Under the hybrid drain the
    /// stateless prefix is run-batched and events reaching stateful m-ops
    /// are delivered channel-grouped through
    /// [`rumor_core::MultiOp::process_batch_keyed`] when every strict
    /// consumer tolerates it, or per-event in global timestamp order
    /// otherwise. Chunks containing equal timestamps, and plans where the
    /// hybrid cannot be proven exact, always take the per-event drain for
    /// the whole chunk; the gate never changes results, only speed.
    pub fn push_batch(
        &mut self,
        events: &[(SourceId, Tuple)],
        sink: &mut dyn QuerySink,
    ) -> Result<()> {
        if self.batch_safe {
            // Fully stateless: the run-batched drain is a statically
            // proven win, no gating needed. Drain in bounded chunks so the
            // level buffers stay cache-resident: one wave over the whole
            // input would materialize every derived level in full, trading
            // the per-event queue overhead for memory traffic.
            for chunk in events.chunks(BATCH_CHUNK) {
                self.run_chunk_hybrid(chunk.iter(), sink)?;
            }
            return Ok(());
        }
        if !self.prefix_batch_safe {
            for (source, tuple) in events {
                self.push(*source, tuple.clone(), sink)?;
            }
            return Ok(());
        }
        for chunk in events.chunks(BATCH_CHUNK) {
            self.push_chunk_gated(chunk.iter(), chunk.len(), sink)?;
        }
        Ok(())
    }

    /// [`ExecutablePlan::push_batch`] over a *selection* of `events`:
    /// processes `events[i]` for each `i` in `indices`, in order. This is
    /// the worker-side half of shared-batch delivery — partition-parallel
    /// runtimes ship one shared event slice plus a per-worker index list
    /// instead of materializing per-worker event runs, and each worker
    /// feeds its selection through the same chunked, gated machinery as a
    /// contiguous batch.
    pub fn push_batch_indexed(
        &mut self,
        events: &[(SourceId, Tuple)],
        indices: &[u32],
        sink: &mut dyn QuerySink,
    ) -> Result<()> {
        if self.batch_safe {
            for chunk in indices.chunks(BATCH_CHUNK) {
                self.run_chunk_hybrid(chunk.iter().map(|&i| &events[i as usize]), sink)?;
            }
            return Ok(());
        }
        if !self.prefix_batch_safe {
            for &i in indices {
                let (source, tuple) = &events[i as usize];
                self.push(*source, tuple.clone(), sink)?;
            }
            return Ok(());
        }
        for chunk in indices.chunks(BATCH_CHUNK) {
            self.push_chunk_gated(
                chunk.iter().map(|&i| &events[i as usize]),
                chunk.len(),
                sink,
            )?;
        }
        Ok(())
    }

    /// One hybrid-eligible chunk through the adaptive dispatch gate. With
    /// a single component the whole chunk is gated as one unit; with
    /// several, the chunk splits by component (components share nothing,
    /// so their relative processing order is unobservable) and each
    /// sub-chunk is gated independently.
    fn push_chunk_gated<'a, I>(
        &mut self,
        chunk: I,
        len: usize,
        sink: &mut dyn QuerySink,
    ) -> Result<()>
    where
        I: Iterator<Item = &'a (SourceId, Tuple)> + Clone,
    {
        if self.profiles.len() <= 1 {
            return self.push_chunk_adaptive(0, len, chunk, sink);
        }
        let refs: Vec<&(SourceId, Tuple)> = chunk.collect();
        let mut bufs = std::mem::take(&mut self.comp_scratch);
        bufs.resize(self.profiles.len(), Vec::new());
        for b in &mut bufs {
            b.clear();
        }
        // An unknown source stops the split: everything before it (the
        // valid prefix, across all components) is processed, then the
        // error surfaces — matching `push` semantics.
        let mut bad_source = None;
        for (i, r) in refs.iter().enumerate() {
            match self.component_of_source.get(r.0.index()) {
                Some(&c) => bufs[c].push(i as u32),
                None => {
                    bad_source = Some(r.0);
                    break;
                }
            }
        }
        let mut result = Ok(());
        for (c, idxs) in bufs.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            result = self.push_chunk_adaptive(
                c,
                idxs.len(),
                idxs.iter().map(|&i| refs[i as usize]),
                sink,
            );
            if result.is_err() {
                break;
            }
        }
        self.comp_scratch = bufs;
        result?;
        if let Some(source) = bad_source {
            return Err(RumorError::exec(format!("unknown source {source}")));
        }
        Ok(())
    }

    /// Feeds one component's chunk in the mode its [`BatchProfile`] picks,
    /// timing the choice so the profile learns. Chunks with timestamp ties
    /// are forced per-event (the hybrid drain's exactness proof needs
    /// strictly increasing timestamps) but still recorded — a forced
    /// per-event chunk is a genuine per-event sample.
    ///
    /// Exploration picks (warmup and probes of the non-standing mode) run
    /// on a capped sub-chunk, with the remainder delivered in the standing
    /// mode: a mode that loses badly — e.g. the hybrid drain on a plan
    /// whose state access dominates — costs [`PROBE_CAP`] events of slow
    /// dispatch, not a whole chunk. Both modes are exact at any split
    /// point, so splitting never changes results. Chunks too small to
    /// afford the split skip the sample and run the standing mode; the
    /// probe waits for a bigger chunk.
    fn push_chunk_adaptive<'a, I>(
        &mut self,
        comp: usize,
        len: usize,
        chunk: I,
        sink: &mut dyn QuerySink,
    ) -> Result<()>
    where
        I: Iterator<Item = &'a (SourceId, Tuple)> + Clone,
    {
        let mut tied = false;
        let mut prev: Option<Timestamp> = None;
        for (_, tuple) in chunk.clone() {
            if prev.is_some_and(|p| p >= tuple.ts) {
                tied = true;
                break;
            }
            prev = Some(tuple.ts);
        }
        let (mode, exploratory) = if tied {
            (FeedMode::PerEvent, false)
        } else {
            self.profiles[comp].choose()
        };
        if exploratory {
            let steady = match mode {
                FeedMode::PerEvent => FeedMode::Batched,
                FeedMode::Batched => FeedMode::PerEvent,
            };
            if len >= 2 * PROBE_CAP {
                let start = Instant::now();
                let r = self.run_chunk_mode(mode, chunk.clone().take(PROBE_CAP), sink);
                self.gate_record(comp, mode, PROBE_CAP, start.elapsed().as_nanos() as u64);
                r?;
                let start = Instant::now();
                let r = self.run_chunk_mode(steady, chunk.skip(PROBE_CAP), sink);
                self.gate_record(
                    comp,
                    steady,
                    len - PROBE_CAP,
                    start.elapsed().as_nanos() as u64,
                );
                return r;
            }
            let start = Instant::now();
            let r = self.run_chunk_mode(steady, chunk, sink);
            self.gate_record(comp, steady, len, start.elapsed().as_nanos() as u64);
            return r;
        }
        let start = Instant::now();
        let result = self.run_chunk_mode(mode, chunk, sink);
        self.gate_record(comp, mode, len, start.elapsed().as_nanos() as u64);
        result
    }

    /// Feeds one measured sample into a component's gate profile,
    /// journaling preference flips and freezes into the flight recorder.
    /// The profile update itself is core behavior (the gate adapts with
    /// or without stats); only the journaling is compiled out by
    /// `stats-off`.
    fn gate_record(&mut self, comp: usize, mode: FeedMode, events: usize, nanos: u64) {
        #[cfg(not(feature = "stats-off"))]
        let before = (
            self.profiles[comp].is_frozen(),
            self.profiles[comp].preferred(),
        );
        self.profiles[comp].record(mode, events, nanos);
        #[cfg(not(feature = "stats-off"))]
        {
            let p = &self.profiles[comp];
            if p.is_frozen() && !before.0 {
                self.trace.record(
                    "gate_freeze",
                    format!(
                        "component {comp} froze {}",
                        crate::stats::mode_str(p.preferred())
                    ),
                );
            } else if p.preferred() != before.1 {
                self.trace.record(
                    "gate_flip",
                    format!(
                        "component {comp} now prefers {}",
                        crate::stats::mode_str(p.preferred())
                    ),
                );
            }
        }
    }

    /// One chunk through one feed mode (the adaptive gate's two arms).
    fn run_chunk_mode<'a, I>(
        &mut self,
        mode: FeedMode,
        chunk: I,
        sink: &mut dyn QuerySink,
    ) -> Result<()>
    where
        I: Iterator<Item = &'a (SourceId, Tuple)> + Clone,
    {
        match mode {
            FeedMode::PerEvent => {
                for (source, tuple) in chunk {
                    self.push(*source, tuple.clone(), sink)?;
                }
                Ok(())
            }
            FeedMode::Batched => self.run_chunk_hybrid(chunk, sink),
        }
    }

    /// Stages one chunk and runs the hybrid drain (batched stateless
    /// phase, then the strict phase). On an unknown source, matches
    /// `push`: the valid prefix is fully processed (drained, counted)
    /// before the error — no staged events may leak into a later call.
    fn run_chunk_hybrid<'a, I>(&mut self, chunk: I, sink: &mut dyn QuerySink) -> Result<()>
    where
        I: Iterator<Item = &'a (SourceId, Tuple)>,
    {
        let mut bad_source = None;
        for (source, tuple) in chunk {
            match self.source_channels.get(source.index()) {
                Some(&channel) => {
                    self.cur.push(channel, ChannelTuple::solo(tuple.clone()));
                    self.events_in += 1;
                }
                None => {
                    bad_source = Some(*source);
                    break;
                }
            }
        }
        self.tick_sample();
        self.drain_batched(sink);
        self.drain_strict(sink);
        if let Some(source) = bad_source {
            return Err(RumorError::exec(format!("unknown source {source}")));
        }
        Ok(())
    }

    /// The dispatch gate's current preference for one source's component
    /// (diagnostics; see [`BatchProfile`]).
    pub fn gate_preference(&self, source: SourceId) -> Option<FeedMode> {
        let comp = *self.component_of_source.get(source.index())?;
        self.profiles.get(comp).map(|p| p.preferred())
    }

    /// Level-order batched drain: consumes the whole current buffer (runs
    /// of consecutive same-channel events feed each *stateless* consumer
    /// through one `process_batch` call), with all emissions collected into
    /// the next buffer; then the buffers swap. Per-channel event order is
    /// preserved, which is all stateless consumers and query delivery
    /// observe. Events on channels with stateful consumers are staged into
    /// `strict` for the per-event phase ([`ExecutablePlan::drain_strict`]);
    /// on fully stateless plans that staging never triggers.
    fn drain_batched(&mut self, sink: &mut dyn QuerySink) {
        let detailed = sink.wants_tuples();
        while !self.cur.is_empty() {
            // Split the borrow: the ops read `cur` while emitting into
            // `nxt` through the adapter.
            let cur = std::mem::take(&mut self.cur);
            let mut i = 0;
            while i < cur.chans.len() {
                let ch = cur.chans[i];
                let mut j = i + 1;
                while j < cur.chans.len() && cur.chans[j] == ch {
                    j += 1;
                }
                let run = &cur.tuples[i..j];
                self.deliver_taps(ch, run, detailed, sink);
                if !self.strict_consumers[ch.index()].is_empty() {
                    self.strict.extend(run.iter().map(|ct| (ch, ct.clone())));
                }
                for &(idx, port) in &self.batch_consumers[ch.index()] {
                    let before = self.nxt.chans.len();
                    let t0 = self.op_counters[idx].sample_start();
                    let mut emit = BufEmit { buf: &mut self.nxt };
                    self.ops[idx].process_batch(port, run, &mut emit);
                    self.op_counters[idx]
                        .record_batch(run.len() as u64, (self.nxt.chans.len() - before) as u64);
                    self.op_counters[idx].record_time(t0, run.len() as u64);
                }
                i = j;
            }
            // Recycle the consumed buffer's allocation, then promote the
            // freshly emitted level.
            self.cur = cur;
            self.cur.clear();
            std::mem::swap(&mut self.cur, &mut self.nxt);
        }
    }

    /// Per-event phase of the hybrid drain: delivers the staged strict
    /// events to their stateful consumers in global timestamp order (the
    /// sort is stable, and within one source event the staging order is the
    /// per-event engine's BFS order), fully draining each seed's downstream
    /// cascade — taps included — before the next seed, exactly as the
    /// per-event engine would. The seeds themselves are not re-tapped:
    /// their query taps were delivered during the batched phase.
    fn drain_strict(&mut self, sink: &mut dyn QuerySink) {
        if self.strict.is_empty() {
            return;
        }
        if self.strict_regroup_safe && self.strict.len() > 1 {
            self.drain_strict_grouped(sink);
            return;
        }
        let mut strict = std::mem::take(&mut self.strict);
        strict.sort_by_key(|(_, ct)| ct.tuple.ts);
        for (ch, ct) in strict.drain(..) {
            for &(idx, port) in &self.strict_consumers[ch.index()] {
                let before = self.pending.len();
                let t0 = self.op_counters[idx].sample_start();
                let mut emit = QueueEmit {
                    pending: &mut self.pending,
                };
                self.ops[idx].process(port, &ct, &mut emit);
                self.op_counters[idx].record_event((self.pending.len() - before) as u64);
                self.op_counters[idx].record_time(t0, 1);
            }
            self.drain(sink);
        }
        // Recycle the staging allocation.
        self.strict = strict;
    }

    /// Channel-grouped strict phase: instead of sorting the staged events
    /// into one global timestamp order and paying a hash, an eviction
    /// sweep, and a full queue drain *per event*, deliver each strict
    /// channel's whole run through
    /// [`rumor_core::MultiOp::process_batch_keyed`] — lower ports first,
    /// so state-writing arrivals land before the guarded probes that read
    /// them (every strict consumer opted in via
    /// [`rumor_core::MultiOp::port_batch_safe`]). The collected emissions
    /// are stably sorted by timestamp, which reproduces the per-event
    /// engine's emission sequence (the `process_batch_keyed` contract),
    /// and cascaded through one queue drain; downstream consumers are
    /// stateless (the hybrid gate forbids stateful cascades), so
    /// per-channel — and therefore per-query — order is preserved.
    fn drain_strict_grouped(&mut self, sink: &mut dyn QuerySink) {
        let mut runs = std::mem::take(&mut self.strict_runs);
        // Bucket staged events by channel, preserving staging order: the
        // stateless prefix is unary, so each strict channel materializes
        // at one drain level and its events are staged in strictly
        // increasing timestamp order (asserted below).
        for (ch, ct) in self.strict.drain(..) {
            match runs.iter_mut().find(|(c, _)| *c == ch) {
                Some((_, run)) => run.push(ct),
                None => runs.push((ch, vec![ct])),
            }
        }
        let mut emissions = std::mem::take(&mut self.strict_emit);
        debug_assert!(emissions.is_empty());
        for pass in 0..=self.max_strict_port {
            for (ch, run) in &runs {
                if run.is_empty() {
                    continue;
                }
                debug_assert!(
                    run.windows(2).all(|w| w[0].tuple.ts < w[1].tuple.ts),
                    "strict channel run must be strictly timestamp-ordered"
                );
                for &(idx, port) in &self.strict_consumers[ch.index()] {
                    if port.index() != pass {
                        continue;
                    }
                    let before = emissions.len();
                    let t0 = self.op_counters[idx].sample_start();
                    let mut emit = CollectEmit {
                        out: &mut emissions,
                    };
                    self.ops[idx].process_batch_keyed(port, run, &mut emit);
                    self.op_counters[idx]
                        .record_batch(run.len() as u64, (emissions.len() - before) as u64);
                    self.op_counters[idx].record_time(t0, run.len() as u64);
                }
            }
        }
        // Recycle the per-channel buffers (entries persist so channel
        // lookup and capacity amortize across chunks).
        for (_, run) in &mut runs {
            run.clear();
        }
        self.strict_runs = runs;
        emissions.sort_by_key(|(_, ct)| ct.tuple.ts);
        self.pending.extend(emissions.drain(..));
        self.strict_emit = emissions;
        self.drain(sink);
    }

    /// Query-tap delivery for one run (identical per-query ordering to the
    /// per-event drain).
    fn deliver_taps(
        &self,
        ch: ChannelId,
        run: &[ChannelTuple],
        detailed: bool,
        sink: &mut dyn QuerySink,
    ) {
        if detailed {
            let taps = &self.query_taps[ch.index()];
            if taps.is_empty() {
                return;
            }
            for ct in run {
                for (pos, queries) in taps {
                    if ct.belongs_to(*pos) {
                        for &q in queries {
                            sink.on_result(q, &ct.tuple);
                        }
                    }
                }
            }
        } else if let Some((mask, uniform)) = &self.tap_masks[ch.index()] {
            for ct in run {
                let hits = ct.membership.intersect(mask);
                if !hits.is_empty() {
                    let n = match uniform {
                        Some(per_pos) => hits.len() as u64 * per_pos,
                        None => self.query_taps[ch.index()]
                            .iter()
                            .filter(|(p, _)| hits.contains(*p))
                            .map(|(_, qs)| qs.len() as u64)
                            .sum(),
                    };
                    sink.on_batch(n, &ct.tuple);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::{LogicalPlan, Optimizer, OptimizerConfig, SeqSpec};
    use rumor_expr::{CmpOp, Expr, Predicate};
    use rumor_types::Schema;

    fn feed_interleaved(
        exec: &mut ExecutablePlan,
        s: SourceId,
        t: SourceId,
        n: u64,
        sink: &mut impl QuerySink,
    ) {
        // S gets even timestamps, T odd — the paper's §5.1 interleaving.
        for ts in 0..n {
            let src = if ts % 2 == 0 { s } else { t };
            exec.push(src, Tuple::ints(ts, &[(ts % 5) as i64, ts as i64]), sink)
                .unwrap();
        }
    }

    #[test]
    fn selection_query_end_to_end() {
        let mut plan = PlanGraph::new();
        let s = plan.add_source("S", Schema::ints(2), None).unwrap();
        let q = plan
            .add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 3i64)))
            .unwrap();
        let mut exec = ExecutablePlan::new(&plan).unwrap();
        let mut sink = CollectingSink::default();
        for ts in 0..10u64 {
            exec.push(s, Tuple::ints(ts, &[(ts % 5) as i64, 0]), &mut sink)
                .unwrap();
        }
        // a0 == 3 at ts 3 and 8.
        let got = sink.of(q);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].ts, 3);
        assert_eq!(got[1].ts, 8);
        assert_eq!(exec.events_in, 10);
    }

    #[test]
    fn optimized_and_naive_plans_agree() {
        // Two identical queries + one different; the optimized plan must
        // produce exactly the same per-query results.
        let build = || {
            let mut plan = PlanGraph::new();
            plan.add_source("S", Schema::ints(2), None).unwrap();
            plan.add_source("T", Schema::ints(2), None).unwrap();
            let mk = |c: i64| {
                LogicalPlan::source("S")
                    .select(Predicate::attr_eq_const(0, c))
                    .followed_by(
                        LogicalPlan::source("T"),
                        SeqSpec {
                            predicate: Predicate::cmp(CmpOp::Eq, Expr::col(1), Expr::rcol(1)),
                            window: 6,
                        },
                    )
            };
            let qs: Vec<QueryId> = (0..3)
                .map(|i| plan.add_query(&mk(i % 2)).unwrap())
                .collect();
            (plan, qs)
        };

        let (naive_plan, qs) = build();
        let (mut opt_plan, qs2) = build();
        assert_eq!(qs, qs2);
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut opt_plan)
            .unwrap();
        assert!(opt_plan.mop_count() < naive_plan.mop_count());

        let run = |plan: &PlanGraph| {
            let mut exec = ExecutablePlan::new(plan).unwrap();
            let mut sink = CollectingSink::default();
            let s = plan.source_by_name("S").unwrap().id;
            let t = plan.source_by_name("T").unwrap().id;
            feed_interleaved(&mut exec, s, t, 60, &mut sink);
            let mut per_query: Vec<Vec<String>> = Vec::new();
            for &q in &qs {
                let mut v: Vec<String> = sink.of(q).iter().map(|t| t.to_string()).collect();
                v.sort();
                per_query.push(v);
            }
            per_query
        };
        assert_eq!(run(&naive_plan), run(&opt_plan));
    }

    #[test]
    fn counting_sink_counts() {
        let mut sink = CountingSink::default();
        sink.on_result(QueryId(0), &Tuple::ints(0, &[1]));
        sink.on_result(QueryId(0), &Tuple::ints(1, &[1]));
        sink.on_result(QueryId(1), &Tuple::ints(1, &[1]));
        assert_eq!(sink.count(QueryId(0)), 2);
        assert_eq!(sink.count(QueryId(1)), 1);
        assert_eq!(sink.count(QueryId(9)), 0);
        assert_eq!(sink.total, 3);
    }

    #[test]
    fn push_batch_matches_push_on_stateless_plan() {
        // Shared selections: stateless, so the run-batched drain engages.
        let build = || {
            let mut plan = PlanGraph::new();
            plan.add_source("S", Schema::ints(2), None).unwrap();
            let qs: Vec<QueryId> = (0..6)
                .map(|c| {
                    plan.add_query(
                        &LogicalPlan::source("S").select(Predicate::attr_eq_const(0, c % 4)),
                    )
                    .unwrap()
                })
                .collect();
            Optimizer::new(OptimizerConfig::default())
                .optimize(&mut plan)
                .unwrap();
            (plan, qs)
        };
        let (plan, qs) = build();
        let s = plan.source_by_name("S").unwrap().id;
        let events: Vec<(SourceId, Tuple)> = (0..200u64)
            .map(|ts| (s, Tuple::ints(ts, &[(ts % 7) as i64, ts as i64])))
            .collect();

        let mut exec_a = ExecutablePlan::new(&plan).unwrap();
        assert!(exec_a.is_batch_safe());
        let mut a = CollectingSink::default();
        for (src, t) in &events {
            exec_a.push(*src, t.clone(), &mut a).unwrap();
        }

        let mut exec_b = ExecutablePlan::new(&plan).unwrap();
        let mut b = CollectingSink::default();
        exec_b.push_batch(&events, &mut b).unwrap();

        assert_eq!(exec_a.events_in, exec_b.events_in);
        for &q in &qs {
            assert_eq!(a.of(q), b.of(q), "query {q} diverged under push_batch");
        }

        // Counting delivery agrees too.
        let mut exec_c = ExecutablePlan::new(&plan).unwrap();
        let mut c = CountingSink::default();
        exec_c.push_batch(&events, &mut c).unwrap();
        assert_eq!(c.total, a.results.len() as u64);
    }

    #[test]
    fn push_batch_falls_back_on_stateful_plan() {
        // A sequence query makes the plan stateful: push_batch must take
        // the strict per-event path and still match push exactly.
        let build = || {
            let mut plan = PlanGraph::new();
            plan.add_source("S", Schema::ints(2), None).unwrap();
            plan.add_source("T", Schema::ints(2), None).unwrap();
            let q = plan
                .add_query(
                    &LogicalPlan::source("S")
                        .select(Predicate::attr_eq_const(0, 1i64))
                        .followed_by(
                            LogicalPlan::source("T"),
                            SeqSpec {
                                predicate: Predicate::cmp(CmpOp::Eq, Expr::col(1), Expr::rcol(1)),
                                window: 8,
                            },
                        ),
                )
                .unwrap();
            Optimizer::new(OptimizerConfig::default())
                .optimize(&mut plan)
                .unwrap();
            (plan, q)
        };
        let (plan, q) = build();
        let s = plan.source_by_name("S").unwrap().id;
        let t = plan.source_by_name("T").unwrap().id;
        let events: Vec<(SourceId, Tuple)> = (0..120u64)
            .map(|ts| {
                let src = if ts % 2 == 0 { s } else { t };
                (
                    src,
                    Tuple::ints(ts, &[(ts % 3) as i64, ((ts / 2) % 4) as i64]),
                )
            })
            .collect();

        let mut exec_a = ExecutablePlan::new(&plan).unwrap();
        assert!(!exec_a.is_batch_safe());
        let mut a = CollectingSink::default();
        for (src, tu) in &events {
            exec_a.push(*src, tu.clone(), &mut a).unwrap();
        }
        let mut exec_b = ExecutablePlan::new(&plan).unwrap();
        let mut b = CollectingSink::default();
        exec_b.push_batch(&events, &mut b).unwrap();
        assert!(!a.of(q).is_empty(), "workload must produce matches");
        assert_eq!(a.of(q), b.of(q));
    }

    #[test]
    fn push_batch_equal_timestamps_take_per_event_fallback_and_match_push() {
        // Equal timestamps void the hybrid drain's exactness proof, so any
        // chunk containing a tie must run strictly per-event — and still
        // match push exactly, including per-query result order.
        let build = || {
            let mut plan = PlanGraph::new();
            plan.add_source("S", Schema::ints(2), None).unwrap();
            plan.add_source("T", Schema::ints(2), None).unwrap();
            let q = plan
                .add_query(
                    &LogicalPlan::source("S")
                        .select(Predicate::attr_eq_const(0, 1i64))
                        .followed_by(
                            LogicalPlan::source("T"),
                            SeqSpec {
                                predicate: Predicate::cmp(CmpOp::Eq, Expr::col(1), Expr::rcol(1)),
                                window: 9,
                            },
                        ),
                )
                .unwrap();
            Optimizer::new(OptimizerConfig::default())
                .optimize(&mut plan)
                .unwrap();
            (plan, q)
        };
        let (plan, q) = build();
        let s = plan.source_by_name("S").unwrap().id;
        let t = plan.source_by_name("T").unwrap().id;
        // Every timestamp occurs twice (once per source): all-tied input.
        let events: Vec<(SourceId, Tuple)> = (0..160u64)
            .map(|i| {
                let src = if i % 2 == 0 { s } else { t };
                (
                    src,
                    Tuple::ints(i / 2, &[(i % 3) as i64, ((i / 2) % 4) as i64]),
                )
            })
            .collect();

        let mut exec_a = ExecutablePlan::new(&plan).unwrap();
        assert!(exec_a.is_prefix_batch_safe());
        let mut a = CollectingSink::default();
        for (src, tu) in &events {
            exec_a.push(*src, tu.clone(), &mut a).unwrap();
        }
        let mut exec_b = ExecutablePlan::new(&plan).unwrap();
        let mut b = CollectingSink::default();
        exec_b.push_batch(&events, &mut b).unwrap();
        assert!(!a.of(q).is_empty(), "workload must produce matches");
        assert_eq!(a.of(q), b.of(q));
        assert_eq!(exec_a.events_in, exec_b.events_in);
    }

    #[test]
    fn hybrid_gate_engages_on_select_prefix_but_not_on_stateful_cascade() {
        // Select prefix feeding a sequence: stateless-prefix batching is
        // provably exact, so the hybrid drain engages.
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(2), None).unwrap();
        plan.add_source("T", Schema::ints(2), None).unwrap();
        plan.add_query(
            &LogicalPlan::source("S")
                .select(Predicate::attr_eq_const(0, 1i64))
                .followed_by(
                    LogicalPlan::source("T"),
                    SeqSpec {
                        predicate: Predicate::cmp(CmpOp::Eq, Expr::col(1), Expr::rcol(1)),
                        window: 8,
                    },
                ),
        )
        .unwrap();
        let exec = ExecutablePlan::new(&plan).unwrap();
        assert!(!exec.is_batch_safe());
        assert!(exec.is_prefix_batch_safe());

        // An aggregate feeding an iterate is a stateful cascade: the hybrid
        // cannot be proven exact, so push_batch stays strictly per-event.
        let mut plan = PlanGraph::new();
        plan.add_source("cpu", Schema::ints(2), None).unwrap();
        plan.add_query(
            &LogicalPlan::source("cpu")
                .aggregate(rumor_core::AggSpec {
                    func: rumor_core::AggFunc::Avg,
                    input: Expr::col(1),
                    group_by: vec![0],
                    window: 5,
                })
                .iterate(
                    LogicalPlan::source("cpu"),
                    rumor_core::IterSpec {
                        filter: Predicate::cmp(CmpOp::Ne, Expr::col(0), Expr::rcol(0)),
                        rebind: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                        rebind_map: rumor_expr::SchemaMap::new(vec![
                            rumor_expr::NamedExpr::new("a0", Expr::col(0)),
                            rumor_expr::NamedExpr::new("avg", Expr::col(1)),
                        ]),
                        window: 10,
                    },
                )
                // A trailing selection keeps a stateless op in the plan, so
                // the gate closes specifically because of the cascade.
                .select(Predicate::attr_eq_const(0, 7i64)),
        )
        .unwrap();
        let exec = ExecutablePlan::new(&plan).unwrap();
        assert!(!exec.is_batch_safe());
        assert!(!exec.is_prefix_batch_safe());
    }

    #[test]
    fn scoped_cone_pair_reproduces_full_push() {
        // A pinned stateful subgraph (unkeyed sequence) plus stateless
        // sibling queries on the same source: pushing each tuple once per
        // cone scope must reproduce the full push exactly — every source
        // consumer processed once, source-channel taps delivered once (by
        // the stateless leg).
        let mut plan = PlanGraph::new();
        let s = plan.add_source("S", Schema::ints(2), None).unwrap();
        let t = plan.add_source("T", Schema::ints(2), None).unwrap();
        let q_seq = plan
            .add_query(&LogicalPlan::source("S").followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: Predicate::cmp(CmpOp::Lt, Expr::col(1), Expr::rcol(1)),
                    window: 10,
                },
            ))
            .unwrap();
        let q_sel = plan
            .add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 1i64)))
            .unwrap();
        // A query tapping the source stream directly (no operator at all):
        // its results are source-channel taps, owned by the stateless leg.
        let q_tap = plan.add_query(&LogicalPlan::source("S")).unwrap();

        let events: Vec<(SourceId, Tuple)> = (0..60u64)
            .map(|ts| {
                let src = if ts % 2 == 0 { s } else { t };
                (src, Tuple::ints(ts, &[(ts % 3) as i64, (ts % 7) as i64]))
            })
            .collect();

        let mut full = ExecutablePlan::new(&plan).unwrap();
        let mut want = CollectingSink::default();
        for (src, tu) in &events {
            full.push(*src, tu.clone(), &mut want).unwrap();
        }

        let mut scoped = ExecutablePlan::new(&plan).unwrap();
        let mut got = CollectingSink::default();
        for (src, tu) in &events {
            scoped
                .push_cone(*src, tu.clone(), ConeScope::Stateless, &mut got)
                .unwrap();
            scoped
                .push_cone(*src, tu.clone(), ConeScope::Stateful, &mut got)
                .unwrap();
        }

        assert!(!want.of(q_seq).is_empty());
        assert!(!want.of(q_sel).is_empty());
        assert!(!want.of(q_tap).is_empty());
        for q in [q_seq, q_sel, q_tap] {
            assert_eq!(
                got.of(q),
                want.of(q),
                "query {q} diverged under scoped pushes"
            );
        }
        // ConeScope::Full is push() verbatim.
        let mut full2 = ExecutablePlan::new(&plan).unwrap();
        let mut full2_sink = CollectingSink::default();
        for (src, tu) in &events {
            full2
                .push_cone(*src, tu.clone(), ConeScope::Full, &mut full2_sink)
                .unwrap();
        }
        assert_eq!(full2_sink.results, want.results);
    }

    #[test]
    fn apply_delta_preserves_untouched_stateful_state() {
        // A windowed sequence query must keep matching across an
        // unrelated add and remove: its compiled operator instance (and
        // the AI-index state inside it) survives both hot swaps.
        let mut plan = PlanGraph::new();
        let s = plan.add_source("S", Schema::ints(2), None).unwrap();
        let t = plan.add_source("T", Schema::ints(2), None).unwrap();
        let seq_query = LogicalPlan::source("S")
            .select(Predicate::attr_eq_const(0, 1i64))
            .followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: Predicate::cmp(CmpOp::Eq, Expr::col(1), Expr::rcol(1)),
                    window: 40,
                },
            );
        let q_seq = plan.add_query(&seq_query).unwrap();
        let q_sel = plan
            .add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 2i64)))
            .unwrap();
        let optimizer = Optimizer::new(OptimizerConfig::default());
        optimizer.optimize(&mut plan).unwrap();
        let original = plan.clone();

        let events: Vec<(SourceId, Tuple)> = (0..150u64)
            .map(|ts| {
                let src = if ts % 2 == 0 { s } else { t };
                (
                    src,
                    Tuple::ints(ts, &[(ts % 3) as i64, ((ts / 2) % 4) as i64]),
                )
            })
            .collect();

        let mut exec = ExecutablePlan::new(&plan).unwrap();
        let mut live = CollectingSink::default();
        for (src, tu) in &events[..50] {
            exec.push(*src, tu.clone(), &mut live).unwrap();
        }
        // Unrelated add: a new selection integrates into the live plan.
        let added = optimizer
            .integrate(
                &mut plan,
                &LogicalPlan::source("S").select(Predicate::attr_eq_const(1, 3i64)),
            )
            .unwrap();
        exec.apply_delta(&plan).unwrap();
        for (src, tu) in &events[50..100] {
            exec.push(*src, tu.clone(), &mut live).unwrap();
        }
        // ...and unrelated remove.
        plan.remove_query(added.query).unwrap();
        exec.apply_delta(&plan).unwrap();
        for (src, tu) in &events[100..] {
            exec.push(*src, tu.clone(), &mut live).unwrap();
        }

        // Oracle: the original plan fed the whole history in one life.
        let mut oracle_exec = ExecutablePlan::new(&original).unwrap();
        let mut oracle = CollectingSink::default();
        for (src, tu) in &events {
            oracle_exec.push(*src, tu.clone(), &mut oracle).unwrap();
        }
        assert!(!oracle.of(q_seq).is_empty(), "sequence must match");
        // The sequence query's results span both swap boundaries: pairs
        // whose S-instance arrived before a swap and whose T-event arrived
        // after it only exist if the operator state survived.
        assert!(
            oracle
                .of(q_seq)
                .iter()
                .any(|tu| (50..100).contains(&tu.ts) || tu.ts >= 100),
            "window must span the swaps for the test to mean anything"
        );
        assert_eq!(live.of(q_seq), oracle.of(q_seq));
        assert_eq!(live.of(q_sel), oracle.of(q_sel));
        // The added query saw exactly its lifetime's events.
        let added_results: Vec<&Tuple> = live.of(added.query);
        assert!(added_results.iter().all(|tu| tu.ts >= 50 && tu.ts < 100));
        assert!(!added_results.is_empty());
    }

    #[test]
    fn unknown_source_rejected() {
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(1), None).unwrap();
        let mut exec = ExecutablePlan::new(&plan).unwrap();
        let mut sink = DiscardSink;
        assert!(exec
            .push(SourceId(9), Tuple::ints(0, &[1]), &mut sink)
            .is_err());
    }

    #[test]
    fn push_batch_unknown_source_processes_valid_prefix_and_leaks_nothing() {
        let mut plan = PlanGraph::new();
        let s = plan.add_source("S", Schema::ints(1), None).unwrap();
        let q = plan
            .add_query(&LogicalPlan::source("S").select(Predicate::True))
            .unwrap();
        let mut exec = ExecutablePlan::new(&plan).unwrap();
        assert!(exec.is_batch_safe());
        let mut sink = CollectingSink::default();
        let events = vec![
            (s, Tuple::ints(0, &[1])),
            (SourceId(9), Tuple::ints(1, &[2])),
            (s, Tuple::ints(2, &[3])),
        ];
        assert!(exec.push_batch(&events, &mut sink).is_err());
        // The valid prefix was fully processed (matching `push` semantics)...
        assert_eq!(sink.of(q).len(), 1);
        assert_eq!(exec.events_in, 1);
        // ...and nothing from the failed call leaks into the next one.
        let mut sink2 = CollectingSink::default();
        exec.push_batch(&[(s, Tuple::ints(3, &[4]))], &mut sink2)
            .unwrap();
        assert_eq!(sink2.of(q).len(), 1);
        assert_eq!(sink2.of(q)[0].ts, 3);
        assert_eq!(exec.events_in, 2);
    }

    #[test]
    fn stats_report_tracks_per_event_dispatch() {
        let mut plan = PlanGraph::new();
        let s = plan.add_source("S", Schema::ints(1), None).unwrap();
        plan.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 0i64)))
            .unwrap();
        let mut exec = ExecutablePlan::new(&plan).unwrap();
        let mut sink = CountingSink::default();
        for ts in 0..10u64 {
            exec.push(s, Tuple::ints(ts, &[(ts % 2) as i64]), &mut sink)
                .unwrap();
        }
        let report = exec.stats_report();
        assert_eq!(report.ops.len(), 1);
        assert_eq!(report.gates.len(), 1);
        if crate::stats::STATS_COMPILED {
            let op = &report.ops[0];
            assert_eq!(op.events_in, 10);
            assert_eq!(op.event_calls, 10);
            assert_eq!(op.events_out, 5, "half the tuples pass a0 = 0");
            assert_eq!(op.batch_calls, 0);
            assert!((op.selectivity() - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn stats_report_tracks_batched_dispatch_and_state() {
        // A stateless select batch-drains; a sequence keeps state the
        // report samples.
        let mut plan = PlanGraph::new();
        let s = plan.add_source("S", Schema::ints(2), None).unwrap();
        let t = plan.add_source("T", Schema::ints(2), None).unwrap();
        plan.add_query(&LogicalPlan::source("S").followed_by(
            LogicalPlan::source("T"),
            SeqSpec {
                predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                window: 100,
            },
        ))
        .unwrap();
        let mut exec = ExecutablePlan::new(&plan).unwrap();
        let mut sink = CountingSink::default();
        let events: Vec<(SourceId, Tuple)> = (0..20u64)
            .map(|ts| {
                let src = if ts % 2 == 0 { s } else { t };
                (src, Tuple::ints(ts, &[(ts % 3) as i64, ts as i64]))
            })
            .collect();
        exec.push_batch(&events, &mut sink).unwrap();
        let report = exec.stats_report();
        if crate::stats::STATS_COMPILED {
            let total_in: u64 = report.ops.iter().map(|o| o.events_in).sum();
            assert!(total_in >= 20, "every event reaches at least one op");
            let seq = report
                .ops
                .iter()
                .find(|o| o.state_size > 0)
                .expect("the sequence op holds live instances");
            assert!(seq.events_in > 0);
        }
    }

    #[test]
    fn stats_counters_survive_hot_swap() {
        let mut plan = PlanGraph::new();
        let s = plan.add_source("S", Schema::ints(1), None).unwrap();
        plan.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 0i64)))
            .unwrap();
        let mut exec = ExecutablePlan::new(&plan).unwrap();
        let mut sink = CountingSink::default();
        for ts in 0..6u64 {
            exec.push(s, Tuple::ints(ts, &[0i64]), &mut sink).unwrap();
        }
        let before = exec.stats_report();
        // Add a second query: the surviving select keeps its counters.
        plan.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 1i64)))
            .unwrap();
        exec.apply_delta(&plan).unwrap();
        let after = exec.stats_report();
        if crate::stats::STATS_COMPILED {
            let surviving = after
                .ops
                .iter()
                .find(|o| o.mop == before.ops[0].mop)
                .expect("original op survives the swap");
            assert_eq!(surviving.events_in, before.ops[0].events_in);
        }
        assert_eq!(exec.events_in, 6);
    }
}
