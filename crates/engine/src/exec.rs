//! The push-based executor.
//!
//! The engine mirrors the paper's prototype: a single-threaded, push-based
//! interpreter that feeds externally-arriving tuples (in global timestamp
//! order) through the optimized m-op DAG. M-ops are "the basic scheduling
//! and execution units in the engine" (§2.1); routing between them is by
//! channel.

use std::collections::{HashMap, VecDeque};

use rumor_core::{ChannelTuple, Emit, MopContext, PlanGraph};
use rumor_ops::instantiate;
use rumor_types::{
    ChannelId, Membership, MopId, PortId, QueryId, Result, RumorError, SourceId, Tuple,
};

/// Receives query results during execution.
pub trait QuerySink {
    /// Called once per (query, result tuple).
    fn on_result(&mut self, query: QueryId, tuple: &Tuple);

    /// Whether the sink needs the per-query [`QuerySink::on_result`] calls.
    /// Counting sinks return `false` and receive [`QuerySink::on_batch`]
    /// instead, letting the engine deliver one *channel tuple* shared by
    /// many queries in O(1) — the channel delivery granularity the paper's
    /// throughput numbers assume (one output event per channel tuple, not
    /// one per query).
    fn wants_tuples(&self) -> bool {
        true
    }

    /// Batch notification: `n` query results materialized by one channel
    /// tuple. Only called when [`QuerySink::wants_tuples`] is `false`.
    fn on_batch(&mut self, n: u64, _tuple: &Tuple) {
        let _ = n;
    }
}

/// Discards results (throughput measurements).
#[derive(Debug, Default)]
pub struct DiscardSink;

impl QuerySink for DiscardSink {
    fn on_result(&mut self, _query: QueryId, _tuple: &Tuple) {}

    fn wants_tuples(&self) -> bool {
        false
    }
}

/// Counts results per query.
///
/// Query ids are dense plan indices, so the per-query counters live in a
/// plain `Vec` indexed by [`QueryId`] — this sink sits on the result hot
/// path of every throughput run, and the previous `HashMap` paid a hash
/// per result.
#[derive(Debug, Default)]
pub struct CountingSink {
    counts: Vec<u64>,
    /// Total results across queries.
    pub total: u64,
}

impl CountingSink {
    /// Result count for one query.
    pub fn count(&self, query: QueryId) -> u64 {
        self.counts.get(query.index()).copied().unwrap_or(0)
    }
}

impl QuerySink for CountingSink {
    fn on_result(&mut self, query: QueryId, _tuple: &Tuple) {
        let i = query.index();
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
        self.total += 1;
    }

    fn wants_tuples(&self) -> bool {
        false
    }

    fn on_batch(&mut self, n: u64, _tuple: &Tuple) {
        self.total += n;
    }
}

/// Collects `(query, tuple)` pairs — integration tests compare these.
#[derive(Debug, Default)]
pub struct CollectingSink {
    /// Results in arrival order.
    pub results: Vec<(QueryId, Tuple)>,
}

impl CollectingSink {
    /// The results of one query, in order.
    pub fn of(&self, query: QueryId) -> Vec<&Tuple> {
        self.results
            .iter()
            .filter(|(q, _)| *q == query)
            .map(|(_, t)| t)
            .collect()
    }
}

impl QuerySink for CollectingSink {
    fn on_result(&mut self, query: QueryId, tuple: &Tuple) {
        self.results.push((query, tuple.clone()));
    }
}

/// Source events per internal drain wave of
/// [`ExecutablePlan::push_batch`]: large enough to amortize routing and
/// dispatch over long channel runs, small enough that a wave's level
/// buffers stay in cache.
const BATCH_CHUNK: usize = 1024;

/// An emitted event waiting to be routed.
type Pending = VecDeque<(ChannelId, ChannelTuple)>;

struct QueueEmit<'a> {
    pending: &'a mut Pending,
}

impl Emit for QueueEmit<'_> {
    fn emit(&mut self, channel: ChannelId, tuple: Tuple, membership: Membership) {
        self.pending
            .push_back((channel, ChannelTuple::new(tuple, membership)));
    }
}

/// One side of the batched drain's double buffer: parallel channel/tuple
/// vectors, so a run of same-channel events forms a contiguous
/// `&[ChannelTuple]` slice for [`rumor_core::MultiOp::process_batch`].
#[derive(Debug, Default)]
struct EventBuf {
    chans: Vec<ChannelId>,
    tuples: Vec<ChannelTuple>,
}

impl EventBuf {
    fn push(&mut self, channel: ChannelId, tuple: ChannelTuple) {
        self.chans.push(channel);
        self.tuples.push(tuple);
    }

    fn clear(&mut self) {
        self.chans.clear();
        self.tuples.clear();
    }

    fn is_empty(&self) -> bool {
        self.chans.is_empty()
    }
}

/// Emit adapter appending into the *next* level's [`EventBuf`].
struct BufEmit<'a> {
    buf: &'a mut EventBuf,
}

impl Emit for BufEmit<'_> {
    fn emit(&mut self, channel: ChannelId, tuple: Tuple, membership: Membership) {
        self.buf.push(channel, ChannelTuple::new(tuple, membership));
    }
}

/// The compiled, executable form of a plan.
pub struct ExecutablePlan {
    ops: Vec<Box<dyn rumor_core::MultiOp>>,
    /// Parallel to `ops`: the plan node each op implements (diagnostics).
    op_ids: Vec<MopId>,
    /// channel index → (exec index, port) consumers, in topological order.
    consumers: Vec<Vec<(usize, PortId)>>,
    /// channel index → [(position, queries listening on that stream)].
    query_taps: Vec<Vec<(usize, Vec<QueryId>)>>,
    /// channel index → (positions-with-queries mask, queries per position if
    /// uniform) — the O(1) batch-delivery fast path for counting sinks.
    tap_masks: Vec<Option<(Membership, Option<u64>)>>,
    /// source index → its base stream's channel.
    source_channels: Vec<ChannelId>,
    pending: Pending,
    /// Every compiled op is stateless, so [`ExecutablePlan::push_batch`]
    /// may run the channel-batched drain (see [`rumor_core::MultiOp::is_stateless`]).
    batch_safe: bool,
    /// Double buffers of the batched drain, reused across calls.
    cur: EventBuf,
    nxt: EventBuf,
    /// Total tuples pushed.
    pub events_in: u64,
}

impl ExecutablePlan {
    /// Compiles a plan: instantiates every m-op and builds routing tables.
    pub fn new(plan: &PlanGraph) -> Result<Self> {
        let order = plan.topo_order()?;
        let mut topo_rank: HashMap<MopId, usize> = HashMap::new();
        for (rank, &id) in order.iter().enumerate() {
            topo_rank.insert(id, rank);
        }
        let mut ops = Vec::with_capacity(order.len());
        let mut op_ids = Vec::with_capacity(order.len());
        let mut exec_index: HashMap<MopId, usize> = HashMap::new();
        for &id in &order {
            let ctx = MopContext::build(plan, id)?;
            exec_index.insert(id, ops.len());
            op_ids.push(id);
            ops.push(instantiate(&ctx)?);
        }

        // Channel consumer lists: an m-op consumes channel `c` on port `p`
        // iff its node lists `c` at that port.
        let mut consumers: Vec<Vec<(usize, PortId)>> = vec![Vec::new(); plan.channel_slots()];
        for &id in &order {
            let node = plan.mop(id);
            for (p, &ch) in node.inputs.iter().enumerate() {
                consumers[ch.index()].push((exec_index[&id], PortId(p as u8)));
            }
        }
        for list in &mut consumers {
            list.sort_by_key(|&(idx, port)| (idx, port));
            list.dedup();
        }

        // Query taps: (channel, position) → queries.
        let mut query_taps: Vec<Vec<(usize, Vec<QueryId>)>> =
            vec![Vec::new(); plan.channel_slots()];
        for &(q, stream) in plan.query_outputs() {
            let ch = plan.channel_of(stream);
            let pos = plan.position_in_channel(stream);
            let taps = &mut query_taps[ch.index()];
            match taps.iter_mut().find(|(p, _)| *p == pos) {
                Some((_, qs)) => qs.push(q),
                None => taps.push((pos, vec![q])),
            }
        }

        let source_channels = plan
            .sources()
            .iter()
            .map(|s| plan.channel_of(s.stream))
            .collect();

        let tap_masks = query_taps
            .iter()
            .map(|taps| {
                if taps.is_empty() {
                    return None;
                }
                let mask = Membership::from_indices(taps.iter().map(|(p, _)| *p));
                let first = taps[0].1.len() as u64;
                let uniform = taps
                    .iter()
                    .all(|(_, qs)| qs.len() as u64 == first)
                    .then_some(first);
                Some((mask, uniform))
            })
            .collect();

        let batch_safe = ops.iter().all(|op| op.is_stateless());
        Ok(ExecutablePlan {
            ops,
            op_ids,
            consumers,
            query_taps,
            tap_masks,
            source_channels,
            pending: VecDeque::new(),
            batch_safe,
            cur: EventBuf::default(),
            nxt: EventBuf::default(),
            events_in: 0,
        })
    }

    /// Number of compiled m-ops.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Names of the compiled implementations in topological order.
    pub fn op_names(&self) -> Vec<(MopId, &'static str)> {
        self.op_ids
            .iter()
            .zip(&self.ops)
            .map(|(&id, op)| (id, op.name()))
            .collect()
    }

    /// Pushes one channel tuple on a channel source (Workload 3's input
    /// shape): the membership says which of the source's streams the tuple
    /// belongs to.
    pub fn push_channel(
        &mut self,
        source: SourceId,
        tuple: Tuple,
        membership: Membership,
        sink: &mut dyn QuerySink,
    ) -> Result<()> {
        let channel = *self
            .source_channels
            .get(source.index())
            .ok_or_else(|| RumorError::exec(format!("unknown source {source}")))?;
        self.events_in += 1;
        self.pending
            .push_back((channel, ChannelTuple::new(tuple, membership)));
        self.drain(sink);
        Ok(())
    }

    fn drain(&mut self, sink: &mut dyn QuerySink) {
        let detailed = sink.wants_tuples();
        while let Some((ch, ct)) = self.pending.pop_front() {
            // Query taps first: results are observable even when further
            // operators also consume the stream.
            if detailed {
                for (pos, queries) in &self.query_taps[ch.index()] {
                    if ct.belongs_to(*pos) {
                        for &q in queries {
                            sink.on_result(q, &ct.tuple);
                        }
                    }
                }
            } else if let Some((mask, uniform)) = &self.tap_masks[ch.index()] {
                // Channel-granularity delivery: one intersection instead of
                // a per-query fan-out.
                let hits = ct.membership.intersect(mask);
                if !hits.is_empty() {
                    let n = match uniform {
                        Some(per_pos) => hits.len() as u64 * per_pos,
                        None => self.query_taps[ch.index()]
                            .iter()
                            .filter(|(p, _)| hits.contains(*p))
                            .map(|(_, qs)| qs.len() as u64)
                            .sum(),
                    };
                    sink.on_batch(n, &ct.tuple);
                }
            }
            for &(idx, port) in &self.consumers[ch.index()] {
                let mut emit = QueueEmit {
                    pending: &mut self.pending,
                };
                self.ops[idx].process(port, &ct, &mut emit);
            }
        }
    }

    /// Pushes one source tuple through the plan, draining all downstream
    /// work before returning. Tuples must arrive in global timestamp order.
    pub fn push(&mut self, source: SourceId, tuple: Tuple, sink: &mut dyn QuerySink) -> Result<()> {
        let channel = *self
            .source_channels
            .get(source.index())
            .ok_or_else(|| RumorError::exec(format!("unknown source {source}")))?;
        self.events_in += 1;
        self.pending.push_back((channel, ChannelTuple::solo(tuple)));
        self.drain(sink);
        Ok(())
    }

    /// Whether this plan qualifies for the channel-batched fast path (all
    /// compiled m-ops are stateless).
    pub fn is_batch_safe(&self) -> bool {
        self.batch_safe
    }

    /// Pushes a timestamp-ordered slice of source events through the plan.
    ///
    /// Per-query results are identical to pushing the events one at a time
    /// with [`ExecutablePlan::push`]. On stateless plans (see
    /// [`ExecutablePlan::is_batch_safe`]) events are routed at *run*
    /// granularity: consecutive same-channel events form one
    /// [`rumor_core::MultiOp::process_batch`] call per consumer, amortizing
    /// routing, dispatch, and queue bookkeeping over the run. Stateful
    /// plans fall back to the per-event drain, which preserves strict
    /// global timestamp order (windowed operators rely on it).
    pub fn push_batch(
        &mut self,
        events: &[(SourceId, Tuple)],
        sink: &mut dyn QuerySink,
    ) -> Result<()> {
        if !self.batch_safe {
            for (source, tuple) in events {
                self.push(*source, tuple.clone(), sink)?;
            }
            return Ok(());
        }
        // Drain in bounded chunks so the level buffers stay cache-resident:
        // one wave over the whole input would materialize every derived
        // level in full, trading the per-event queue overhead for memory
        // traffic.
        for chunk in events.chunks(BATCH_CHUNK) {
            // On an unknown source, match `push`: the valid prefix is
            // fully processed (drained, counted) before the error — no
            // staged events may leak into a later call.
            let mut bad_source = None;
            for (source, tuple) in chunk {
                match self.source_channels.get(source.index()) {
                    Some(&channel) => {
                        self.cur.push(channel, ChannelTuple::solo(tuple.clone()));
                        self.events_in += 1;
                    }
                    None => {
                        bad_source = Some(*source);
                        break;
                    }
                }
            }
            self.drain_batched(sink);
            if let Some(source) = bad_source {
                return Err(RumorError::exec(format!("unknown source {source}")));
            }
        }
        Ok(())
    }

    /// Level-order batched drain: consumes the whole current buffer (runs
    /// of consecutive same-channel events feed each consumer through one
    /// `process_batch` call), with all emissions collected into the next
    /// buffer; then the buffers swap. Per-channel event order is preserved,
    /// which is all stateless consumers and query delivery observe.
    fn drain_batched(&mut self, sink: &mut dyn QuerySink) {
        let detailed = sink.wants_tuples();
        while !self.cur.is_empty() {
            // Split the borrow: the ops read `cur` while emitting into
            // `nxt` through the adapter.
            let cur = std::mem::take(&mut self.cur);
            let mut i = 0;
            while i < cur.chans.len() {
                let ch = cur.chans[i];
                let mut j = i + 1;
                while j < cur.chans.len() && cur.chans[j] == ch {
                    j += 1;
                }
                let run = &cur.tuples[i..j];
                self.deliver_taps(ch, run, detailed, sink);
                for &(idx, port) in &self.consumers[ch.index()] {
                    let mut emit = BufEmit { buf: &mut self.nxt };
                    self.ops[idx].process_batch(port, run, &mut emit);
                }
                i = j;
            }
            // Recycle the consumed buffer's allocation, then promote the
            // freshly emitted level.
            self.cur = cur;
            self.cur.clear();
            std::mem::swap(&mut self.cur, &mut self.nxt);
        }
    }

    /// Query-tap delivery for one run (identical per-query ordering to the
    /// per-event drain).
    fn deliver_taps(
        &self,
        ch: ChannelId,
        run: &[ChannelTuple],
        detailed: bool,
        sink: &mut dyn QuerySink,
    ) {
        if detailed {
            let taps = &self.query_taps[ch.index()];
            if taps.is_empty() {
                return;
            }
            for ct in run {
                for (pos, queries) in taps {
                    if ct.belongs_to(*pos) {
                        for &q in queries {
                            sink.on_result(q, &ct.tuple);
                        }
                    }
                }
            }
        } else if let Some((mask, uniform)) = &self.tap_masks[ch.index()] {
            for ct in run {
                let hits = ct.membership.intersect(mask);
                if !hits.is_empty() {
                    let n = match uniform {
                        Some(per_pos) => hits.len() as u64 * per_pos,
                        None => self.query_taps[ch.index()]
                            .iter()
                            .filter(|(p, _)| hits.contains(*p))
                            .map(|(_, qs)| qs.len() as u64)
                            .sum(),
                    };
                    sink.on_batch(n, &ct.tuple);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::{LogicalPlan, Optimizer, OptimizerConfig, SeqSpec};
    use rumor_expr::{CmpOp, Expr, Predicate};
    use rumor_types::Schema;

    fn feed_interleaved(
        exec: &mut ExecutablePlan,
        s: SourceId,
        t: SourceId,
        n: u64,
        sink: &mut impl QuerySink,
    ) {
        // S gets even timestamps, T odd — the paper's §5.1 interleaving.
        for ts in 0..n {
            let src = if ts % 2 == 0 { s } else { t };
            exec.push(src, Tuple::ints(ts, &[(ts % 5) as i64, ts as i64]), sink)
                .unwrap();
        }
    }

    #[test]
    fn selection_query_end_to_end() {
        let mut plan = PlanGraph::new();
        let s = plan.add_source("S", Schema::ints(2), None).unwrap();
        let q = plan
            .add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 3i64)))
            .unwrap();
        let mut exec = ExecutablePlan::new(&plan).unwrap();
        let mut sink = CollectingSink::default();
        for ts in 0..10u64 {
            exec.push(s, Tuple::ints(ts, &[(ts % 5) as i64, 0]), &mut sink)
                .unwrap();
        }
        // a0 == 3 at ts 3 and 8.
        let got = sink.of(q);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].ts, 3);
        assert_eq!(got[1].ts, 8);
        assert_eq!(exec.events_in, 10);
    }

    #[test]
    fn optimized_and_naive_plans_agree() {
        // Two identical queries + one different; the optimized plan must
        // produce exactly the same per-query results.
        let build = || {
            let mut plan = PlanGraph::new();
            plan.add_source("S", Schema::ints(2), None).unwrap();
            plan.add_source("T", Schema::ints(2), None).unwrap();
            let mk = |c: i64| {
                LogicalPlan::source("S")
                    .select(Predicate::attr_eq_const(0, c))
                    .followed_by(
                        LogicalPlan::source("T"),
                        SeqSpec {
                            predicate: Predicate::cmp(CmpOp::Eq, Expr::col(1), Expr::rcol(1)),
                            window: 6,
                        },
                    )
            };
            let qs: Vec<QueryId> = (0..3)
                .map(|i| plan.add_query(&mk(i % 2)).unwrap())
                .collect();
            (plan, qs)
        };

        let (naive_plan, qs) = build();
        let (mut opt_plan, qs2) = build();
        assert_eq!(qs, qs2);
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut opt_plan)
            .unwrap();
        assert!(opt_plan.mop_count() < naive_plan.mop_count());

        let run = |plan: &PlanGraph| {
            let mut exec = ExecutablePlan::new(plan).unwrap();
            let mut sink = CollectingSink::default();
            let s = plan.source_by_name("S").unwrap().id;
            let t = plan.source_by_name("T").unwrap().id;
            feed_interleaved(&mut exec, s, t, 60, &mut sink);
            let mut per_query: Vec<Vec<String>> = Vec::new();
            for &q in &qs {
                let mut v: Vec<String> = sink.of(q).iter().map(|t| t.to_string()).collect();
                v.sort();
                per_query.push(v);
            }
            per_query
        };
        assert_eq!(run(&naive_plan), run(&opt_plan));
    }

    #[test]
    fn counting_sink_counts() {
        let mut sink = CountingSink::default();
        sink.on_result(QueryId(0), &Tuple::ints(0, &[1]));
        sink.on_result(QueryId(0), &Tuple::ints(1, &[1]));
        sink.on_result(QueryId(1), &Tuple::ints(1, &[1]));
        assert_eq!(sink.count(QueryId(0)), 2);
        assert_eq!(sink.count(QueryId(1)), 1);
        assert_eq!(sink.count(QueryId(9)), 0);
        assert_eq!(sink.total, 3);
    }

    #[test]
    fn push_batch_matches_push_on_stateless_plan() {
        // Shared selections: stateless, so the run-batched drain engages.
        let build = || {
            let mut plan = PlanGraph::new();
            plan.add_source("S", Schema::ints(2), None).unwrap();
            let qs: Vec<QueryId> = (0..6)
                .map(|c| {
                    plan.add_query(
                        &LogicalPlan::source("S").select(Predicate::attr_eq_const(0, c % 4)),
                    )
                    .unwrap()
                })
                .collect();
            Optimizer::new(OptimizerConfig::default())
                .optimize(&mut plan)
                .unwrap();
            (plan, qs)
        };
        let (plan, qs) = build();
        let s = plan.source_by_name("S").unwrap().id;
        let events: Vec<(SourceId, Tuple)> = (0..200u64)
            .map(|ts| (s, Tuple::ints(ts, &[(ts % 7) as i64, ts as i64])))
            .collect();

        let mut exec_a = ExecutablePlan::new(&plan).unwrap();
        assert!(exec_a.is_batch_safe());
        let mut a = CollectingSink::default();
        for (src, t) in &events {
            exec_a.push(*src, t.clone(), &mut a).unwrap();
        }

        let mut exec_b = ExecutablePlan::new(&plan).unwrap();
        let mut b = CollectingSink::default();
        exec_b.push_batch(&events, &mut b).unwrap();

        assert_eq!(exec_a.events_in, exec_b.events_in);
        for &q in &qs {
            assert_eq!(a.of(q), b.of(q), "query {q} diverged under push_batch");
        }

        // Counting delivery agrees too.
        let mut exec_c = ExecutablePlan::new(&plan).unwrap();
        let mut c = CountingSink::default();
        exec_c.push_batch(&events, &mut c).unwrap();
        assert_eq!(c.total, a.results.len() as u64);
    }

    #[test]
    fn push_batch_falls_back_on_stateful_plan() {
        // A sequence query makes the plan stateful: push_batch must take
        // the strict per-event path and still match push exactly.
        let build = || {
            let mut plan = PlanGraph::new();
            plan.add_source("S", Schema::ints(2), None).unwrap();
            plan.add_source("T", Schema::ints(2), None).unwrap();
            let q = plan
                .add_query(
                    &LogicalPlan::source("S")
                        .select(Predicate::attr_eq_const(0, 1i64))
                        .followed_by(
                            LogicalPlan::source("T"),
                            SeqSpec {
                                predicate: Predicate::cmp(CmpOp::Eq, Expr::col(1), Expr::rcol(1)),
                                window: 8,
                            },
                        ),
                )
                .unwrap();
            Optimizer::new(OptimizerConfig::default())
                .optimize(&mut plan)
                .unwrap();
            (plan, q)
        };
        let (plan, q) = build();
        let s = plan.source_by_name("S").unwrap().id;
        let t = plan.source_by_name("T").unwrap().id;
        let events: Vec<(SourceId, Tuple)> = (0..120u64)
            .map(|ts| {
                let src = if ts % 2 == 0 { s } else { t };
                (
                    src,
                    Tuple::ints(ts, &[(ts % 3) as i64, ((ts / 2) % 4) as i64]),
                )
            })
            .collect();

        let mut exec_a = ExecutablePlan::new(&plan).unwrap();
        assert!(!exec_a.is_batch_safe());
        let mut a = CollectingSink::default();
        for (src, tu) in &events {
            exec_a.push(*src, tu.clone(), &mut a).unwrap();
        }
        let mut exec_b = ExecutablePlan::new(&plan).unwrap();
        let mut b = CollectingSink::default();
        exec_b.push_batch(&events, &mut b).unwrap();
        assert!(!a.of(q).is_empty(), "workload must produce matches");
        assert_eq!(a.of(q), b.of(q));
    }

    #[test]
    fn unknown_source_rejected() {
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(1), None).unwrap();
        let mut exec = ExecutablePlan::new(&plan).unwrap();
        let mut sink = DiscardSink;
        assert!(exec
            .push(SourceId(9), Tuple::ints(0, &[1]), &mut sink)
            .is_err());
    }

    #[test]
    fn push_batch_unknown_source_processes_valid_prefix_and_leaks_nothing() {
        let mut plan = PlanGraph::new();
        let s = plan.add_source("S", Schema::ints(1), None).unwrap();
        let q = plan
            .add_query(&LogicalPlan::source("S").select(Predicate::True))
            .unwrap();
        let mut exec = ExecutablePlan::new(&plan).unwrap();
        assert!(exec.is_batch_safe());
        let mut sink = CollectingSink::default();
        let events = vec![
            (s, Tuple::ints(0, &[1])),
            (SourceId(9), Tuple::ints(1, &[2])),
            (s, Tuple::ints(2, &[3])),
        ];
        assert!(exec.push_batch(&events, &mut sink).is_err());
        // The valid prefix was fully processed (matching `push` semantics)...
        assert_eq!(sink.of(q).len(), 1);
        assert_eq!(exec.events_in, 1);
        // ...and nothing from the failed call leaks into the next one.
        let mut sink2 = CollectingSink::default();
        exec.push_batch(&[(s, Tuple::ints(3, &[4]))], &mut sink2)
            .unwrap();
        assert_eq!(sink2.of(q).len(), 1);
        assert_eq!(sink2.of(q)[0].ts, 3);
        assert_eq!(exec.events_in, 2);
    }
}
