//! The partition-parallel shared-plan runtime.
//!
//! [`ShardedRuntime`] clones a compiled plan across `n` workers and routes
//! every pushed source tuple to exactly one of them, following the static
//! [`PartitionScheme`] computed by `rumor-core`'s partitioning analysis
//! from the compiled m-ops' key reports
//! ([`rumor_core::MultiOp::partition_keys`]):
//!
//! * tuples of **stateless** components round-robin across workers (any
//!   distribution preserves per-query result multisets);
//! * tuples of **key-partitionable** components hash on the component's
//!   per-source key attributes, so every pair of tuples that can meet in
//!   stateful operator state (join/sequence/iterate partners, aggregate
//!   group members) lands on the same worker;
//! * tuples of **pinned** components all go to worker 0.
//!
//! Each worker owns a full [`ExecutablePlan`] clone plus its own sink;
//! [`ShardedRuntime::push_batch`] partitions the input slice, runs the
//! workers on scoped threads, and [`ShardedRuntime::finish`] folds the
//! per-worker sinks into one deterministic result ([`MergeSink`]).
//!
//! Within one worker the routed sub-stream preserves global timestamp
//! order (routing never reorders), so each clone sees a valid input and
//! per-query results across workers form exactly the multiset the
//! single-threaded engine produces. For fully pinned plans the runtime
//! degenerates to the single-threaded engine on worker 0.

use rumor_core::{analyze_partitioning, PartitionScheme, PlanGraph};
use rumor_types::{QueryId, Result, RumorError, SourceId, Tuple};

use crate::exec::{CollectingSink, CountingSink, DiscardSink, ExecutablePlan, QuerySink};

/// A sink sharded workers can each own privately and fold deterministically
/// at drain time.
pub trait MergeSink: QuerySink + Send {
    /// Folds `other` into `self`. Implementations must be associative and
    /// produce an order that does not depend on how results were
    /// distributed across workers (e.g. [`CollectingSink`] re-sorts by
    /// timestamp, then query id).
    fn merge(&mut self, other: Self)
    where
        Self: Sized;

    /// Called exactly once after every worker sink has been folded in —
    /// including the single-worker case, where [`MergeSink::merge`] never
    /// runs. Implementations whose canonical order is established by
    /// merging (again, [`CollectingSink`]) normalize here so `n = 1`
    /// results obey the same contract as `n > 1`.
    fn finalize(&mut self) {}
}

impl MergeSink for CountingSink {
    fn merge(&mut self, other: Self) {
        CountingSink::merge(self, other);
    }
}

impl MergeSink for CollectingSink {
    fn merge(&mut self, other: Self) {
        CollectingSink::merge(self, other);
    }

    fn finalize(&mut self) {
        // A single worker's results arrive in engine order (the hybrid
        // drain interleaves batched and strict phases), not in the merged
        // contract order.
        self.results.sort_by_key(|(q, t)| (t.ts, *q));
    }
}

impl MergeSink for DiscardSink {
    fn merge(&mut self, _other: Self) {}
}

struct Worker<S> {
    exec: ExecutablePlan,
    sink: S,
}

/// The partition-parallel runtime: `n` plan clones behind a static router.
pub struct ShardedRuntime<S: MergeSink> {
    workers: Vec<Worker<S>>,
    scheme: PartitionScheme,
    /// Per-source round-robin cursors (kept per source so one source's
    /// distribution is independent of how sources interleave).
    rr_cursors: Vec<usize>,
    /// Every route is round-robin: batch calls split the input into
    /// contiguous zero-copy segments instead of routing per event.
    all_round_robin: bool,
    /// Per-worker staging buffers, reused across [`ShardedRuntime::push_batch`] calls.
    bufs: Vec<Vec<(SourceId, Tuple)>>,
}

impl<S: MergeSink + Default> ShardedRuntime<S> {
    /// Compiles `plan` into `n` worker clones (n ≥ 1) and computes the
    /// routing scheme from the compiled operators' key reports.
    pub fn new(plan: &PlanGraph, n: usize) -> Result<Self> {
        if n == 0 {
            return Err(RumorError::exec("sharded runtime needs n >= 1".to_string()));
        }
        let mut workers = Vec::with_capacity(n);
        for _ in 0..n {
            workers.push(Worker {
                exec: ExecutablePlan::new(plan)?,
                sink: S::default(),
            });
        }
        let scheme = analyze_partitioning(plan, &workers[0].exec.partition_reports())?;
        let n_sources = scheme.routes().len();
        let all_round_robin = scheme
            .routes()
            .iter()
            .all(|r| matches!(r, rumor_core::SourceRoute::RoundRobin));
        Ok(ShardedRuntime {
            workers,
            scheme,
            rr_cursors: vec![0; n_sources],
            all_round_robin,
            bufs: vec![Vec::new(); n],
        })
    }
}

impl<S: MergeSink> ShardedRuntime<S> {
    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The routing scheme in force.
    pub fn scheme(&self) -> &PartitionScheme {
        &self.scheme
    }

    /// Whether the scheme lets more than one worker do useful work.
    pub fn is_parallelizable(&self) -> bool {
        self.scheme.is_parallelizable()
    }

    /// Total events accepted across workers.
    pub fn events_in(&self) -> u64 {
        self.workers.iter().map(|w| w.exec.events_in).sum()
    }

    /// Events accepted per worker — the load-balance metric (a pinned
    /// component shows up as worker 0 carrying its whole stream).
    pub fn worker_events(&self) -> Vec<u64> {
        self.workers.iter().map(|w| w.exec.events_in).collect()
    }

    fn route(&mut self, source: SourceId, tuple: &Tuple) -> Result<usize> {
        let cursor = self
            .rr_cursors
            .get_mut(source.index())
            .ok_or_else(|| RumorError::exec(format!("unknown source {source}")))?;
        Ok(self
            .scheme
            .worker_for(source, tuple.values(), self.workers.len(), cursor))
    }

    /// Routes and processes one source tuple (inline, on the caller's
    /// thread). Tuples must arrive in global timestamp order.
    pub fn push(&mut self, source: SourceId, tuple: Tuple) -> Result<()> {
        let w = self.route(source, &tuple)?;
        let worker = &mut self.workers[w];
        worker.exec.push(source, tuple, &mut worker.sink)
    }

    /// Routes a timestamp-ordered event slice across the workers and runs
    /// them in parallel (scoped threads), one
    /// [`ExecutablePlan::push_batch`] call per worker per call.
    ///
    /// Fully stateless schemes (every route round-robin) skip per-event
    /// routing entirely: the slice is split into `n` contiguous segments
    /// consumed zero-copy, which is the optimal stateless distribution for
    /// a batch — equal load, maximal channel-run lengths per worker, no
    /// tuple clones. Keyed and pinned routes take the per-event router.
    ///
    /// Unlike [`ExecutablePlan::push_batch`], an unknown source fails the
    /// whole call up front: routing validates every event before any worker
    /// processes anything.
    pub fn push_batch(&mut self, events: &[(SourceId, Tuple)]) -> Result<()> {
        if let Some((source, _)) = events
            .iter()
            .find(|(s, _)| s.index() >= self.rr_cursors.len())
        {
            return Err(RumorError::exec(format!("unknown source {source}")));
        }
        if self.workers.len() == 1 {
            let worker = &mut self.workers[0];
            return worker.exec.push_batch(events, &mut worker.sink);
        }
        if self.all_round_robin {
            let per = events.len().div_ceil(self.workers.len()).max(1);
            return self.run_workers(|w| {
                let lo = (w * per).min(events.len());
                let hi = ((w + 1) * per).min(events.len());
                &events[lo..hi]
            });
        }
        for buf in &mut self.bufs {
            buf.clear();
        }
        for (source, tuple) in events {
            let w = self.route(*source, tuple)?;
            self.bufs[w].push((*source, tuple.clone()));
        }
        let bufs = std::mem::take(&mut self.bufs);
        let outcome = self.run_workers(|w| bufs[w].as_slice());
        self.bufs = bufs;
        outcome
    }

    /// Runs every worker with a non-empty share on its own scoped thread.
    fn run_workers<'a>(
        &mut self,
        share: impl Fn(usize) -> &'a [(SourceId, Tuple)] + Sync,
    ) -> Result<()> {
        let mut outcomes: Vec<Result<()>> = Vec::with_capacity(self.workers.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .workers
                .iter_mut()
                .enumerate()
                .filter(|(w, _)| !share(*w).is_empty())
                .map(|(w, worker)| {
                    let share = &share;
                    scope.spawn(move || worker.exec.push_batch(share(w), &mut worker.sink))
                })
                .collect();
            for h in handles {
                outcomes.push(h.join().unwrap_or_else(|_| {
                    Err(RumorError::exec("sharded worker panicked".to_string()))
                }));
            }
        });
        outcomes.into_iter().collect()
    }

    /// Merges the per-worker sinks (worker 0 first) into the final sink.
    pub fn finish(self) -> S {
        let mut it = self.workers.into_iter();
        let mut acc = it.next().expect("n >= 1 workers").sink;
        for w in it {
            acc.merge(w.sink);
        }
        acc.finalize();
        acc
    }
}

impl ShardedRuntime<CollectingSink> {
    /// Convenience: merged `(query, tuple)` results sorted by
    /// `(timestamp, query)`, consuming the runtime.
    pub fn into_results(self) -> Vec<(QueryId, Tuple)> {
        self.finish().results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::{LogicalPlan, Optimizer, OptimizerConfig, SeqSpec, SourceRoute, Verdict};
    use rumor_expr::{CmpOp, Expr, Predicate};
    use rumor_types::Schema;

    fn optimized(queries: &[LogicalPlan]) -> (PlanGraph, Vec<QueryId>) {
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(3), None).unwrap();
        plan.add_source("T", Schema::ints(3), None).unwrap();
        let qs = queries.iter().map(|q| plan.add_query(q).unwrap()).collect();
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();
        (plan, qs)
    }

    fn interleaved(plan: &PlanGraph, n: u64) -> Vec<(SourceId, Tuple)> {
        let s = plan.source_by_name("S").unwrap().id;
        let t = plan.source_by_name("T").unwrap().id;
        (0..n)
            .map(|ts| {
                let src = if ts % 2 == 0 { s } else { t };
                (
                    src,
                    Tuple::ints(ts, &[(ts % 5) as i64, (ts % 3) as i64, ts as i64]),
                )
            })
            .collect()
    }

    fn reference(plan: &PlanGraph, events: &[(SourceId, Tuple)]) -> CollectingSink {
        let mut exec = ExecutablePlan::new(plan).unwrap();
        let mut sink = CollectingSink::default();
        for (src, t) in events {
            exec.push(*src, t.clone(), &mut sink).unwrap();
        }
        sink
    }

    fn sorted_of(sink: &CollectingSink, q: QueryId) -> Vec<String> {
        let mut v: Vec<String> = sink.of(q).iter().map(|t| t.to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn stateless_plan_round_robins_and_matches() {
        let (plan, qs) = optimized(&[
            LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 1i64)),
            LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 2i64)),
        ]);
        let events = interleaved(&plan, 60);
        let want = reference(&plan, &events);
        for n in [1, 2, 4] {
            let mut rt: ShardedRuntime<CollectingSink> = ShardedRuntime::new(&plan, n).unwrap();
            assert_eq!(rt.scheme().count(Verdict::Stateless), 2);
            rt.push_batch(&events).unwrap();
            assert_eq!(rt.events_in(), 60);
            if n > 1 {
                let per_worker = rt.worker_events();
                assert!(per_worker.iter().all(|&e| e > 0), "{per_worker:?}");
            }
            let got = rt.finish();
            for &q in &qs {
                assert_eq!(sorted_of(&got, q), sorted_of(&want, q), "n={n}");
            }
        }
    }

    #[test]
    fn keyed_sequence_partitions_by_hash() {
        let (plan, qs) = optimized(&[LogicalPlan::source("S")
            .select(Predicate::attr_eq_const(1, 0i64))
            .followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                    window: 20,
                },
            )]);
        let events = interleaved(&plan, 120);
        let want = reference(&plan, &events);
        let mut rt: ShardedRuntime<CollectingSink> = ShardedRuntime::new(&plan, 4).unwrap();
        assert_eq!(rt.scheme().count(Verdict::Keyed), 1);
        let s = plan.source_by_name("S").unwrap().id;
        assert_eq!(*rt.scheme().route(s), SourceRoute::Key(vec![0]));
        rt.push_batch(&events).unwrap();
        let got = rt.finish();
        assert!(!want.results.is_empty());
        for &q in &qs {
            assert_eq!(sorted_of(&got, q), sorted_of(&want, q));
        }
    }

    #[test]
    fn unkeyed_sequence_pins_to_worker_zero() {
        let (plan, qs) = optimized(&[LogicalPlan::source("S").followed_by(
            LogicalPlan::source("T"),
            SeqSpec {
                predicate: Predicate::cmp(CmpOp::Lt, Expr::col(2), Expr::rcol(2)),
                window: 10,
            },
        )]);
        let events = interleaved(&plan, 80);
        let want = reference(&plan, &events);
        let mut rt: ShardedRuntime<CollectingSink> = ShardedRuntime::new(&plan, 4).unwrap();
        assert_eq!(rt.scheme().count(Verdict::Pinned), 1);
        assert!(!rt.is_parallelizable());
        rt.push_batch(&events).unwrap();
        assert_eq!(rt.worker_events(), vec![80, 0, 0, 0]);
        let got = rt.finish();
        for &q in &qs {
            assert_eq!(sorted_of(&got, q), sorted_of(&want, q));
        }
    }

    #[test]
    fn push_and_push_batch_agree() {
        let (plan, qs) = optimized(&[
            LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 3i64)),
            LogicalPlan::source("S")
                .select(Predicate::attr_eq_const(1, 1i64))
                .followed_by(
                    LogicalPlan::source("T"),
                    SeqSpec {
                        predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                        window: 15,
                    },
                ),
        ]);
        let events = interleaved(&plan, 90);
        let mut a: ShardedRuntime<CollectingSink> = ShardedRuntime::new(&plan, 3).unwrap();
        for (src, t) in &events {
            a.push(*src, t.clone()).unwrap();
        }
        let mut b: ShardedRuntime<CollectingSink> = ShardedRuntime::new(&plan, 3).unwrap();
        b.push_batch(&events).unwrap();
        let (a, b) = (a.finish(), b.finish());
        for &q in &qs {
            assert_eq!(sorted_of(&a, q), sorted_of(&b, q));
        }
    }

    #[test]
    fn single_worker_results_obey_merge_order() {
        // With n = 1 no merge runs; finalize must still establish the
        // (ts, query) contract order, which the hybrid drain's phase split
        // (batched stateless results first, strict results after) breaks.
        let (plan, _) = optimized(&[
            LogicalPlan::source("S").select(Predicate::True),
            LogicalPlan::source("S").followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                    window: 20,
                },
            ),
        ]);
        let events = interleaved(&plan, 60);
        let mut rt: ShardedRuntime<CollectingSink> = ShardedRuntime::new(&plan, 1).unwrap();
        rt.push_batch(&events).unwrap();
        let results = rt.into_results();
        assert!(!results.is_empty());
        let keys: Vec<(u64, u32)> = results.iter().map(|(q, t)| (t.ts, q.0)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "n=1 results must be (ts, query)-sorted");
    }

    #[test]
    fn unknown_source_fails_before_processing() {
        let (plan, _) = optimized(&[LogicalPlan::source("S").select(Predicate::True)]);
        let mut rt: ShardedRuntime<CountingSink> = ShardedRuntime::new(&plan, 2).unwrap();
        let s = plan.source_by_name("S").unwrap().id;
        let events = vec![
            (s, Tuple::ints(0, &[1, 0, 0])),
            (SourceId(9), Tuple::ints(1, &[1, 0, 0])),
        ];
        assert!(rt.push_batch(&events).is_err());
        assert_eq!(rt.events_in(), 0);
    }

    #[test]
    fn counting_sink_merge_folds_counts() {
        let mut a = CountingSink::default();
        a.on_result(QueryId(0), &Tuple::ints(0, &[1]));
        let mut b = CountingSink::default();
        b.on_result(QueryId(0), &Tuple::ints(1, &[1]));
        b.on_result(QueryId(2), &Tuple::ints(1, &[1]));
        a.merge(b);
        assert_eq!(a.count(QueryId(0)), 2);
        assert_eq!(a.count(QueryId(2)), 1);
        assert_eq!(a.total, 3);
    }

    #[test]
    fn collecting_sink_merge_sorts_by_ts_then_query() {
        let mut a = CollectingSink::default();
        a.on_result(QueryId(1), &Tuple::ints(5, &[1]));
        a.on_result(QueryId(0), &Tuple::ints(7, &[2]));
        let mut b = CollectingSink::default();
        b.on_result(QueryId(0), &Tuple::ints(5, &[3]));
        a.merge(b);
        let order: Vec<(u32, u64)> = a.results.iter().map(|(q, t)| (q.0, t.ts)).collect();
        assert_eq!(order, vec![(0, 5), (1, 5), (0, 7)]);
    }
}
