//! The partition-parallel shared-plan runtime.
//!
//! [`ShardedRuntime`] clones a compiled plan across `n` workers and routes
//! every pushed source tuple to exactly one of them, following the static
//! [`PartitionScheme`] computed by `rumor-core`'s partitioning analysis
//! from the compiled m-ops' key reports
//! ([`rumor_core::MultiOp::partition_keys`]):
//!
//! * tuples of **stateless** components round-robin across workers (any
//!   distribution preserves per-query result multisets);
//! * tuples of **key-partitionable** components hash on the component's
//!   per-source key attributes, so every pair of tuples that can meet in
//!   stateful operator state (join/sequence/iterate partners, aggregate
//!   group members) lands on the same worker;
//! * tuples of **pinned** components all go to worker 0.
//!
//! Each worker owns a full [`ExecutablePlan`] clone plus its own sink;
//! [`ShardedRuntime::push_batch`] partitions the input slice, runs the
//! workers on scoped threads, and [`ShardedRuntime::finish`] folds the
//! per-worker sinks into one deterministic result ([`MergeSink`]).
//!
//! Within one worker the routed sub-stream preserves global timestamp
//! order (routing never reorders), so each clone sees a valid input and
//! per-query results across workers form exactly the multiset the
//! single-threaded engine produces. For fully pinned plans the runtime
//! degenerates to the single-threaded engine on worker 0.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crossbeam_channel::{bounded, Receiver, Sender};

use rumor_core::{
    analyze_partitioning, reanalyze_partitioning, MopContext, PartitionKeys, PartitionScheme,
    PlanDelta, PlanGraph, PlanSnapshot, SourceRoute, Verdict,
};
use rumor_types::{MopId, Result, RumorError, SourceId, Tuple};

use crate::exec::{
    CollectingSink, ConeScope, CountingSink, DiscardSink, ExecutablePlan, QuerySink,
};
use crate::session::EventRuntime;
use crate::stats::{ExecStatsReport, TraceEvent, TraceRing};

/// A sink sharded workers can each own privately and fold deterministically
/// at drain time.
pub trait MergeSink: QuerySink + Send {
    /// Folds `other` into `self`. Implementations must be associative and
    /// produce an order that does not depend on how results were
    /// distributed across workers (e.g. [`CollectingSink`] re-sorts by
    /// timestamp, then query id).
    fn merge(&mut self, other: Self)
    where
        Self: Sized;

    /// Called exactly once after every worker sink has been folded in —
    /// including the single-worker case, where [`MergeSink::merge`] never
    /// runs. Implementations whose canonical order is established by
    /// merging (again, [`CollectingSink`]) normalize here so `n = 1`
    /// results obey the same contract as `n > 1`.
    fn finalize(&mut self) {}
}

impl MergeSink for CountingSink {
    fn merge(&mut self, other: Self) {
        CountingSink::merge(self, other);
    }
}

impl MergeSink for CollectingSink {
    fn merge(&mut self, other: Self) {
        CollectingSink::merge(self, other);
    }

    fn finalize(&mut self) {
        // A single worker's results arrive in engine order (the hybrid
        // drain interleaves batched and strict phases), not in the merged
        // contract order.
        self.results.sort_by_key(|(q, t)| (t.ts, *q));
    }
}

impl MergeSink for DiscardSink {
    fn merge(&mut self, _other: Self) {}
}

struct Worker<S> {
    exec: ExecutablePlan,
    sink: S,
}

/// One routed delivery: where a tuple goes and how much of the plan it
/// addresses there ([`ConeScope::Full`] for every route except the two
/// legs of a split route).
enum Routed {
    One(usize),
    /// Split delivery: the stateful cone runs on `stateful` (worker 0 for
    /// [`SourceRoute::PinnedSplit`], the hashed worker for
    /// [`SourceRoute::KeySplit`]); the stateless sibling subgraph
    /// round-robins to `free`.
    Split {
        free: usize,
        stateful: usize,
    },
}

/// The single routing step shared by both shard runtimes: resolves one
/// source tuple against the scheme, advancing the source's round-robin
/// cursor (split routes advance it for their stateless leg). Any change
/// to routing semantics lands in both runtimes at once — the conformance
/// harness depends on them splitting input identically.
fn route_event(
    scheme: &PartitionScheme,
    rr_cursors: &mut [usize],
    n: usize,
    source: SourceId,
    tuple: &Tuple,
) -> Result<Routed> {
    let cursor = rr_cursors
        .get_mut(source.index())
        .ok_or_else(|| RumorError::exec(format!("unknown source {source}")))?;
    if matches!(
        scheme.route(source),
        SourceRoute::PinnedSplit | SourceRoute::KeySplit(_)
    ) {
        let free = *cursor % n;
        *cursor = (*cursor + 1) % n;
        // `worker_for` resolves the stateful leg of a split route without
        // touching the cursor (worker 0 when pinned, the key hash when
        // keyed — identical to the hash a plain `Key` route would use).
        let stateful = scheme.worker_for(source, tuple.values(), n, cursor);
        return Ok(Routed::Split { free, stateful });
    }
    Ok(Routed::One(scheme.worker_for(
        source,
        tuple.values(),
        n,
        cursor,
    )))
}

/// The `w`-th of `n` contiguous segments of a length-`len` slice — the
/// stateless batch distribution both runtimes use.
fn segment(len: usize, n: usize, w: usize) -> (usize, usize) {
    let per = len.div_ceil(n).max(1);
    ((w * per).min(len), ((w + 1) * per).min(len))
}

/// Re-derives the per-m-op partition-key reports after a plan delta.
/// Untouched ops carry their previous report over — their resolved
/// contexts compared equal, so re-instantiating them could not produce a
/// different key structure — and only added/rewired ops are instantiated
/// afresh. Swap cost thus scales with the delta, not the plan.
fn refresh_reports(
    plan: &PlanGraph,
    prev: &[(MopId, PartitionKeys)],
    delta: &PlanDelta,
) -> Result<Vec<(MopId, PartitionKeys)>> {
    let mut reports: Vec<(MopId, PartitionKeys)> = prev
        .iter()
        .filter(|(id, _)| !delta.removed.contains(id) && !delta.rewired.contains(id))
        .cloned()
        .collect();
    for &id in delta.added.iter().chain(delta.rewired.iter()) {
        let ctx = MopContext::build(plan, id)?;
        reports.push((id, rumor_ops::instantiate(&ctx)?.partition_keys()));
    }
    Ok(reports)
}

/// The shared hot-swap preamble of both runtimes. The delta is computed
/// here, against the runtime's *installed* snapshot — never taken from
/// the caller: a plan can accumulate several mutations between swaps
/// (including one whose swap was previously refused), and trusting a
/// per-mutation delta would let the ops of the earlier mutations slip
/// into the workers via `apply_delta` without a partition report or a
/// re-derived route — silently wrong routing. From the cumulative delta
/// this refreshes the key reports incrementally, re-derives the routing
/// scheme for touched components only, and refuses the swap when it
/// would re-route live stateful state ([`reroute_conflict`]). Nothing is
/// mutated on failure — a refused swap keeps being refused until the
/// caller resolves it (e.g. removes the offending query) and updates
/// again.
fn prepare_swap(
    plan: &PlanGraph,
    installed: &PlanSnapshot,
    prev_scheme: &PartitionScheme,
    prev_reports: &[(MopId, PartitionKeys)],
) -> Result<(PartitionScheme, Vec<(MopId, PartitionKeys)>)> {
    let delta = installed.delta(plan);
    let reports = refresh_reports(plan, prev_reports, &delta)?;
    let scheme = reanalyze_partitioning(plan, &reports, prev_scheme, &delta)?;
    if let Some(src) = reroute_conflict(prev_scheme, &scheme) {
        return Err(RumorError::exec(format!(
            "cannot hot-swap plan: source {src} would be re-routed under live stateful \
             state; rebuild the runtime for this change"
        )));
    }
    Ok((scheme, reports))
}

/// Routing-continuity check for plan hot-swaps: a source whose tuples feed
/// a stateful operator *with live state* must keep landing on the workers
/// holding that state. Re-routing it (a keyed component changing its key,
/// a keyed component becoming pinned, a pinned one becoming keyed) would
/// separate new tuples from the state their partners accumulated, so such
/// a swap is refused — the caller must rebuild the pool instead. Safe
/// transitions: an unchanged route; a previously *stateless* component
/// picking up its first stateful consumer (the new operator starts cold
/// everywhere, so any routing is as good as any other); a component
/// relaxing *to* stateless (no state left to mis-route); and the split
/// flips `Pinned ↔ PinnedSplit` and `Key ↔ KeySplit` *with equal key
/// attributes* (the stateful cone stays on worker 0 / the identical hash
/// either way — only the stateless sibling leg, which holds no state,
/// changes delivery). Returns the first offending source.
fn reroute_conflict(old: &PartitionScheme, new: &PartitionScheme) -> Option<SourceId> {
    let verdicts = |s: &PartitionScheme| -> Vec<Option<Verdict>> {
        let mut v = vec![None; s.routes().len()];
        for c in s.components() {
            for &src in &c.sources {
                v[src.index()] = Some(c.verdict);
            }
        }
        v
    };
    let old_v = verdicts(old);
    let new_v = verdicts(new);
    let pinnedish = |r: &SourceRoute| matches!(r, SourceRoute::Pinned | SourceRoute::PinnedSplit);
    fn keyedish(r: &SourceRoute) -> Option<&[usize]> {
        match r {
            SourceRoute::Key(attrs) | SourceRoute::KeySplit(attrs) => Some(attrs),
            _ => None,
        }
    }
    for (i, new_route) in new.routes().iter().enumerate() {
        let Some(old_route) = old.routes().get(i) else {
            continue; // source added by the swap: no history to honor
        };
        if old_route == new_route || (pinnedish(old_route) && pinnedish(new_route)) {
            continue;
        }
        if let (Some(a), Some(b)) = (keyedish(old_route), keyedish(new_route)) {
            if a == b {
                continue; // same hash for the stateful leg either way
            }
        }
        if old_v[i] == Some(Verdict::Stateless) || new_v[i] == Some(Verdict::Stateless) {
            continue;
        }
        return Some(SourceId::from_index(i));
    }
    None
}

/// Processes a run of scope-tagged deliveries on one worker. Deliveries
/// are `(scope, index)` pairs into one shared `events` slice — the worker
/// never receives cloned tuples, only selections of the batch the caller
/// already owns. Consecutive full-scope deliveries are regrouped (via
/// `scratch`) into one [`ExecutablePlan::push_batch_indexed`] call; scoped
/// legs of a split route go through [`ExecutablePlan::push_cone`] per
/// event (the tuple clone there is a refcount bump).
fn process_tagged<S: MergeSink>(
    exec: &mut ExecutablePlan,
    sink: &mut S,
    events: &[(SourceId, Tuple)],
    items: &[(ConeScope, u32)],
    scratch: &mut Vec<u32>,
) -> Result<()> {
    let mut i = 0;
    while i < items.len() {
        if items[i].0 == ConeScope::Full {
            scratch.clear();
            let mut j = i;
            while j < items.len() && items[j].0 == ConeScope::Full {
                scratch.push(items[j].1);
                j += 1;
            }
            exec.push_batch_indexed(events, scratch, sink)?;
            i = j;
        } else {
            let (scope, idx) = items[i];
            let (source, tuple) = &events[idx as usize];
            exec.push_cone(*source, tuple.clone(), scope, sink)?;
            i += 1;
        }
    }
    Ok(())
}

/// The partition-parallel runtime: `n` plan clones behind a static router.
pub struct ShardedRuntime<S: MergeSink> {
    workers: Vec<Worker<S>>,
    scheme: PartitionScheme,
    /// Per-m-op key reports backing `scheme`, refreshed incrementally on
    /// [`ShardedRuntime::update_plan`].
    reports: Vec<(MopId, PartitionKeys)>,
    /// Snapshot of the plan the workers actually run — hot-swap deltas
    /// are computed against this, not against whatever the caller thinks
    /// changed.
    installed: PlanSnapshot,
    /// Per-source round-robin cursors (kept per source so one source's
    /// distribution is independent of how sources interleave).
    rr_cursors: Vec<usize>,
    /// Every route is round-robin: batch calls split the input into
    /// contiguous zero-copy segments instead of routing per event.
    all_round_robin: bool,
    /// Some route is a split ([`SourceRoute::PinnedSplit`] /
    /// [`SourceRoute::KeySplit`]): batch calls stage scope-tagged index
    /// deliveries instead of plain index lists.
    has_split: bool,
    /// Per-worker index staging (keyed/pinned schemes without splits):
    /// each worker gets the indices of its share of the caller's batch —
    /// no tuple is cloned on the routing side. Reused across
    /// [`ShardedRuntime::push_batch`] calls.
    index_bufs: Vec<Vec<u32>>,
    /// Per-worker scope-tagged index staging (split schemes only).
    tagged_bufs: Vec<Vec<(ConeScope, u32)>>,
    /// Source events accepted (a split delivery counts once).
    accepted: u64,
    /// [`EventRuntime::finish`] has been called: every further lifecycle
    /// call returns [`RumorError::Finished`].
    finished: bool,
}

impl<S: MergeSink + Default> ShardedRuntime<S> {
    /// Compiles `plan` into `n` worker clones (n ≥ 1) and computes the
    /// routing scheme from the compiled operators' key reports.
    pub fn new(plan: &PlanGraph, n: usize) -> Result<Self> {
        if n == 0 {
            return Err(RumorError::exec("sharded runtime needs n >= 1".to_string()));
        }
        let mut workers = Vec::with_capacity(n);
        for _ in 0..n {
            workers.push(Worker {
                exec: ExecutablePlan::new(plan)?,
                sink: S::default(),
            });
        }
        let reports = workers[0].exec.partition_reports();
        let scheme = analyze_partitioning(plan, &reports)?;
        let n_sources = scheme.routes().len();
        let all_round_robin = scheme
            .routes()
            .iter()
            .all(|r| matches!(r, SourceRoute::RoundRobin));
        let has_split = scheme
            .routes()
            .iter()
            .any(|r| matches!(r, SourceRoute::PinnedSplit | SourceRoute::KeySplit(_)));
        Ok(ShardedRuntime {
            workers,
            scheme,
            reports,
            installed: plan.snapshot(),
            rr_cursors: vec![0; n_sources],
            all_round_robin,
            has_split,
            index_bufs: vec![Vec::new(); n],
            tagged_bufs: vec![Vec::new(); n],
            accepted: 0,
            finished: false,
        })
    }
}

impl<S: MergeSink> ShardedRuntime<S> {
    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The routing scheme in force.
    pub fn scheme(&self) -> &PartitionScheme {
        &self.scheme
    }

    /// Whether the scheme lets more than one worker do useful work.
    pub fn is_parallelizable(&self) -> bool {
        self.scheme.is_parallelizable()
    }

    /// Source events accepted (a [`SourceRoute::PinnedSplit`] delivery
    /// counts once even though two workers observe it).
    pub fn events_in(&self) -> u64 {
        self.accepted
    }

    /// Deliveries processed per worker — the load-balance metric (a pinned
    /// component shows up as worker 0 carrying its whole stream). Under a
    /// split scheme the per-worker counts sum to more than
    /// [`ShardedRuntime::events_in`]: both legs of a split delivery count.
    pub fn worker_events(&self) -> Vec<u64> {
        self.workers.iter().map(|w| w.exec.events_in).collect()
    }

    /// Per-m-op execution counters folded across all workers (counters and
    /// state gauges sum; gate state is worker 0's view). Usable at any
    /// point in the lifecycle — the workers are retained after `finish`.
    pub fn exec_stats(&self) -> ExecStatsReport {
        let mut acc = ExecStatsReport::default();
        for w in &self.workers {
            acc.absorb(&w.exec.stats_report());
        }
        acc
    }

    fn route(&mut self, source: SourceId, tuple: &Tuple) -> Result<Routed> {
        route_event(
            &self.scheme,
            &mut self.rr_cursors,
            self.workers.len(),
            source,
            tuple,
        )
    }

    fn ensure_live(&self, op: &str) -> Result<()> {
        if self.finished {
            return Err(RumorError::finished(op));
        }
        Ok(())
    }

    /// Routes and processes one source tuple (inline, on the caller's
    /// thread). Tuples must arrive in global timestamp order.
    pub fn push(&mut self, source: SourceId, tuple: Tuple) -> Result<()> {
        self.ensure_live("push")?;
        match self.route(source, &tuple)? {
            Routed::One(w) => {
                let worker = &mut self.workers[w];
                worker.exec.push(source, tuple, &mut worker.sink)?;
            }
            Routed::Split { free, stateful } => {
                // Stateless leg first (it owns the source-channel taps),
                // matching the per-event engine's taps-then-operators order.
                let worker = &mut self.workers[free];
                worker.exec.push_cone(
                    source,
                    tuple.clone(),
                    ConeScope::Stateless,
                    &mut worker.sink,
                )?;
                let worker = &mut self.workers[stateful];
                worker
                    .exec
                    .push_cone(source, tuple, ConeScope::Stateful, &mut worker.sink)?;
            }
        }
        self.accepted += 1;
        Ok(())
    }

    /// Routes a timestamp-ordered event slice across the workers and runs
    /// them in parallel (scoped threads), one
    /// [`ExecutablePlan::push_batch`] /
    /// [`ExecutablePlan::push_batch_indexed`] call per worker per call.
    ///
    /// Fully stateless schemes (every route round-robin) skip per-event
    /// routing entirely: the slice is split into `n` contiguous segments
    /// consumed zero-copy, which is the optimal stateless distribution for
    /// a batch — equal load, maximal channel-run lengths per worker, no
    /// tuple clones. Keyed and pinned routes take the per-event router but
    /// stay zero-copy too: routing only records per-worker *index lists*
    /// into the caller's slice, and each worker feeds its selection of the
    /// shared batch through the same chunked batch machinery. Split routes
    /// ([`SourceRoute::PinnedSplit`] / [`SourceRoute::KeySplit`]) stage
    /// scope-tagged indices — one shared allocation, two scoped legs.
    ///
    /// Unlike [`ExecutablePlan::push_batch`], an unknown source fails the
    /// whole call up front: routing validates every event before any worker
    /// processes anything.
    pub fn push_batch(&mut self, events: &[(SourceId, Tuple)]) -> Result<()> {
        self.ensure_live("push_batch")?;
        if let Some((source, _)) = events
            .iter()
            .find(|(s, _)| s.index() >= self.rr_cursors.len())
        {
            return Err(RumorError::exec(format!("unknown source {source}")));
        }
        self.accepted += events.len() as u64;
        if self.workers.len() == 1 {
            let worker = &mut self.workers[0];
            return worker.exec.push_batch(events, &mut worker.sink);
        }
        if self.all_round_robin {
            let n = self.workers.len();
            return self.run_workers(|w| {
                let (lo, hi) = segment(events.len(), n, w);
                &events[lo..hi]
            });
        }
        if self.has_split {
            for buf in &mut self.tagged_bufs {
                buf.clear();
            }
            for (i, (source, tuple)) in events.iter().enumerate() {
                match self.route(*source, tuple)? {
                    Routed::One(w) => {
                        self.tagged_bufs[w].push((ConeScope::Full, i as u32));
                    }
                    Routed::Split { free, stateful } => {
                        self.tagged_bufs[free].push((ConeScope::Stateless, i as u32));
                        self.tagged_bufs[stateful].push((ConeScope::Stateful, i as u32));
                    }
                }
            }
            let bufs = std::mem::take(&mut self.tagged_bufs);
            let outcome = self.run_tagged_workers(events, &bufs);
            self.tagged_bufs = bufs;
            return outcome;
        }
        for buf in &mut self.index_bufs {
            buf.clear();
        }
        for (i, (source, tuple)) in events.iter().enumerate() {
            let w = match self.route(*source, tuple)? {
                Routed::One(w) => w,
                Routed::Split { .. } => unreachable!("split routes take the tagged path"),
            };
            self.index_bufs[w].push(i as u32);
        }
        let bufs = std::mem::take(&mut self.index_bufs);
        let outcome = self.run_indexed_workers(events, &bufs);
        self.index_bufs = bufs;
        outcome
    }

    /// Runs every worker with a non-empty scope-tagged share on its own
    /// scoped thread (split schemes). Shares are index selections of the
    /// one `events` slice every thread borrows.
    fn run_tagged_workers(
        &mut self,
        events: &[(SourceId, Tuple)],
        bufs: &[Vec<(ConeScope, u32)>],
    ) -> Result<()> {
        let mut outcomes: Vec<Result<()>> = Vec::with_capacity(self.workers.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .workers
                .iter_mut()
                .enumerate()
                .filter(|(w, _)| !bufs[*w].is_empty())
                .map(|(w, worker)| {
                    let items = bufs[w].as_slice();
                    scope.spawn(move || {
                        let mut scratch = Vec::new();
                        process_tagged(
                            &mut worker.exec,
                            &mut worker.sink,
                            events,
                            items,
                            &mut scratch,
                        )
                    })
                })
                .collect();
            for h in handles {
                outcomes.push(h.join().unwrap_or_else(|_| {
                    Err(RumorError::exec("sharded worker panicked".to_string()))
                }));
            }
        });
        outcomes.into_iter().collect()
    }

    /// Runs every worker with a non-empty index share on its own scoped
    /// thread (keyed/pinned schemes without splits): each worker consumes
    /// its selection of the shared `events` slice zero-copy.
    fn run_indexed_workers(
        &mut self,
        events: &[(SourceId, Tuple)],
        bufs: &[Vec<u32>],
    ) -> Result<()> {
        let mut outcomes: Vec<Result<()>> = Vec::with_capacity(self.workers.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .workers
                .iter_mut()
                .enumerate()
                .filter(|(w, _)| !bufs[*w].is_empty())
                .map(|(w, worker)| {
                    let indices = bufs[w].as_slice();
                    scope.spawn(move || {
                        worker
                            .exec
                            .push_batch_indexed(events, indices, &mut worker.sink)
                    })
                })
                .collect();
            for h in handles {
                outcomes.push(h.join().unwrap_or_else(|_| {
                    Err(RumorError::exec("sharded worker panicked".to_string()))
                }));
            }
        });
        outcomes.into_iter().collect()
    }

    /// Runs every worker with a non-empty share on its own scoped thread.
    fn run_workers<'a>(
        &mut self,
        share: impl Fn(usize) -> &'a [(SourceId, Tuple)] + Sync,
    ) -> Result<()> {
        let mut outcomes: Vec<Result<()>> = Vec::with_capacity(self.workers.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .workers
                .iter_mut()
                .enumerate()
                .filter(|(w, _)| !share(*w).is_empty())
                .map(|(w, worker)| {
                    let share = &share;
                    scope.spawn(move || worker.exec.push_batch(share(w), &mut worker.sink))
                })
                .collect();
            for h in handles {
                outcomes.push(h.join().unwrap_or_else(|_| {
                    Err(RumorError::exec("sharded worker panicked".to_string()))
                }));
            }
        });
        outcomes.into_iter().collect()
    }

    /// Hot-swaps every worker's compiled plan onto a mutated plan graph —
    /// the one-shot runtime's half of the epoch protocol. Calls are
    /// synchronous (workers only run inside `push_batch`), so the epoch
    /// boundary is implicit: this re-derives the routing scheme
    /// incrementally for everything that changed since the last installed
    /// plan (the runtime tracks that itself — accumulated mutations,
    /// including ones whose swap was previously refused, are all
    /// accounted for) and applies [`ExecutablePlan::apply_delta`] on
    /// every worker clone, carrying untouched operators' state across.
    /// Fails without touching any worker when the new scheme would
    /// re-route a source feeding surviving stateful state.
    pub fn update_plan(&mut self, plan: &PlanGraph) -> Result<()> {
        self.ensure_live("update_plan")?;
        let (scheme, reports) = prepare_swap(plan, &self.installed, &self.scheme, &self.reports)?;
        // `prepare_swap` already instantiated every delta-touched op from
        // the same contexts the workers resolve, so per-worker
        // `apply_delta` cannot fail here short of allocation failure —
        // and `apply_delta` itself leaves a worker untouched on error.
        for worker in &mut self.workers {
            worker.exec.apply_delta(plan)?;
        }
        self.all_round_robin = scheme
            .routes()
            .iter()
            .all(|r| matches!(r, SourceRoute::RoundRobin));
        self.has_split = scheme
            .routes()
            .iter()
            .any(|r| matches!(r, SourceRoute::PinnedSplit | SourceRoute::KeySplit(_)));
        self.rr_cursors.resize(scheme.routes().len(), 0);
        self.scheme = scheme;
        self.reports = reports;
        self.installed = plan.snapshot();
        Ok(())
    }

    /// Takes and merges everything the per-worker sinks accumulated since
    /// the last drain (worker 0 first, then [`MergeSink::finalize`]),
    /// leaving fresh default sinks in place. Workers only run inside
    /// `push`/`push_batch` calls, so there is never in-flight work to wait
    /// for; valid after [`EventRuntime::finish`] — that is how the final
    /// results get out.
    pub fn drain_sink(&mut self) -> S
    where
        S: Default,
    {
        let mut it = self.workers.iter_mut();
        let mut acc = std::mem::take(&mut it.next().expect("n >= 1 workers").sink);
        for w in it {
            acc.merge(std::mem::take(&mut w.sink));
        }
        acc.finalize();
        acc
    }
}

impl<S: MergeSink + Default> EventRuntime for ShardedRuntime<S> {
    fn push(&mut self, source: SourceId, tuple: Tuple) -> Result<()> {
        ShardedRuntime::push(self, source, tuple)
    }

    fn push_batch(&mut self, events: &[(SourceId, Tuple)]) -> Result<()> {
        ShardedRuntime::push_batch(self, events)
    }

    fn flush(&mut self) -> Result<()> {
        // Workers run synchronously inside the push calls; the barrier is
        // trivially satisfied.
        self.ensure_live("flush")
    }

    fn finish(&mut self) -> Result<()> {
        self.ensure_live("finish")?;
        self.finished = true;
        Ok(())
    }

    fn update_plan(&mut self, plan: &PlanGraph) -> Result<()> {
        ShardedRuntime::update_plan(self, plan)
    }
}

// ----------------------------------------------------------------------
// The persistent streaming worker pool.
// ----------------------------------------------------------------------

/// Tuning knobs of the [`StreamingShardedRuntime`] worker pool.
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// Deliveries staged per worker before a message is dispatched. Larger
    /// batches amortize channel synchronization; 1 sends every delivery
    /// immediately.
    pub batch_size: usize,
    /// In-flight messages each worker's queue may hold before
    /// [`StreamingShardedRuntime::push`] /
    /// [`StreamingShardedRuntime::push_batch`] block (backpressure bound:
    /// at most `queue_depth * batch_size` events buffered per worker).
    pub queue_depth: usize,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            batch_size: 1024,
            queue_depth: 4,
        }
    }
}

/// One unit of work inside a worker message. Full-scope deliveries are
/// staged as ready-made event runs so the worker feeds them straight into
/// [`ExecutablePlan::push_batch`] — no per-event regrouping or second
/// clone on the worker side; scoped legs of a split route travel
/// individually. Shared-batch segments
/// ([`StreamingShardedRuntime::push_batch_shared`]) carry a range of one
/// refcounted input allocation — the zero-copy stateless path — while
/// keyed, pinned, and split schemes ship scope-tagged index selections of
/// that same allocation ([`Delivery::SharedTagged`]): one refcount bump
/// per worker instead of one tuple clone per event.
enum Delivery {
    Run(Vec<(SourceId, Tuple)>),
    Shared(Arc<Vec<(SourceId, Tuple)>>, std::ops::Range<usize>),
    SharedTagged(Arc<Vec<(SourceId, Tuple)>>, Vec<(ConeScope, u32)>),
    Cone(ConeScope, SourceId, Tuple),
}

enum WorkerMsg<S> {
    Batch(Vec<Delivery>),
    /// Barrier: publish the generation once every previously sent message
    /// is processed (see [`FlushGate`]).
    Flush(u64),
    /// Epoch boundary of the hot-swap protocol: install the new plan via
    /// [`ExecutablePlan::apply_delta`], carrying unchanged operators'
    /// state across. Always preceded by a [`WorkerMsg::Flush`] barrier
    /// (the quiesce), so the swap never races in-flight deliveries.
    Update(Arc<PlanGraph>),
    /// Mid-stream sink handoff (the session delivery point): the worker
    /// ships everything its sink accumulated back over the enclosed
    /// channel and continues with a fresh default sink. Queue FIFO means
    /// every previously sent delivery is reflected in the shipped sink.
    Drain(Sender<S>),
    /// Mid-stream stats handoff: the worker ships a snapshot of its
    /// executor's per-op counters and gate state. Like [`WorkerMsg::Drain`],
    /// queue FIFO makes the reply reflect every previously sent delivery.
    Stats(Sender<ExecStatsReport>),
}

/// Published by a [`FlushGate`] when its worker exits (normally or by
/// panic), so barrier waiters never hang on a dead worker.
const GATE_DEAD: u64 = u64::MAX;

/// Worker-side barrier acknowledgement: a monotonically increasing
/// generation the worker publishes after draining everything sent before
/// the matching [`WorkerMsg::Flush`]. This replaces the former per-call
/// ack channel — the epoch protocol makes repeated barriers a hot path
/// (every plan swap quiesces, latency-sensitive callers flush per chunk),
/// and a generation bump on a long-lived gate costs no allocation.
struct FlushGate {
    gen: Mutex<u64>,
    cv: Condvar,
    /// First error the worker hit (processing or plan install). Barrier
    /// waiters surface it instead of letting the worker silently drop
    /// every subsequent delivery until `finish`.
    error: Mutex<Option<String>>,
}

impl FlushGate {
    fn new() -> Self {
        FlushGate {
            gen: Mutex::new(0),
            cv: Condvar::new(),
            error: Mutex::new(None),
        }
    }

    /// Records the worker's first error for barrier waiters.
    fn fail(&self, msg: String) {
        let mut e = self.error.lock().expect("gate poisoned");
        if e.is_none() {
            *e = Some(msg);
        }
    }

    /// The worker's recorded error, if any.
    fn error(&self) -> Option<String> {
        self.error.lock().expect("gate poisoned").clone()
    }

    fn publish(&self, g: u64) {
        let mut cur = self.gen.lock().expect("gate poisoned");
        if *cur < g {
            *cur = g;
            self.cv.notify_all();
        }
    }

    /// Blocks until generation `g` (or later) is published; `false` when
    /// the worker exited instead of reaching the barrier.
    fn wait_for(&self, g: u64) -> bool {
        let mut cur = self.gen.lock().expect("gate poisoned");
        while *cur < g {
            cur = self.cv.wait(cur).expect("gate poisoned");
        }
        *cur != GATE_DEAD
    }
}

/// Publishes [`GATE_DEAD`] when dropped — including during unwind — so a
/// worker can never exit without releasing its barrier waiters.
struct GateGuard(Arc<FlushGate>);

impl Drop for GateGuard {
    fn drop(&mut self) {
        self.0.publish(GATE_DEAD);
    }
}

struct WorkerOutcome<S> {
    sink: S,
    events_in: u64,
    /// Final per-op counters, folded into the pool's stored report at
    /// shutdown so [`StreamingShardedRuntime::exec_stats`] keeps working
    /// after `finish`.
    stats: ExecStatsReport,
    error: Option<RumorError>,
}

fn worker_loop<S: MergeSink + Default>(
    mut exec: ExecutablePlan,
    rx: Receiver<WorkerMsg<S>>,
    gate: Arc<FlushGate>,
) -> WorkerOutcome<S> {
    let _guard = GateGuard(Arc::clone(&gate));
    let mut sink = S::default();
    let mut error: Option<RumorError> = None;
    let mut scratch: Vec<u32> = Vec::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Batch(deliveries) => {
                // After the first error the worker keeps draining its
                // queue (so producers never block on a dead consumer) but
                // stops processing.
                if error.is_some() {
                    continue;
                }
                for d in &deliveries {
                    let outcome = match d {
                        Delivery::Run(run) => exec.push_batch(run, &mut sink),
                        Delivery::Shared(events, range) => {
                            exec.push_batch(&events[range.clone()], &mut sink)
                        }
                        Delivery::SharedTagged(events, items) => {
                            process_tagged(&mut exec, &mut sink, events, items, &mut scratch)
                        }
                        Delivery::Cone(scope, source, tuple) => {
                            exec.push_cone(*source, tuple.clone(), *scope, &mut sink)
                        }
                    };
                    if let Err(e) = outcome {
                        gate.fail(e.to_string());
                        error = Some(e);
                        break;
                    }
                }
            }
            WorkerMsg::Flush(g) => {
                // Channel FIFO: everything sent before this barrier has
                // been processed by now.
                gate.publish(g);
            }
            WorkerMsg::Update(plan) => {
                if error.is_none() {
                    if let Err(e) = exec.apply_delta(&plan) {
                        gate.fail(e.to_string());
                        error = Some(e);
                    }
                }
            }
            WorkerMsg::Drain(tx) => {
                // Ship the accumulated results back (even after an error:
                // the partial sink is what the caller gets, the error
                // itself surfaces at the barrier). A failed send means the
                // runtime stopped waiting; nothing to do.
                let _ = tx.send(std::mem::take(&mut sink));
            }
            WorkerMsg::Stats(tx) => {
                let _ = tx.send(exec.stats_report());
            }
        }
    }
    WorkerOutcome {
        sink,
        events_in: exec.events_in,
        stats: exec.stats_report(),
        error,
    }
}

/// Per-worker staging buffer: pending deliveries plus the number of
/// events they carry (dispatch triggers on events, not deliveries).
struct Staged {
    items: Vec<Delivery>,
    events: usize,
    /// Capacity hint for fresh runs (the configured batch size), so
    /// per-event staging fills one exact-sized allocation instead of
    /// doubling its way up.
    run_capacity: usize,
}

impl Staged {
    fn with_capacity(run_capacity: usize) -> Self {
        Staged {
            items: Vec::new(),
            events: 0,
            run_capacity,
        }
    }

    /// Appends one full-scope event, growing the trailing run.
    fn push_full(&mut self, source: SourceId, tuple: Tuple) {
        match self.items.last_mut() {
            Some(Delivery::Run(run)) => run.push((source, tuple)),
            _ => {
                let mut run = Vec::with_capacity(self.run_capacity);
                run.push((source, tuple));
                self.items.push(Delivery::Run(run));
            }
        }
        self.events += 1;
    }

    fn push_cone(&mut self, scope: ConeScope, source: SourceId, tuple: Tuple) {
        self.items.push(Delivery::Cone(scope, source, tuple));
        self.events += 1;
    }
}

/// The persistent streaming shard pool: `n` long-lived workers, each
/// owning a full [`ExecutablePlan`] clone and a private sink, fed over
/// bounded channels by the same static partition router as
/// [`ShardedRuntime`].
///
/// Where [`ShardedRuntime::push_batch`] spawns scoped threads per call —
/// fine for large one-shot batches, wasteful for small or streaming ones —
/// this runtime spawns its workers once at construction and streams
/// deliveries to them for its whole lifetime:
///
/// * [`StreamingShardedRuntime::push`] /
///   [`StreamingShardedRuntime::push_batch`] /
///   [`StreamingShardedRuntime::push_batch_shared`] route events and
///   stage them into per-worker buffers; a buffer reaching
///   [`StreamingConfig::batch_size`] events is dispatched as one message.
///   Bounded queues ([`StreamingConfig::queue_depth`]) provide
///   backpressure: when a worker falls behind, the caller blocks instead
///   of buffering without limit.
/// * [`StreamingShardedRuntime::flush`] dispatches all staged deliveries
///   and blocks until every worker has drained its queue — a barrier, not
///   a shutdown. Flushing an empty or idle runtime is a no-op.
/// * [`StreamingShardedRuntime::finish`] flushes, shuts the pool down,
///   joins the workers, and folds their sinks deterministically (worker 0
///   first, then [`MergeSink::finalize`]). Calling it again returns an
///   empty default sink instead of panicking.
///
/// Per-worker delivery order equals global arrival order restricted to
/// that worker (routing never reorders, queues are FIFO), so results are
/// exactly those of [`ShardedRuntime`] over the same input split.
pub struct StreamingShardedRuntime<S: MergeSink + Default + Send + 'static> {
    txs: Vec<Sender<WorkerMsg<S>>>,
    handles: Vec<JoinHandle<WorkerOutcome<S>>>,
    /// Per-worker barrier gates (generation-counter acknowledgement).
    gates: Vec<Arc<FlushGate>>,
    /// Last barrier generation issued.
    flush_gen: u64,
    scheme: PartitionScheme,
    /// Per-m-op key reports backing `scheme`, refreshed incrementally on
    /// [`StreamingShardedRuntime::update_plan`].
    reports: Vec<(MopId, PartitionKeys)>,
    /// Snapshot of the plan the workers actually run (see
    /// [`ShardedRuntime`]'s field of the same name).
    installed: PlanSnapshot,
    rr_cursors: Vec<usize>,
    all_round_robin: bool,
    /// Per-worker staging buffers (dispatched at `batch_size` events).
    staged: Vec<Staged>,
    batch_size: usize,
    accepted: u64,
    finished: bool,
    /// The merged results of the shutdown pool, until drained.
    final_sink: Option<S>,
    /// Deliveries processed per worker, recorded when the pool shuts down.
    worker_events: Vec<u64>,
    /// Folded per-op counters of the shutdown pool, so stats stay readable
    /// after `finish`.
    final_exec: Option<ExecStatsReport>,
    /// Per-worker high-water mark of the dispatch queue depth (sampled at
    /// each dispatch: messages already queued plus the one being sent).
    queue_hwm: Vec<u64>,
    /// Dispatches that found a worker queue full and fell back to a
    /// blocking send — the backpressure count.
    blocking_sends: u64,
    /// Runtime-level flight recorder: backpressure stalls and streaming
    /// swap phases, journaled on the routing thread and merged into the
    /// session trace timeline
    /// ([`Session::trace`](crate::session::Session::trace)).
    trace: TraceRing,
}

impl<S: MergeSink + Default + Send + 'static> StreamingShardedRuntime<S> {
    /// Spawns `n` persistent workers (n ≥ 1) with default tuning.
    pub fn new(plan: &PlanGraph, n: usize) -> Result<Self> {
        Self::with_config(plan, n, StreamingConfig::default())
    }

    /// Spawns `n` persistent workers (n ≥ 1) with explicit tuning.
    pub fn with_config(plan: &PlanGraph, n: usize, config: StreamingConfig) -> Result<Self> {
        if n == 0 {
            return Err(RumorError::exec(
                "streaming sharded runtime needs n >= 1".to_string(),
            ));
        }
        let batch_size = config.batch_size.max(1);
        let queue_depth = config.queue_depth.max(1);
        let mut execs = Vec::with_capacity(n);
        for _ in 0..n {
            execs.push(ExecutablePlan::new(plan)?);
        }
        let reports = execs[0].partition_reports();
        let scheme = analyze_partitioning(plan, &reports)?;
        let n_sources = scheme.routes().len();
        let all_round_robin = scheme
            .routes()
            .iter()
            .all(|r| matches!(r, SourceRoute::RoundRobin));
        let mut txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        let mut gates = Vec::with_capacity(n);
        for exec in execs {
            let (tx, rx) = bounded::<WorkerMsg<S>>(queue_depth);
            let gate = Arc::new(FlushGate::new());
            txs.push(tx);
            gates.push(Arc::clone(&gate));
            handles.push(std::thread::spawn(move || worker_loop::<S>(exec, rx, gate)));
        }
        Ok(StreamingShardedRuntime {
            txs,
            handles,
            gates,
            flush_gen: 0,
            scheme,
            reports,
            installed: plan.snapshot(),
            rr_cursors: vec![0; n_sources],
            all_round_robin,
            staged: std::iter::repeat_with(|| Staged::with_capacity(batch_size))
                .take(n)
                .collect(),
            batch_size,
            accepted: 0,
            finished: false,
            final_sink: None,
            worker_events: Vec::new(),
            final_exec: None,
            queue_hwm: vec![0; n],
            blocking_sends: 0,
            trace: TraceRing::with_capacity(256),
        })
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.staged.len()
    }

    /// The routing scheme in force.
    pub fn scheme(&self) -> &PartitionScheme {
        &self.scheme
    }

    /// Whether the scheme lets more than one worker do useful work.
    pub fn is_parallelizable(&self) -> bool {
        self.scheme.is_parallelizable()
    }

    /// Source events accepted so far (a split delivery counts once).
    pub fn events_in(&self) -> u64 {
        self.accepted
    }

    /// Whether [`EventRuntime::finish`] has been called on this pool.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Deliveries processed per worker — the load-balance metric. Only
    /// known once the pool has shut down: empty before
    /// [`StreamingShardedRuntime::finish`]. Under a split scheme the
    /// per-worker counts sum to more than
    /// [`StreamingShardedRuntime::events_in`]: both legs of a split
    /// delivery count.
    pub fn worker_events(&self) -> &[u64] {
        &self.worker_events
    }

    /// Per-worker high-water mark of the dispatch queue depth (messages
    /// observed queued at a dispatch, including the one being sent).
    pub fn queue_depth_hwm(&self) -> &[u64] {
        &self.queue_hwm
    }

    /// Dispatches that found a worker queue full and fell back to a
    /// blocking send — how often backpressure actually engaged.
    pub fn blocking_sends(&self) -> u64 {
        self.blocking_sends
    }

    /// Runtime-level flight-recorder events (backpressure stalls,
    /// streaming swap phases), oldest first. Bounded: the recorder keeps
    /// its most recent 256 events. Empty under `stats-off`.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.events().cloned().collect()
    }

    /// Per-m-op execution counters folded across all workers. On a live
    /// pool this is a stats barrier: staged deliveries are dispatched and
    /// each worker ships a snapshot over a reply channel (queue FIFO makes
    /// it reflect everything sent before). On a finished pool the report
    /// recorded at shutdown is returned.
    pub fn exec_stats(&mut self) -> Result<ExecStatsReport> {
        if self.finished {
            return Ok(self.final_exec.clone().unwrap_or_default());
        }
        let mut handoffs = Vec::with_capacity(self.txs.len());
        for w in 0..self.txs.len() {
            self.dispatch(w)?;
            let (stx, srx) = bounded::<ExecStatsReport>(1);
            self.txs[w]
                .send(WorkerMsg::Stats(stx))
                .map_err(|_| RumorError::exec(format!("streaming shard worker {w} died")))?;
            handoffs.push(srx);
        }
        let mut acc = ExecStatsReport::default();
        for (w, srx) in handoffs.into_iter().enumerate() {
            let report = srx
                .recv()
                .map_err(|_| RumorError::exec(format!("streaming shard worker {w} died")))?;
            acc.absorb(&report);
        }
        Ok(acc)
    }

    fn ensure_live(&self, op: &str) -> Result<()> {
        if self.finished {
            return Err(RumorError::finished(op));
        }
        Ok(())
    }

    fn stage_full(&mut self, w: usize, source: SourceId, tuple: Tuple) -> Result<()> {
        self.staged[w].push_full(source, tuple);
        if self.staged[w].events >= self.batch_size {
            self.dispatch(w)?;
        }
        Ok(())
    }

    fn stage_cone(
        &mut self,
        w: usize,
        scope: ConeScope,
        source: SourceId,
        tuple: Tuple,
    ) -> Result<()> {
        self.staged[w].push_cone(scope, source, tuple);
        if self.staged[w].events >= self.batch_size {
            self.dispatch(w)?;
        }
        Ok(())
    }

    fn dispatch(&mut self, w: usize) -> Result<()> {
        if self.staged[w].items.is_empty() {
            return Ok(());
        }
        let staged = std::mem::replace(&mut self.staged[w], Staged::with_capacity(self.batch_size));
        // Depth observed by this dispatch: whatever is already queued plus
        // the message about to join it. try_send first so a full queue is
        // *counted* (the backpressure signal) before falling back to the
        // blocking send that provides the actual backpressure.
        let depth = self.txs[w].len() as u64 + 1;
        if depth > self.queue_hwm[w] {
            self.queue_hwm[w] = depth;
        }
        match self.txs[w].try_send(WorkerMsg::Batch(staged.items)) {
            Ok(()) => Ok(()),
            Err(crossbeam_channel::TrySendError::Full(msg)) => {
                self.blocking_sends += 1;
                #[cfg(not(feature = "stats-off"))]
                self.trace.record(
                    "backpressure_stall",
                    format!("worker {w} queue full at depth {depth}; blocking send"),
                );
                self.txs[w]
                    .send(msg)
                    .map_err(|_| RumorError::exec(format!("streaming shard worker {w} died")))
            }
            Err(crossbeam_channel::TrySendError::Disconnected(_)) => {
                Err(RumorError::exec(format!("streaming shard worker {w} died")))
            }
        }
    }

    fn route(&mut self, source: SourceId, tuple: &Tuple) -> Result<Routed> {
        route_event(
            &self.scheme,
            &mut self.rr_cursors,
            self.txs.len(),
            source,
            tuple,
        )
    }

    /// Routes one source tuple into the pool. Tuples must arrive in global
    /// timestamp order; delivery is asynchronous (results are observable
    /// only through [`StreamingShardedRuntime::finish`]). Blocks when the
    /// target worker's queue is full.
    pub fn push(&mut self, source: SourceId, tuple: Tuple) -> Result<()> {
        self.ensure_live("push")?;
        match self.route(source, &tuple)? {
            Routed::One(w) => self.stage_full(w, source, tuple)?,
            Routed::Split { free, stateful } => {
                self.stage_cone(free, ConeScope::Stateless, source, tuple.clone())?;
                self.stage_cone(stateful, ConeScope::Stateful, source, tuple)?;
            }
        }
        self.accepted += 1;
        Ok(())
    }

    /// Routes a timestamp-ordered event slice into the pool. An unknown
    /// source fails the whole call before anything is staged. Fully
    /// stateless schemes skip per-event routing: the slice is split into
    /// `n` contiguous segments, exactly like [`ShardedRuntime::push_batch`].
    pub fn push_batch(&mut self, events: &[(SourceId, Tuple)]) -> Result<()> {
        self.ensure_live("push_batch")?;
        if let Some((source, _)) = events
            .iter()
            .find(|(s, _)| s.index() >= self.rr_cursors.len())
        {
            return Err(RumorError::exec(format!("unknown source {source}")));
        }
        self.push_batch_validated(events)
    }

    /// Per-event routing/staging behind the batch entry points (sources
    /// already validated).
    fn push_batch_validated(&mut self, events: &[(SourceId, Tuple)]) -> Result<()> {
        if self.all_round_robin && self.txs.len() > 1 {
            // Stateless scheme: contiguous segments per worker (the optimal
            // stateless distribution, as in [`ShardedRuntime::push_batch`]),
            // bulk-appended to the staged run without per-event routing.
            let n = self.txs.len();
            for w in 0..n {
                let (lo, hi) = segment(events.len(), n, w);
                let mut seg = &events[lo..hi];
                while !seg.is_empty() {
                    let room = self.batch_size.saturating_sub(self.staged[w].events).max(1);
                    let take = room.min(seg.len());
                    let staged = &mut self.staged[w];
                    match staged.items.last_mut() {
                        Some(Delivery::Run(run)) => run.extend_from_slice(&seg[..take]),
                        _ => staged.items.push(Delivery::Run(seg[..take].to_vec())),
                    }
                    staged.events += take;
                    if staged.events >= self.batch_size {
                        self.dispatch(w)?;
                    }
                    seg = &seg[take..];
                }
            }
        } else {
            for (source, tuple) in events {
                match self.route(*source, tuple)? {
                    Routed::One(w) => {
                        self.stage_full(w, *source, tuple.clone())?;
                    }
                    Routed::Split { free, stateful } => {
                        self.stage_cone(free, ConeScope::Stateless, *source, tuple.clone())?;
                        self.stage_cone(stateful, ConeScope::Stateful, *source, tuple.clone())?;
                    }
                }
            }
        }
        self.accepted += events.len() as u64;
        Ok(())
    }

    /// [`StreamingShardedRuntime::push_batch`] with ownership handoff: the
    /// caller gives the pool a refcounted batch, and no per-tuple clone
    /// happens anywhere. Fully stateless schemes ship each worker a
    /// *range* of that one allocation — the zero-copy equivalent of
    /// [`ShardedRuntime::push_batch`]'s contiguous-segment path. Keyed,
    /// pinned, and split schemes route per event but ship each worker a
    /// scope-tagged *index selection* of the same shared allocation
    /// (`Delivery::SharedTagged`): one refcount bump per delivery
    /// message instead of one tuple clone per event, and the worker feeds
    /// its selection through the chunked batch machinery
    /// ([`ExecutablePlan::push_batch_indexed`]). Prefer this entry point
    /// whenever the batch is already an owned allocation.
    pub fn push_batch_shared(&mut self, events: Arc<Vec<(SourceId, Tuple)>>) -> Result<()> {
        self.ensure_live("push_batch_shared")?;
        if let Some((source, _)) = events
            .iter()
            .find(|(s, _)| s.index() >= self.rr_cursors.len())
        {
            return Err(RumorError::exec(format!("unknown source {source}")));
        }
        let n = self.txs.len();
        if self.all_round_robin && n > 1 {
            for w in 0..n {
                let (lo, hi) = segment(events.len(), n, w);
                let mut off = lo;
                // Chunk the segment at batch-size granularity so queue
                // backpressure keeps its meaning.
                while off < hi {
                    let take = self.batch_size.min(hi - off);
                    let staged = &mut self.staged[w];
                    staged
                        .items
                        .push(Delivery::Shared(events.clone(), off..off + take));
                    staged.events += take;
                    off += take;
                    if staged.events >= self.batch_size {
                        self.dispatch(w)?;
                    }
                }
            }
            self.accepted += events.len() as u64;
            return Ok(());
        }
        if self.all_round_robin {
            // One worker: the whole batch is its segment.
            return self.push_batch_validated(&events);
        }
        // Keyed / pinned / split scheme: per-event routing, zero-copy
        // delivery. Route the whole batch into per-worker tagged index
        // lists first, then stage them in batch-size slices.
        let mut idx_lists: Vec<Vec<(ConeScope, u32)>> = vec![Vec::new(); n];
        for (i, (source, tuple)) in events.iter().enumerate() {
            match self.route(*source, tuple)? {
                Routed::One(w) => idx_lists[w].push((ConeScope::Full, i as u32)),
                Routed::Split { free, stateful } => {
                    idx_lists[free].push((ConeScope::Stateless, i as u32));
                    idx_lists[stateful].push((ConeScope::Stateful, i as u32));
                }
            }
        }
        for (w, list) in idx_lists.into_iter().enumerate() {
            for chunk in list.chunks(self.batch_size) {
                let staged = &mut self.staged[w];
                staged
                    .items
                    .push(Delivery::SharedTagged(events.clone(), chunk.to_vec()));
                staged.events += chunk.len();
                if staged.events >= self.batch_size {
                    self.dispatch(w)?;
                }
            }
        }
        self.accepted += events.len() as u64;
        Ok(())
    }

    /// Dispatches all staged deliveries and blocks until every worker has
    /// drained its queue — a barrier, not a shutdown; the pool keeps
    /// accepting events afterwards. On an empty runtime this is a no-op;
    /// on a finished one it returns [`RumorError::Finished`] like every
    /// other lifecycle call. Acknowledged through per-worker generation
    /// counters, so repeated barriers allocate nothing.
    pub fn flush(&mut self) -> Result<()> {
        self.ensure_live("flush")?;
        for w in 0..self.txs.len() {
            self.dispatch(w)?;
        }
        self.barrier()
    }

    /// Takes and merges everything the worker sinks accumulated since the
    /// last drain (worker 0 first, then [`MergeSink::finalize`]), leaving
    /// fresh default sinks on the workers — the pool keeps running. On a
    /// finished pool, returns the merged final results (once; empty
    /// afterwards).
    ///
    /// The sink handoff is itself a drain barrier: queue FIFO means a
    /// worker ships its sink only after processing every delivery sent
    /// before the `Drain` message, and the blocking `recv` waits for
    /// exactly that — one cross-worker round-trip total, no separate
    /// generation barrier.
    pub fn drain_sink(&mut self) -> Result<S> {
        if self.finished {
            return Ok(self.final_sink.take().unwrap_or_default());
        }
        let mut handoffs = Vec::with_capacity(self.txs.len());
        for w in 0..self.txs.len() {
            self.dispatch(w)?;
            let (stx, srx) = bounded::<S>(1);
            self.txs[w]
                .send(WorkerMsg::Drain(stx))
                .map_err(|_| RumorError::exec(format!("streaming shard worker {w} died")))?;
            handoffs.push(srx);
        }
        let mut acc: Option<S> = None;
        for (w, srx) in handoffs.into_iter().enumerate() {
            let sink = srx
                .recv()
                .map_err(|_| RumorError::exec(format!("streaming shard worker {w} died")))?;
            // The worker has processed everything that preceded the
            // handoff, so any processing error is recorded by now —
            // surface it like the flush barrier would.
            if let Some(msg) = self.gates[w].error() {
                return Err(RumorError::exec(format!(
                    "streaming shard worker {w} failed: {msg}"
                )));
            }
            match &mut acc {
                None => acc = Some(sink),
                Some(into) => into.merge(sink),
            }
        }
        let mut sink = acc.ok_or_else(|| RumorError::exec("no worker sinks".to_string()))?;
        sink.finalize();
        Ok(sink)
    }

    /// Takes the merged final results of a finished pool (empty when
    /// already taken or never finished) — the post-`finish` counterpart
    /// of [`StreamingShardedRuntime::drain_sink`] for callers that track
    /// the lifecycle themselves.
    pub fn take_final_sink(&mut self) -> S {
        self.final_sink.take().unwrap_or_default()
    }

    /// Issues one barrier generation and waits until every worker has
    /// published it (everything previously queued is processed).
    fn barrier(&mut self) -> Result<()> {
        self.flush_gen += 1;
        let g = self.flush_gen;
        for (w, tx) in self.txs.iter().enumerate() {
            tx.send(WorkerMsg::Flush(g))
                .map_err(|_| RumorError::exec(format!("streaming shard worker {w} died")))?;
        }
        for (w, gate) in self.gates.iter().enumerate() {
            if !gate.wait_for(g) {
                return Err(RumorError::exec(format!("streaming shard worker {w} died")));
            }
            // Surface the worker's first error at the barrier instead of
            // letting it silently drop deliveries until `finish`.
            if let Some(msg) = gate.error() {
                return Err(RumorError::exec(format!(
                    "streaming shard worker {w} failed: {msg}"
                )));
            }
        }
        Ok(())
    }

    /// Hot-swaps the pool onto a mutated plan — the epoch protocol of the
    /// dynamic query lifecycle. The pool is **not** restarted:
    ///
    /// 1. **Quiesce** — staged deliveries are dispatched and a flush
    ///    barrier drains every worker's queue, so the old epoch's events
    ///    are fully processed under the old plan.
    /// 2. **Install** — every worker receives the new plan and applies it
    ///    via [`ExecutablePlan::apply_delta`]: operators unchanged since
    ///    the last installed plan keep their instance *and their window/
    ///    sequence/aggregate state*; added or rewired operators start
    ///    cold. The router's partition scheme is re-derived incrementally
    ///    ([`rumor_core::partition::reanalyze`]) — only components the
    ///    change touched are recomputed. The runtime tracks the installed
    ///    plan itself, so every mutation since the last *successful* swap
    ///    is accounted for, including ones whose swap was refused.
    /// 3. **Resume** — a second barrier confirms installation, then
    ///    pushes route under the new scheme (queue FIFO already
    ///    guarantees no event can reach a worker before its swap).
    ///
    /// Fails without touching the pool when the new scheme would re-route
    /// a source feeding surviving stateful state (see the module docs):
    /// that transition needs a fresh pool.
    pub fn update_plan(&mut self, plan: &PlanGraph) -> Result<()> {
        self.ensure_live("update_plan")?;
        let (scheme, reports) = prepare_swap(plan, &self.installed, &self.scheme, &self.reports)?;
        #[cfg(not(feature = "stats-off"))]
        self.trace.record(
            "swap_quiesce",
            format!("draining {} worker queues", self.txs.len()),
        );
        self.flush()?;
        let shared = Arc::new(plan.clone());
        #[cfg(not(feature = "stats-off"))]
        self.trace.record(
            "swap_install",
            format!("delta install on {} workers", self.txs.len()),
        );
        for (w, tx) in self.txs.iter().enumerate() {
            tx.send(WorkerMsg::Update(Arc::clone(&shared)))
                .map_err(|_| RumorError::exec(format!("streaming shard worker {w} died")))?;
        }
        self.barrier()?;
        #[cfg(not(feature = "stats-off"))]
        self.trace
            .record("swap_resume", "routing under new scheme".to_string());
        self.all_round_robin = scheme
            .routes()
            .iter()
            .all(|r| matches!(r, SourceRoute::RoundRobin));
        self.rr_cursors.resize(scheme.routes().len(), 0);
        self.scheme = scheme;
        self.reports = reports;
        self.installed = plan.snapshot();
        Ok(())
    }

    /// Shuts the pool down: dispatches staged deliveries, joins every
    /// worker, and folds the per-worker sinks (worker 0 first) into the
    /// final, finalized sink. Worker errors (or panics) surface here.
    fn shutdown(&mut self) -> Result<S> {
        self.finished = true;
        for w in 0..self.txs.len() {
            self.dispatch(w)?;
        }
        // Dropping the senders disconnects the queues; workers exit after
        // draining them.
        self.txs.clear();
        let mut acc: Option<S> = None;
        let mut first_error: Option<RumorError> = None;
        let mut final_exec = ExecStatsReport::default();
        for (w, handle) in self.handles.drain(..).enumerate() {
            match handle.join() {
                Ok(outcome) => {
                    if first_error.is_none() {
                        first_error = outcome.error;
                    }
                    self.worker_events.push(outcome.events_in);
                    final_exec.absorb(&outcome.stats);
                    match &mut acc {
                        None => acc = Some(outcome.sink),
                        Some(sink) => sink.merge(outcome.sink),
                    }
                }
                Err(_) => {
                    if first_error.is_none() {
                        first_error = Some(RumorError::exec(format!(
                            "streaming shard worker {w} panicked"
                        )));
                    }
                }
            }
        }
        self.final_exec = Some(final_exec);
        if let Some(e) = first_error {
            return Err(e);
        }
        let mut sink = acc.ok_or_else(|| RumorError::exec("no worker sinks".to_string()))?;
        sink.finalize();
        Ok(sink)
    }
}

impl<S: MergeSink + Default + Send + 'static> EventRuntime for StreamingShardedRuntime<S> {
    fn push(&mut self, source: SourceId, tuple: Tuple) -> Result<()> {
        StreamingShardedRuntime::push(self, source, tuple)
    }

    fn push_batch(&mut self, events: &[(SourceId, Tuple)]) -> Result<()> {
        StreamingShardedRuntime::push_batch(self, events)
    }

    fn push_batch_shared(&mut self, events: Arc<Vec<(SourceId, Tuple)>>) -> Result<()> {
        StreamingShardedRuntime::push_batch_shared(self, events)
    }

    fn flush(&mut self) -> Result<()> {
        StreamingShardedRuntime::flush(self)
    }

    fn finish(&mut self) -> Result<()> {
        self.ensure_live("finish")?;
        let sink = self.shutdown()?;
        self.final_sink = Some(sink);
        Ok(())
    }

    fn update_plan(&mut self, plan: &PlanGraph) -> Result<()> {
        StreamingShardedRuntime::update_plan(self, plan)
    }
}

impl<S: MergeSink + Default + Send + 'static> Drop for StreamingShardedRuntime<S> {
    fn drop(&mut self) {
        // Disconnect and reap the workers so no thread outlives the pool;
        // staged-but-undispatched deliveries are discarded (results were
        // never observable without `finish`).
        self.txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::{LogicalPlan, Optimizer, OptimizerConfig, SeqSpec, SourceRoute, Verdict};
    use rumor_expr::{CmpOp, Expr, Predicate};
    use rumor_types::{QueryId, Schema};

    fn optimized(queries: &[LogicalPlan]) -> (PlanGraph, Vec<QueryId>) {
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(3), None).unwrap();
        plan.add_source("T", Schema::ints(3), None).unwrap();
        let qs = queries.iter().map(|q| plan.add_query(q).unwrap()).collect();
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();
        (plan, qs)
    }

    fn interleaved(plan: &PlanGraph, n: u64) -> Vec<(SourceId, Tuple)> {
        let s = plan.source_by_name("S").unwrap().id;
        let t = plan.source_by_name("T").unwrap().id;
        (0..n)
            .map(|ts| {
                let src = if ts % 2 == 0 { s } else { t };
                (
                    src,
                    Tuple::ints(ts, &[(ts % 5) as i64, (ts % 3) as i64, ts as i64]),
                )
            })
            .collect()
    }

    fn reference(plan: &PlanGraph, events: &[(SourceId, Tuple)]) -> CollectingSink {
        let mut exec = ExecutablePlan::new(plan).unwrap();
        let mut sink = CollectingSink::default();
        for (src, t) in events {
            exec.push(*src, t.clone(), &mut sink).unwrap();
        }
        sink
    }

    fn sorted_of(sink: &CollectingSink, q: QueryId) -> Vec<String> {
        let mut v: Vec<String> = sink.of(q).iter().map(|t| t.to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn stateless_plan_round_robins_and_matches() {
        let (plan, qs) = optimized(&[
            LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 1i64)),
            LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 2i64)),
        ]);
        let events = interleaved(&plan, 60);
        let want = reference(&plan, &events);
        for n in [1, 2, 4] {
            let mut rt: ShardedRuntime<CollectingSink> = ShardedRuntime::new(&plan, n).unwrap();
            assert_eq!(rt.scheme().count(Verdict::Stateless), 2);
            rt.push_batch(&events).unwrap();
            assert_eq!(rt.events_in(), 60);
            if n > 1 {
                let per_worker = rt.worker_events();
                assert!(per_worker.iter().all(|&e| e > 0), "{per_worker:?}");
            }
            let got = rt.drain_sink();
            for &q in &qs {
                assert_eq!(sorted_of(&got, q), sorted_of(&want, q), "n={n}");
            }
        }
    }

    #[test]
    fn keyed_sequence_partitions_by_hash() {
        let (plan, qs) = optimized(&[LogicalPlan::source("S")
            .select(Predicate::attr_eq_const(1, 0i64))
            .followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                    window: 20,
                },
            )]);
        let events = interleaved(&plan, 120);
        let want = reference(&plan, &events);
        let mut rt: ShardedRuntime<CollectingSink> = ShardedRuntime::new(&plan, 4).unwrap();
        assert_eq!(rt.scheme().count(Verdict::Keyed), 1);
        let s = plan.source_by_name("S").unwrap().id;
        assert_eq!(*rt.scheme().route(s), SourceRoute::Key(vec![0]));
        rt.push_batch(&events).unwrap();
        let got = rt.drain_sink();
        assert!(!want.results.is_empty());
        for &q in &qs {
            assert_eq!(sorted_of(&got, q), sorted_of(&want, q));
        }
    }

    #[test]
    fn unkeyed_sequence_pins_to_worker_zero() {
        let (plan, qs) = optimized(&[LogicalPlan::source("S").followed_by(
            LogicalPlan::source("T"),
            SeqSpec {
                predicate: Predicate::cmp(CmpOp::Lt, Expr::col(2), Expr::rcol(2)),
                window: 10,
            },
        )]);
        let events = interleaved(&plan, 80);
        let want = reference(&plan, &events);
        let mut rt: ShardedRuntime<CollectingSink> = ShardedRuntime::new(&plan, 4).unwrap();
        assert_eq!(rt.scheme().count(Verdict::Pinned), 1);
        assert!(!rt.is_parallelizable());
        rt.push_batch(&events).unwrap();
        assert_eq!(rt.worker_events(), vec![80, 0, 0, 0]);
        let got = rt.drain_sink();
        for &q in &qs {
            assert_eq!(sorted_of(&got, q), sorted_of(&want, q));
        }
    }

    #[test]
    fn push_and_push_batch_agree() {
        let (plan, qs) = optimized(&[
            LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 3i64)),
            LogicalPlan::source("S")
                .select(Predicate::attr_eq_const(1, 1i64))
                .followed_by(
                    LogicalPlan::source("T"),
                    SeqSpec {
                        predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                        window: 15,
                    },
                ),
        ]);
        let events = interleaved(&plan, 90);
        let mut a: ShardedRuntime<CollectingSink> = ShardedRuntime::new(&plan, 3).unwrap();
        for (src, t) in &events {
            a.push(*src, t.clone()).unwrap();
        }
        let mut b: ShardedRuntime<CollectingSink> = ShardedRuntime::new(&plan, 3).unwrap();
        b.push_batch(&events).unwrap();
        let (a, b) = (a.drain_sink(), b.drain_sink());
        for &q in &qs {
            assert_eq!(sorted_of(&a, q), sorted_of(&b, q));
        }
    }

    #[test]
    fn single_worker_results_obey_merge_order() {
        // With n = 1 no merge runs; finalize must still establish the
        // (ts, query) contract order, which the hybrid drain's phase split
        // (batched stateless results first, strict results after) breaks.
        let (plan, _) = optimized(&[
            LogicalPlan::source("S").select(Predicate::True),
            LogicalPlan::source("S").followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                    window: 20,
                },
            ),
        ]);
        let events = interleaved(&plan, 60);
        let mut rt: ShardedRuntime<CollectingSink> = ShardedRuntime::new(&plan, 1).unwrap();
        rt.push_batch(&events).unwrap();
        let results = rt.drain_sink().results;
        assert!(!results.is_empty());
        let keys: Vec<(u64, u32)> = results.iter().map(|(q, t)| (t.ts, q.0)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "n=1 results must be (ts, query)-sorted");
    }

    #[test]
    fn unknown_source_fails_before_processing() {
        let (plan, _) = optimized(&[LogicalPlan::source("S").select(Predicate::True)]);
        let mut rt: ShardedRuntime<CountingSink> = ShardedRuntime::new(&plan, 2).unwrap();
        let s = plan.source_by_name("S").unwrap().id;
        let events = vec![
            (s, Tuple::ints(0, &[1, 0, 0])),
            (SourceId(9), Tuple::ints(1, &[1, 0, 0])),
        ];
        assert!(rt.push_batch(&events).is_err());
        assert_eq!(rt.events_in(), 0);
    }

    #[test]
    fn streaming_matches_one_shot_across_worker_counts() {
        let (plan, qs) = optimized(&[
            LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 1i64)),
            LogicalPlan::source("S")
                .select(Predicate::attr_eq_const(1, 1i64))
                .followed_by(
                    LogicalPlan::source("T"),
                    SeqSpec {
                        predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                        window: 15,
                    },
                ),
        ]);
        let events = interleaved(&plan, 120);
        let want = reference(&plan, &events);
        for n in [1usize, 2, 4] {
            let mut rt: StreamingShardedRuntime<CollectingSink> =
                StreamingShardedRuntime::with_config(
                    &plan,
                    n,
                    StreamingConfig {
                        batch_size: 7,
                        queue_depth: 2,
                    },
                )
                .unwrap();
            rt.push_batch(&events).unwrap();
            assert_eq!(rt.events_in(), 120);
            let got = rt.drain_sink().unwrap();
            for &q in &qs {
                assert_eq!(sorted_of(&got, q), sorted_of(&want, q), "n={n}");
            }
        }
    }

    #[test]
    fn streaming_shared_batch_matches_reference_on_both_paths() {
        // Stateless plan: zero-copy segment path. Keyed plan: per-event
        // fallback off the shared allocation. Both must match per-event.
        for queries in [
            vec![
                LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 1i64)),
                LogicalPlan::source("T").select(Predicate::attr_eq_const(1, 2i64)),
            ],
            vec![LogicalPlan::source("S")
                .select(Predicate::attr_eq_const(1, 0i64))
                .followed_by(
                    LogicalPlan::source("T"),
                    SeqSpec {
                        predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                        window: 20,
                    },
                )],
        ] {
            let (plan, qs) = optimized(&queries);
            let events = interleaved(&plan, 100);
            let want = reference(&plan, &events);
            let mut rt: StreamingShardedRuntime<CollectingSink> =
                StreamingShardedRuntime::with_config(
                    &plan,
                    3,
                    StreamingConfig {
                        batch_size: 16,
                        queue_depth: 2,
                    },
                )
                .unwrap();
            // Mix the shared entry point with staged per-event pushes to
            // check ordering across delivery kinds.
            rt.push_batch_shared(Arc::new(events[..40].to_vec()))
                .unwrap();
            for (src, t) in &events[40..60] {
                rt.push(*src, t.clone()).unwrap();
            }
            rt.push_batch_shared(Arc::new(events[60..].to_vec()))
                .unwrap();
            assert_eq!(rt.events_in(), 100);
            let got = rt.drain_sink().unwrap();
            for &q in &qs {
                assert_eq!(sorted_of(&got, q), sorted_of(&want, q));
            }
        }
    }

    #[test]
    fn streaming_interleaved_pushes_match_reference() {
        let (plan, qs) = optimized(&[
            LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 2i64)),
            LogicalPlan::source("S").followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: Predicate::cmp(CmpOp::Eq, Expr::col(1), Expr::rcol(1)),
                    window: 12,
                },
            ),
        ]);
        let events = interleaved(&plan, 90);
        let want = reference(&plan, &events);
        let mut rt: StreamingShardedRuntime<CollectingSink> = StreamingShardedRuntime::with_config(
            &plan,
            3,
            StreamingConfig {
                batch_size: 5,
                queue_depth: 2,
            },
        )
        .unwrap();
        // Mix the lifecycle: single pushes, mid-stream flush barriers, and
        // slice pushes of varying size (including empty).
        rt.push_batch(&events[0..10]).unwrap();
        rt.flush().unwrap();
        for (src, t) in &events[10..25] {
            rt.push(*src, t.clone()).unwrap();
        }
        rt.push_batch(&[]).unwrap();
        rt.flush().unwrap();
        rt.flush().unwrap();
        rt.push_batch(&events[25..]).unwrap();
        let got = rt.drain_sink().unwrap();
        for &q in &qs {
            assert_eq!(sorted_of(&got, q), sorted_of(&want, q));
        }
    }

    #[test]
    fn flush_on_empty_runtime_is_a_noop_and_finish_misuse_is_typed() {
        let (plan, _) = optimized(&[LogicalPlan::source("S").select(Predicate::True)]);
        let mut rt: StreamingShardedRuntime<CollectingSink> =
            StreamingShardedRuntime::new(&plan, 2).unwrap();
        // Nothing pushed yet: flush must return cleanly, repeatedly.
        rt.flush().unwrap();
        rt.flush().unwrap();
        let s = plan.source_by_name("S").unwrap().id;
        rt.push(s, Tuple::ints(0, &[1, 0, 0])).unwrap();
        EventRuntime::finish(&mut rt).unwrap();
        // The final results come out of the finished pool exactly once.
        let first = rt.drain_sink().unwrap();
        assert_eq!(first.results.len(), 1);
        assert!(rt.drain_sink().unwrap().results.is_empty());
        // Lifecycle misuse after finish returns the typed error — same
        // variant for every entry point, no panics, no silent no-ops.
        for err in [
            EventRuntime::finish(&mut rt),
            rt.flush(),
            rt.push(s, Tuple::ints(1, &[1, 0, 0])),
            rt.push_batch(&[]),
            rt.update_plan(&plan),
        ] {
            assert!(matches!(err, Err(RumorError::Finished(_))), "{err:?}");
        }
    }

    #[test]
    fn one_shot_finish_misuse_is_typed() {
        let (plan, _) = optimized(&[LogicalPlan::source("S").select(Predicate::True)]);
        let mut rt: ShardedRuntime<CollectingSink> = ShardedRuntime::new(&plan, 2).unwrap();
        let s = plan.source_by_name("S").unwrap().id;
        rt.push(s, Tuple::ints(0, &[1, 0, 0])).unwrap();
        EventRuntime::finish(&mut rt).unwrap();
        assert_eq!(rt.drain_sink().results.len(), 1);
        assert!(rt.drain_sink().results.is_empty(), "drained once");
        for err in [
            EventRuntime::finish(&mut rt),
            EventRuntime::flush(&mut rt),
            rt.push(s, Tuple::ints(1, &[1, 0, 0])),
            rt.push_batch(&[]),
            rt.update_plan(&plan),
        ] {
            assert!(matches!(err, Err(RumorError::Finished(_))), "{err:?}");
        }
    }

    #[test]
    fn streaming_mid_stream_drain_keeps_pool_live() {
        // drain_sink is a delivery point, not a shutdown: results drained
        // mid-stream plus results drained at the end must equal the
        // one-shot total, and the pool keeps accepting events in between.
        let (plan, qs) =
            optimized(&[LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 1i64))]);
        let events = interleaved(&plan, 80);
        let want = reference(&plan, &events);
        let mut rt: StreamingShardedRuntime<CollectingSink> = StreamingShardedRuntime::with_config(
            &plan,
            3,
            StreamingConfig {
                batch_size: 4,
                queue_depth: 2,
            },
        )
        .unwrap();
        rt.push_batch(&events[..30]).unwrap();
        let mut got = rt.drain_sink().unwrap();
        rt.push_batch(&events[30..]).unwrap();
        got.merge(rt.drain_sink().unwrap());
        assert!(rt.push(SourceId(9), Tuple::ints(999, &[0, 0, 0])).is_err());
        EventRuntime::finish(&mut rt).unwrap();
        got.merge(rt.drain_sink().unwrap());
        for &q in &qs {
            assert_eq!(sorted_of(&got, q), sorted_of(&want, q));
        }
    }

    #[test]
    fn streaming_unknown_source_fails_before_staging() {
        let (plan, _) = optimized(&[LogicalPlan::source("S").select(Predicate::True)]);
        let mut rt: StreamingShardedRuntime<CountingSink> =
            StreamingShardedRuntime::new(&plan, 2).unwrap();
        let s = plan.source_by_name("S").unwrap().id;
        let events = vec![
            (s, Tuple::ints(0, &[1, 0, 0])),
            (SourceId(9), Tuple::ints(1, &[1, 0, 0])),
        ];
        assert!(rt.push_batch(&events).is_err());
        assert_eq!(rt.events_in(), 0);
        assert!(rt.push(SourceId(9), Tuple::ints(2, &[1, 0, 0])).is_err());
        assert_eq!(rt.drain_sink().unwrap().total, 0);
    }

    #[test]
    fn streaming_backpressure_bounded_queues_still_drain() {
        // Tiny queues + tiny batches: pushes must block-and-resume rather
        // than error or drop, and every event must come out the other end.
        let (plan, _) = optimized(&[LogicalPlan::source("S").select(Predicate::True)]);
        let events = interleaved(&plan, 500);
        let mut rt: StreamingShardedRuntime<CountingSink> = StreamingShardedRuntime::with_config(
            &plan,
            2,
            StreamingConfig {
                batch_size: 1,
                queue_depth: 1,
            },
        )
        .unwrap();
        rt.push_batch(&events).unwrap();
        let got = rt.drain_sink().unwrap();
        // Every S event (even ts) passes the TRUE-selection.
        assert_eq!(got.total, 250);
    }

    #[test]
    fn pinned_split_routes_stateless_siblings_across_workers() {
        // An unkeyed sequence pins the S/T component, but the stateless
        // select on S must still round-robin: worker 0 gets every tuple's
        // stateful leg, the stateless legs spread across all workers.
        let (plan, qs) = optimized(&[
            LogicalPlan::source("S").followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: Predicate::cmp(CmpOp::Lt, Expr::col(2), Expr::rcol(2)),
                    window: 10,
                },
            ),
            LogicalPlan::source("S").select(Predicate::True),
        ]);
        let events = interleaved(&plan, 80);
        let want = reference(&plan, &events);
        let s = plan.source_by_name("S").unwrap().id;
        let t = plan.source_by_name("T").unwrap().id;
        for n in [2usize, 4] {
            let mut rt: ShardedRuntime<CollectingSink> = ShardedRuntime::new(&plan, n).unwrap();
            assert_eq!(*rt.scheme().route(s), SourceRoute::PinnedSplit);
            assert_eq!(*rt.scheme().route(t), SourceRoute::Pinned);
            assert!(rt.is_parallelizable());
            rt.push_batch(&events).unwrap();
            assert_eq!(rt.events_in(), 80, "split deliveries must count once");
            let per_worker = rt.worker_events();
            assert!(
                per_worker[1..].iter().any(|&e| e > 0),
                "stateless legs must leave worker 0: {per_worker:?}"
            );
            let got = rt.drain_sink();
            for &q in &qs {
                assert_eq!(sorted_of(&got, q), sorted_of(&want, q), "n={n}");
            }
        }
    }

    #[test]
    fn streaming_update_plan_hot_swaps_without_pool_restart() {
        // The acceptance pin: a windowed (keyed) sequence query keeps
        // matching across an unrelated add and remove on a *running*
        // streaming pool — no teardown, no lost in-flight state.
        use rumor_core::Optimizer as Opt;
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(3), None).unwrap();
        plan.add_source("T", Schema::ints(3), None).unwrap();
        let q_seq = plan
            .add_query(
                &LogicalPlan::source("S")
                    .select(Predicate::attr_eq_const(1, 0i64))
                    .followed_by(
                        LogicalPlan::source("T"),
                        SeqSpec {
                            predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                            window: 60,
                        },
                    ),
            )
            .unwrap();
        let q_sel = plan
            .add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 1i64)))
            .unwrap();
        let optimizer = Opt::new(OptimizerConfig::default());
        optimizer.optimize(&mut plan).unwrap();
        let original = plan.clone();
        let events = interleaved(&plan, 180);

        let mut rt: StreamingShardedRuntime<CollectingSink> = StreamingShardedRuntime::with_config(
            &plan,
            3,
            StreamingConfig {
                batch_size: 7,
                queue_depth: 2,
            },
        )
        .unwrap();
        rt.push_batch(&events[..60]).unwrap();
        let added = optimizer
            .integrate(
                &mut plan,
                &LogicalPlan::source("S").select(Predicate::attr_eq_const(1, 2i64)),
            )
            .unwrap();
        rt.update_plan(&plan).unwrap();
        rt.push_batch(&events[60..120]).unwrap();
        plan.remove_query(added.query).unwrap();
        rt.update_plan(&plan).unwrap();
        rt.push_batch(&events[120..]).unwrap();
        let got = rt.drain_sink().unwrap();

        // Oracle for the surviving queries: the original plan over the
        // whole history in one uninterrupted life.
        let want = reference(&original, &events);
        assert!(!want.of(q_seq).is_empty());
        assert!(
            want.of(q_seq).iter().any(|tu| tu.ts >= 60),
            "matches must span the swaps"
        );
        for q in [q_seq, q_sel] {
            assert_eq!(sorted_of(&got, q), sorted_of(&want, q));
        }
        // The transient query observed exactly its lifetime's events.
        let mid: Vec<&Tuple> = got.of(added.query);
        assert!(!mid.is_empty());
        assert!(mid.iter().all(|tu| (60..120).contains(&tu.ts)));
    }

    #[test]
    fn one_shot_update_plan_hot_swaps_workers() {
        use rumor_core::Optimizer as Opt;
        let (mut plan, qs) = optimized(&[
            LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 1i64)),
            LogicalPlan::source("S").followed_by(
                LogicalPlan::source("T"),
                SeqSpec {
                    predicate: Predicate::cmp(CmpOp::Eq, Expr::col(1), Expr::rcol(1)),
                    window: 50,
                },
            ),
        ]);
        let original = plan.clone();
        let events = interleaved(&plan, 120);
        let mut rt: ShardedRuntime<CollectingSink> = ShardedRuntime::new(&plan, 3).unwrap();
        rt.push_batch(&events[..60]).unwrap();
        let optimizer = Opt::new(OptimizerConfig::default());
        let added = optimizer
            .integrate(
                &mut plan,
                &LogicalPlan::source("T").select(Predicate::attr_eq_const(0, 3i64)),
            )
            .unwrap();
        rt.update_plan(&plan).unwrap();
        rt.push_batch(&events[60..]).unwrap();
        let got = rt.drain_sink();
        let want = reference(&original, &events);
        for &q in &qs {
            assert_eq!(sorted_of(&got, q), sorted_of(&want, q));
        }
        let mid: Vec<&Tuple> = got.of(added.query);
        assert!(mid.iter().all(|tu| tu.ts >= 60));
        assert!(!mid.is_empty());
    }

    #[test]
    fn update_plan_refuses_rerouting_live_stateful_state() {
        // A keyed S/T component; integrating an ungrouped aggregate on S
        // pins the component — tuples would have to move from hashed
        // workers to worker 0, abandoning the sequence state accumulated
        // under the old routing. The swap must be refused, pool intact.
        use rumor_core::Optimizer as Opt;
        let mut plan = PlanGraph::new();
        plan.add_source("S", Schema::ints(3), None).unwrap();
        plan.add_source("T", Schema::ints(3), None).unwrap();
        plan.add_source("U", Schema::ints(3), None).unwrap();
        plan.add_query(
            &LogicalPlan::source("S")
                .select(Predicate::attr_eq_const(1, 0i64))
                .followed_by(
                    LogicalPlan::source("T"),
                    SeqSpec {
                        predicate: Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                        window: 20,
                    },
                ),
        )
        .unwrap();
        Opt::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();
        let events = interleaved(&plan, 60);
        let mut rt: StreamingShardedRuntime<CollectingSink> =
            StreamingShardedRuntime::new(&plan, 2).unwrap();
        rt.push_batch(&events).unwrap();
        let optimizer = Opt::new(OptimizerConfig::default());
        let added = optimizer
            .integrate(
                &mut plan,
                &LogicalPlan::source("S").aggregate(rumor_core::AggSpec {
                    func: rumor_core::AggFunc::Sum,
                    input: Expr::col(2),
                    group_by: Vec::new(),
                    window: 10,
                }),
            )
            .unwrap();
        let err = rt.update_plan(&plan);
        assert!(err.is_err(), "re-routing keyed → pinned must be refused");

        // The runtime diffs against what it actually installed, so a
        // later swap carrying an *unrelated* mutation must still refuse:
        // accepting it would smuggle the refused aggregate into the
        // workers with a stale keyed route (hash-partitioned partial
        // sums — silent corruption).
        optimizer
            .integrate(
                &mut plan,
                &LogicalPlan::source("U").select(Predicate::attr_eq_const(0, 1i64)),
            )
            .unwrap();
        assert!(
            rt.update_plan(&plan).is_err(),
            "cumulative delta must keep refusing while the offender is resident"
        );

        // Removing the offending query makes the plan installable again.
        plan.remove_query(added.query).unwrap();
        rt.update_plan(&plan).unwrap();
        let s = plan.source_by_name("S").unwrap().id;
        assert!(matches!(rt.scheme().route(s), SourceRoute::Key(_)));

        // The pool survives it all and still finishes cleanly.
        rt.flush().unwrap();
        EventRuntime::finish(&mut rt).unwrap();
    }

    #[test]
    fn counting_sink_merge_folds_counts() {
        let mut a = CountingSink::default();
        a.on_result(QueryId(0), &Tuple::ints(0, &[1]));
        let mut b = CountingSink::default();
        b.on_result(QueryId(0), &Tuple::ints(1, &[1]));
        b.on_result(QueryId(2), &Tuple::ints(1, &[1]));
        a.merge(b);
        assert_eq!(a.count(QueryId(0)), 2);
        assert_eq!(a.count(QueryId(2)), 1);
        assert_eq!(a.total, 3);
    }

    #[test]
    fn collecting_sink_merge_sorts_by_ts_then_query() {
        let mut a = CollectingSink::default();
        a.on_result(QueryId(1), &Tuple::ints(5, &[1]));
        a.on_result(QueryId(0), &Tuple::ints(7, &[2]));
        let mut b = CollectingSink::default();
        b.on_result(QueryId(0), &Tuple::ints(5, &[3]));
        a.merge(b);
        let order: Vec<(u32, u64)> = a.results.iter().map(|(q, t)| (q.0, t.ts)).collect();
        assert_eq!(order, vec![(0, 5), (1, 5), (0, 7)]);
    }
}
