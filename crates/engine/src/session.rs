//! The unified execution API: one [`EventRuntime`] trait over all three
//! engines, one [`SessionBuilder`] to construct them, and a per-query
//! [`Subscription`] layer for result delivery.
//!
//! RUMOR's premise is that *one* shared plan serves every registered
//! query; this module makes the execution surface match. Instead of three
//! runtime types with three incompatible lifecycles, every engine — the
//! single-threaded push engine, the one-shot sharded runtime, and the
//! persistent streaming shard pool — implements the same
//! `push`/`push_batch`/`push_batch_shared`/`flush`/`finish`/`update_plan`
//! trait, and a [`Session`] built by [`crate::Rumor::session`] wraps
//! whichever engine the builder selected behind one result-delivery
//! story:
//!
//! * [`Session::subscribe`] / [`Session::subscribe_named`] hand out a
//!   [`Subscription`] that receives exactly *that* query's results — the
//!   consumer-facing decomposition of the shared plan (each of many users
//!   owns a query; results route back to that user, not into one
//!   monolithic sink).
//! * [`Session::collect_all`] is the escape hatch for everything no
//!   subscriber claimed; the old pass-a-sink-at-every-call surface
//!   survives only as an internal detail beneath it.

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

use rumor_core::{
    render::{render_annotated, share_bar},
    PartitionScheme, PlanGraph,
};
use rumor_types::{Membership, QueryId, Result, RumorError, SourceId, Tuple};

use crate::exec::{CollectingSink, ExecutablePlan, QuerySink};
use crate::shard::{ShardedRuntime, StreamingConfig, StreamingShardedRuntime};
use crate::stats::{
    mode_str, sharing_attribution, trace_json_lines, ExecStatsReport, Histogram, IdBuild, LatAcc,
    QueryStats, RuntimeStats, StatsSnapshot, TraceEvent, TraceRing, TIME_SAMPLE_EVERY,
};

/// The one execution lifecycle every RUMOR engine speaks.
///
/// Implemented by all three engines — [`LocalRuntime`] (the
/// single-threaded push engine), [`ShardedRuntime`] (one-shot partition
/// parallelism), and [`StreamingShardedRuntime`] (the persistent worker
/// pool) — and by [`Session`], which wraps any of them behind the
/// subscription layer. Generic drivers (the conformance harness, the
/// throughput bench) are written once against this trait and run
/// unchanged over every engine.
///
/// Lifecycle contract, identical across implementations:
///
/// * Events are fed with [`EventRuntime::push`] (one tuple),
///   [`EventRuntime::push_batch`] (a timestamp-ordered slice), or
///   [`EventRuntime::push_batch_shared`] (a refcounted batch the
///   streaming pool can ship zero-copy). Timestamps must be globally
///   non-decreasing across all calls.
/// * [`EventRuntime::flush`] is a barrier, not a shutdown: every event
///   accepted so far is fully processed when it returns, and the runtime
///   keeps accepting events afterwards.
/// * [`EventRuntime::finish`] ends the lifecycle. After it, *every*
///   method of this trait — including a second `finish` — returns
///   [`RumorError::Finished`]; no implementation panics or silently
///   no-ops on misuse.
/// * [`EventRuntime::update_plan`] hot-swaps the runtime onto a mutated
///   plan graph (the dynamic query lifecycle): operators untouched since
///   the last installed plan keep their state, and swaps that would
///   re-route tuples away from live stateful state are refused without
///   touching the runtime.
pub trait EventRuntime {
    /// Processes one source tuple.
    fn push(&mut self, source: SourceId, tuple: Tuple) -> Result<()>;

    /// Processes a timestamp-ordered event slice.
    fn push_batch(&mut self, events: &[(SourceId, Tuple)]) -> Result<()>;

    /// [`EventRuntime::push_batch`] with ownership handoff: engines that
    /// can use the shared allocation (the streaming pool ships stateless
    /// schemes per-worker *ranges* of it, zero-copy) do; everyone else
    /// falls back to the plain batched path.
    fn push_batch_shared(&mut self, events: Arc<Vec<(SourceId, Tuple)>>) -> Result<()> {
        self.push_batch(&events)
    }

    /// Drain barrier: blocks until every event accepted so far is fully
    /// processed. The runtime keeps accepting events afterwards.
    fn flush(&mut self) -> Result<()>;

    /// Ends the lifecycle: drains all outstanding work and shuts worker
    /// pools down. Every later call on this runtime (including a second
    /// `finish`) returns [`RumorError::Finished`].
    fn finish(&mut self) -> Result<()>;

    /// Hot-swaps the runtime onto a mutated plan graph, carrying the
    /// state of every operator the change does not touch. Refused (with
    /// an error, runtime untouched) when the change would re-route
    /// tuples away from live stateful state.
    fn update_plan(&mut self, plan: &PlanGraph) -> Result<()>;
}

/// The single-threaded engine behind the [`EventRuntime`] lifecycle: an
/// [`ExecutablePlan`] paired with the sink it feeds. This is the engine a
/// [`Session`] runs when the builder's worker count is omitted — and the
/// reference semantics every parallel engine must reproduce.
pub struct LocalRuntime<S: QuerySink + Default> {
    exec: ExecutablePlan,
    sink: S,
    finished: bool,
}

impl<S: QuerySink + Default> LocalRuntime<S> {
    /// Compiles `plan` into a single-threaded runtime with a default sink.
    pub fn new(plan: &PlanGraph) -> Result<Self> {
        Ok(LocalRuntime {
            exec: ExecutablePlan::new(plan)?,
            sink: S::default(),
            finished: false,
        })
    }

    fn ensure_live(&self, op: &str) -> Result<()> {
        if self.finished {
            return Err(RumorError::finished(op));
        }
        Ok(())
    }

    /// Source events accepted so far.
    pub fn events_in(&self) -> u64 {
        self.exec.events_in
    }

    /// Takes everything the sink accumulated since the last drain,
    /// leaving a fresh default sink in place. Valid after
    /// [`EventRuntime::finish`] (that is how the final results get out).
    pub fn drain_sink(&mut self) -> S {
        std::mem::take(&mut self.sink)
    }

    /// Pushes one channel tuple on a channel-group source (Workload 3's
    /// input shape): `membership` says which of the group's streams the
    /// tuple belongs to. Channel input is a single-threaded capability —
    /// the partition router has no channel routes.
    pub fn push_channel(
        &mut self,
        source: SourceId,
        tuple: Tuple,
        membership: Membership,
    ) -> Result<()> {
        self.ensure_live("push_channel")?;
        self.exec
            .push_channel(source, tuple, membership, &mut self.sink)
    }
}

impl<S: QuerySink + Default> EventRuntime for LocalRuntime<S> {
    fn push(&mut self, source: SourceId, tuple: Tuple) -> Result<()> {
        self.ensure_live("push")?;
        self.exec.push(source, tuple, &mut self.sink)
    }

    fn push_batch(&mut self, events: &[(SourceId, Tuple)]) -> Result<()> {
        self.ensure_live("push_batch")?;
        self.exec.push_batch(events, &mut self.sink)
    }

    fn flush(&mut self) -> Result<()> {
        // The single-threaded engine drains every push inline; the
        // barrier is trivially satisfied.
        self.ensure_live("flush")
    }

    fn finish(&mut self) -> Result<()> {
        self.ensure_live("finish")?;
        self.finished = true;
        Ok(())
    }

    fn update_plan(&mut self, plan: &PlanGraph) -> Result<()> {
        self.ensure_live("update_plan")?;
        self.exec.apply_delta(plan)
    }
}

// ----------------------------------------------------------------------
// The session builder.
// ----------------------------------------------------------------------

/// Plain-data description of a session's engine choice — everything
/// [`SessionBuilder`] configures, as a value. Useful for table-driven
/// harnesses that run one generic driver over many engine configurations
/// (`engine.session().config(cfg).build()?`).
#[derive(Debug, Clone, Default)]
pub struct SessionConfig {
    /// Worker count. `None` selects the single-threaded engine.
    pub workers: Option<usize>,
    /// With `workers` set: use the one-shot sharded runtime (scoped
    /// threads per batch call) instead of the persistent streaming pool.
    pub one_shot: bool,
    /// With `workers` set and `one_shot` false: tuning for the streaming
    /// pool (staging batch size, queue depth). `None` uses the defaults.
    pub streaming: Option<StreamingConfig>,
}

/// Builds a [`Session`] over the engine's current (optimized) plan.
///
/// Constructed by [`crate::Rumor::session`]; the chain picks the engine:
///
/// ```text
/// engine.session().build()?                          // single-threaded
/// engine.session().workers(4).build()?               // streaming pool, 4 workers
/// engine.session().workers(4).streaming(cfg).build()?// ... with explicit tuning
/// engine.session().workers(4).one_shot().build()?    // one-shot sharded
/// ```
///
/// **Which engine should I pick?** Omit [`SessionBuilder::workers`]
/// (single-threaded) unless there are physical cores to spare: on one
/// core the parallel engines only measure their routing overhead. With
/// cores available, prefer `workers(n)` — the *persistent streaming
/// pool* — whenever events arrive continuously or in small batches:
/// long-lived workers behind bounded queues amortize thread costs over
/// the session's whole lifetime and give backpressure instead of
/// unbounded buffering. Add [`SessionBuilder::one_shot`] only when the
/// entire input is already in memory as a few large batches; it spawns
/// scoped worker threads per `push_batch` call, which is cheaper than a
/// pool it would barely use but recurs on every call. Either way the
/// shared plan is cloned per worker and tuples are routed by the static
/// partitioning analysis (round-robin for stateless components, hashed
/// on consistent keys for key-partitionable ones, worker 0 for pinned
/// stateful subgraphs); results are identical across all engines.
///
/// **Batched input is self-tuning.** Every engine compiles its plan with
/// a per-component *adaptive dispatch gate* ([`crate::BatchProfile`]):
/// components whose operators opt into batch dispatch start on the
/// batched path, and the gate keeps a decaying per-event-cost estimate
/// for both dispatch styles, probing the road not taken on a sparse
/// schedule — and only ever on a capped sub-chunk, so trying the losing
/// style costs a bounded slice of one chunk — until the choice freezes.
/// Feeding input through
/// [`EventRuntime::push_batch`] (or `push_batch_shared`) therefore never
/// commits a workload to a dispatch style that measures slower than
/// per-event on this host — the gate converges to whichever is cheaper,
/// per component, with zero effect on results. Keyed and pinned schemes
/// additionally ship batches to workers as index lists into one shared
/// allocation instead of per-worker tuple copies, so the parallel
/// engines' routing cost no longer scales with tuple width.
///
/// **Observability.** Every session keeps always-on runtime counters:
/// [`Session::stats`] returns a [`StatsSnapshot`] (per-m-op dispatch
/// counters and state sizes, adaptive-gate state, queue pressure,
/// per-query delivery counts, sharing attribution) and
/// [`Session::explain`] renders the live plan annotated with them.
/// Snapshot semantics follow the delivery barriers: on the
/// single-threaded session counters are exact after every push; on the
/// parallel sessions a `stats()` call on a live pool is itself a
/// barrier-consistent read (staged deliveries are dispatched first and
/// each worker reports in queue order, so the snapshot reflects every
/// event accepted before the call), and per-query emitted counts advance
/// at the flush/finish delivery points. After [`EventRuntime::finish`]
/// the final counters stay readable indefinitely. The counters can be
/// compiled out wholesale with the engine crate's `stats-off` feature;
/// snapshots then report zeros but keep their shape.
///
/// **Time-domain sampling and overhead.** Wall-clock measurements are
/// *sampled*, never per-event: one operator dispatch in
/// [`crate::stats::TIME_SAMPLE_EVERY`] (64) is bracketed with `Instant`
/// reads, and one `push` in 64 takes an ingest mark that subsequent
/// deliveries measure latency against (batch entry points mark once per
/// batch). The unsampled fast path pays a counter mask and a branch —
/// measured overhead of the whole stats layer, timing included, is
/// within ~2% of a `stats-off` build on the hottest single-threaded
/// path (see ROADMAP's measured numbers). The trade-off: per-op time
/// attribution ([`crate::OpStats::est_nanos`]) is an estimate scaled
/// from 1/64 of dispatches, and latency histograms resolve sampled
/// queue+processing delay, not every individual tuple's — both converge
/// quickly on steady workloads. Barrier latencies (`flush`,
/// `update_plan`) are exact; they are control-plane and record even
/// under `stats-off`.
#[must_use = "a session builder does nothing until `.build()`"]
pub struct SessionBuilder<'a> {
    plan: &'a PlanGraph,
    names: HashMap<String, QueryId>,
    config: SessionConfig,
}

impl<'a> SessionBuilder<'a> {
    pub(crate) fn new(plan: &'a PlanGraph, names: HashMap<String, QueryId>) -> Self {
        SessionBuilder {
            plan,
            names,
            config: SessionConfig::default(),
        }
    }

    /// Runs the session on `n` parallel workers (default: the persistent
    /// streaming pool). Omit for the single-threaded engine.
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = Some(n);
        self
    }

    /// Explicit streaming-pool tuning (staging batch size, queue depth).
    /// Requires [`SessionBuilder::workers`].
    pub fn streaming(mut self, config: StreamingConfig) -> Self {
        self.config.streaming = Some(config);
        self
    }

    /// Selects the one-shot sharded runtime (scoped threads per batch
    /// call) instead of the streaming pool. Requires
    /// [`SessionBuilder::workers`].
    pub fn one_shot(mut self) -> Self {
        self.config.one_shot = true;
        self
    }

    /// Replaces the whole configuration at once (table-driven harnesses).
    pub fn config(mut self, config: SessionConfig) -> Self {
        self.config = config;
        self
    }

    /// Compiles the session. Fails on contradictory configuration
    /// (`one_shot` or `streaming` without `workers`, or both together)
    /// and on plan compilation errors.
    pub fn build(self) -> Result<Session> {
        let backend = match self.config.workers {
            None => {
                if self.config.one_shot {
                    return Err(RumorError::plan(
                        "one_shot() requires workers(n)".to_string(),
                    ));
                }
                if self.config.streaming.is_some() {
                    return Err(RumorError::plan(
                        "streaming(cfg) requires workers(n)".to_string(),
                    ));
                }
                Backend::Local(Box::new(LocalRuntime::new(self.plan)?))
            }
            Some(n) => {
                if self.config.one_shot {
                    if self.config.streaming.is_some() {
                        return Err(RumorError::plan(
                            "one_shot() sessions take no streaming(cfg)".to_string(),
                        ));
                    }
                    Backend::OneShot(Box::new(ShardedRuntime::new(self.plan, n)?))
                } else {
                    let cfg = self.config.streaming.unwrap_or_default();
                    Backend::Streaming(Box::new(StreamingShardedRuntime::with_config(
                        self.plan, n, cfg,
                    )?))
                }
            }
        };
        Ok(Session {
            backend,
            names: self.names,
            subs: HashMap::default(),
            unclaimed: Vec::new(),
            plan: self.plan.clone(),
            latency: HashMap::default(),
            ingest_mark: None,
            mark_fresh: false,
            cached_latency: 0,
            push_count: 0,
            flush_hist: Histogram::new(),
            update_hist: Histogram::new(),
            flight: TraceRing::default(),
        })
    }
}

// ----------------------------------------------------------------------
// The session and its subscription layer.
// ----------------------------------------------------------------------

/// The per-query buffer a [`Subscription`] handle and its session share.
struct SubChannel {
    query: QueryId,
    buf: Mutex<VecDeque<Tuple>>,
}

/// One query's slot in the session's subscription map: the weak channel
/// handle plus that query's latency accumulator. Keeping the accumulator
/// *in the entry* means the delivery hot path records latency with the
/// same map probe it already pays to find the channel — no second
/// per-tuple hash lookup. (Under `stats-off` the accumulator is dead
/// weight that is never touched.)
struct SubEntry {
    chan: Weak<SubChannel>,
    lat: LatAcc,
}

/// A handle to one query's result stream (from [`Session::subscribe`]).
///
/// Results the session delivers for this query land here instead of in
/// [`Session::collect_all`]'s catch-all. Drain them with
/// [`Subscription::drain`] or iterate the handle directly (the iterator
/// is non-blocking: it ends when the buffer is currently empty and
/// resumes yielding once more results are delivered).
///
/// **Unsubscribing** is dropping the handle (or calling the explicit
/// [`Subscription::unsubscribe`]): the session notices on the next
/// delivery and routes the query's further results back to the
/// catch-all. At most one subscription per query is live at a time — a
/// newer [`Session::subscribe`] for the same query supersedes the old
/// handle, which keeps what it already received but gets nothing new.
#[must_use = "dropping a subscription unsubscribes it; hold it to receive results"]
pub struct Subscription {
    chan: Arc<SubChannel>,
}

impl Subscription {
    /// The subscribed query.
    pub fn query(&self) -> QueryId {
        self.chan.query
    }

    /// Takes every result delivered since the last drain, in delivery
    /// order.
    pub fn drain(&mut self) -> Vec<Tuple> {
        std::mem::take(&mut *self.chan.buf.lock().expect("subscription poisoned")).into()
    }

    /// Takes the oldest undrained result, if one is buffered.
    pub fn try_next(&mut self) -> Option<Tuple> {
        self.chan
            .buf
            .lock()
            .expect("subscription poisoned")
            .pop_front()
    }

    /// Currently buffered (undrained) result count.
    pub fn len(&self) -> usize {
        self.chan.buf.lock().expect("subscription poisoned").len()
    }

    /// Whether nothing is currently buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Explicit unsubscribe — equivalent to dropping the handle: the
    /// query's further results go to [`Session::collect_all`].
    pub fn unsubscribe(self) {}
}

impl Iterator for Subscription {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        self.try_next()
    }
}

enum Backend {
    /// Boxed: the single-threaded runtime embeds the whole executable
    /// plan (per-component scratch, dispatch profiles), dwarfing the
    /// handle-sized parallel variants.
    Local(Box<LocalRuntime<CollectingSink>>),
    /// Boxed too: both shard runtimes carry routing state, staging
    /// buffers, and (streaming) a flight-recorder ring.
    OneShot(Box<ShardedRuntime<CollectingSink>>),
    Streaming(Box<StreamingShardedRuntime<CollectingSink>>),
}

impl Backend {
    /// Barrier + drain on a *live* engine — the mid-stream delivery
    /// point. Pulls everything accumulated since the last drain (for the
    /// parallel engines: merged across workers, worker 0 first, then
    /// `(ts, query)`-normalized by `MergeSink::finalize`). Returns the
    /// typed [`RumorError::Finished`] after `finish`, like every other
    /// lifecycle call.
    fn drain_live(&mut self) -> Result<CollectingSink> {
        match self {
            // `flush` doubles as the liveness check on the engines whose
            // barrier is free (both run workers synchronously inside the
            // push calls).
            Backend::Local(rt) => {
                rt.flush()?;
                Ok(rt.drain_sink())
            }
            Backend::OneShot(rt) => {
                EventRuntime::flush(rt.as_mut())?;
                Ok(rt.drain_sink())
            }
            // The streaming sink handoff is itself a drain barrier (queue
            // FIFO + blocking recv) — one cross-worker round-trip; a
            // separate flush here would pay a second one.
            Backend::Streaming(rt) => {
                if rt.is_finished() {
                    return Err(RumorError::finished("flush"));
                }
                rt.drain_sink()
            }
        }
    }

    /// The final drain after a successful `finish` (lifecycle checks
    /// already passed): whatever the shutdown engine still holds.
    fn drain_final(&mut self) -> CollectingSink {
        match self {
            Backend::Local(rt) => rt.drain_sink(),
            Backend::OneShot(rt) => rt.drain_sink(),
            Backend::Streaming(rt) => rt.take_final_sink(),
        }
    }
}

impl EventRuntime for Backend {
    fn push(&mut self, source: SourceId, tuple: Tuple) -> Result<()> {
        match self {
            Backend::Local(rt) => rt.push(source, tuple),
            Backend::OneShot(rt) => rt.push(source, tuple),
            Backend::Streaming(rt) => rt.push(source, tuple),
        }
    }

    fn push_batch(&mut self, events: &[(SourceId, Tuple)]) -> Result<()> {
        match self {
            Backend::Local(rt) => rt.push_batch(events),
            Backend::OneShot(rt) => rt.push_batch(events),
            Backend::Streaming(rt) => rt.push_batch(events),
        }
    }

    fn push_batch_shared(&mut self, events: Arc<Vec<(SourceId, Tuple)>>) -> Result<()> {
        match self {
            Backend::Local(rt) => rt.push_batch_shared(events),
            Backend::OneShot(rt) => rt.push_batch_shared(events),
            Backend::Streaming(rt) => rt.push_batch_shared(events),
        }
    }

    fn flush(&mut self) -> Result<()> {
        match self {
            Backend::Local(rt) => rt.flush(),
            Backend::OneShot(rt) => rt.flush(),
            Backend::Streaming(rt) => rt.flush(),
        }
    }

    fn finish(&mut self) -> Result<()> {
        match self {
            Backend::Local(rt) => rt.finish(),
            Backend::OneShot(rt) => rt.finish(),
            Backend::Streaming(rt) => rt.finish(),
        }
    }

    fn update_plan(&mut self, plan: &PlanGraph) -> Result<()> {
        match self {
            Backend::Local(rt) => rt.update_plan(plan),
            Backend::OneShot(rt) => rt.update_plan(plan),
            Backend::Streaming(rt) => rt.update_plan(plan),
        }
    }
}

/// One execution session over the shared plan: an engine (selected by
/// [`SessionBuilder`]) plus the per-query result-delivery layer.
///
/// `Session` itself implements [`EventRuntime`], so generic drivers treat
/// it exactly like the bare engines; on top of the trait it adds:
///
/// * [`Session::subscribe`] — a [`Subscription`] receiving exactly one
///   query's results;
/// * [`Session::collect_all`] — the catch-all for results no live
///   subscription claimed;
/// * [`Session::update_plan`] (via the trait) — live query add/remove
///   with operator state carried across.
///
/// ## When results are delivered
///
/// Results surface to subscriptions and the catch-all at *delivery
/// points*: immediately after every push for the single-threaded
/// session, and at every [`EventRuntime::flush`] /
/// [`EventRuntime::finish`] barrier for the parallel sessions (worker
/// sinks are merged deterministically at the barrier — worker 0 first,
/// then `(ts, query)`-ordered within the barrier epoch). `flush()` is
/// therefore the portable "make results visible now" call.
///
/// ## Results produced before the first subscriber
///
/// A subscription receives exactly the results *delivered after it was
/// created*. Anything delivered earlier — including everything produced
/// while no subscriber existed — stays in the catch-all, retrievable via
/// [`Session::collect_all`]; it is never retroactively moved. To see a
/// query's entire output through its subscription, subscribe before
/// pushing events. (For the parallel sessions, results of *pushed but
/// not yet flushed* events are delivered at the next barrier, so a
/// subscription created before that barrier still receives them.)
pub struct Session {
    backend: Backend,
    names: HashMap<String, QueryId>,
    subs: HashMap<QueryId, SubEntry, IdBuild>,
    unclaimed: Vec<(QueryId, Tuple)>,
    /// The plan the backend currently runs (kept in step by
    /// [`EventRuntime::update_plan`]) — what [`Session::stats`] attributes
    /// sharing against and [`Session::explain`] renders.
    plan: PlanGraph,
    /// Per-query ingest→delivery latency for queries with *no live
    /// subscription entry*: catch-all deliveries, plus accumulators
    /// reclaimed from dead or superseded subscriptions. Queries with a
    /// live entry record into [`SubEntry::lat`] instead — riding the
    /// `subs` probe the delivery path already pays — and the two are
    /// merged at snapshot time. Compact [`LatAcc`]s behind a
    /// multiply-shift hasher; they expand to full [`Histogram`]s only
    /// when a snapshot is assembled.
    latency: HashMap<QueryId, LatAcc, IdBuild>,
    /// The freshest sampled ingest timestamp: one `push` in
    /// [`TIME_SAMPLE_EVERY`] (every batch entry point) takes an
    /// `Instant`, so deliveries can measure true queueing + processing
    /// delay without a clock read per event.
    ingest_mark: Option<Instant>,
    /// Whether `ingest_mark` was re-taken since the last delivery (the
    /// delivery point reads the clock once, then reuses the measured
    /// value for every tuple of the batch).
    mark_fresh: bool,
    /// The last measured ingest→delivery latency (nanoseconds), reused
    /// for deliveries between samples.
    cached_latency: u64,
    /// `push` calls seen — the sampling phase counter.
    push_count: u64,
    /// Flush-barrier latency (every [`EventRuntime::flush`] and the final
    /// [`EventRuntime::finish`]), one sample per barrier.
    flush_hist: Histogram,
    /// [`EventRuntime::update_plan`] epoch latency (quiesce + install +
    /// resume), one sample per successful epoch.
    update_hist: Histogram,
    /// Session-level flight recorder: plan-swap phases and caller notes
    /// ([`Session::trace_event`]). Merged with the executor- and
    /// runtime-level recorders by [`Session::trace`].
    flight: TraceRing,
}

impl Session {
    /// Subscribes to one query's results. Supersedes any previous live
    /// subscription for the same query (see [`Subscription`]).
    pub fn subscribe(&mut self, query: QueryId) -> Subscription {
        let chan = Arc::new(SubChannel {
            query,
            buf: Mutex::new(VecDeque::new()),
        });
        let entry = SubEntry {
            chan: Arc::downgrade(&chan),
            lat: LatAcc::default(),
        };
        if let Some(old) = self.subs.insert(query, entry) {
            // A superseded subscription's latency samples still belong
            // to the query — reclaim them into the session-side map.
            if crate::stats::STATS_COMPILED && old.lat.emitted() > 0 {
                self.latency.entry(query).or_default().absorb(&old.lat);
            }
        }
        Subscription { chan }
    }

    /// [`Session::subscribe`] by registered query name (`QUERY name AS
    /// ...`), resolved against the names known when the session was
    /// built. Queries added live afterwards are subscribed by the id
    /// their [`rumor_core::Integration`] reports.
    pub fn subscribe_named(&mut self, name: &str) -> Result<Subscription> {
        let query = self
            .names
            .get(name)
            .copied()
            .ok_or_else(|| RumorError::unknown(format!("query `{name}`")))?;
        Ok(self.subscribe(query))
    }

    /// Drains every result delivered so far that no live subscription
    /// claimed, in delivery order. This is the whole-plan escape hatch —
    /// the moral successor of handing one monolithic sink to every push
    /// call. Reflects deliveries up to the most recent delivery point
    /// (see the type docs); call [`EventRuntime::flush`] first to force
    /// one.
    pub fn collect_all(&mut self) -> Vec<(QueryId, Tuple)> {
        std::mem::take(&mut self.unclaimed)
    }

    /// Source events accepted so far.
    pub fn events_in(&self) -> u64 {
        match &self.backend {
            Backend::Local(rt) => rt.events_in(),
            Backend::OneShot(rt) => rt.events_in(),
            Backend::Streaming(rt) => rt.events_in(),
        }
    }

    /// Worker count of the underlying engine (1 for single-threaded).
    pub fn workers(&self) -> usize {
        match &self.backend {
            Backend::Local(_) => 1,
            Backend::OneShot(rt) => rt.workers(),
            Backend::Streaming(rt) => rt.workers(),
        }
    }

    /// The partition-routing scheme in force — `None` for the
    /// single-threaded session, which routes nothing.
    pub fn scheme(&self) -> Option<&PartitionScheme> {
        match &self.backend {
            Backend::Local(_) => None,
            Backend::OneShot(rt) => Some(rt.scheme()),
            Backend::Streaming(rt) => Some(rt.scheme()),
        }
    }

    /// Pushes one channel tuple on a channel-group source (Workload 3's
    /// input shape). Single-threaded sessions only: the partition router
    /// has no channel routes, so parallel sessions reject this.
    pub fn push_channel(
        &mut self,
        source: SourceId,
        tuple: Tuple,
        membership: Membership,
    ) -> Result<()> {
        match &mut self.backend {
            Backend::Local(rt) => rt.push_channel(source, tuple, membership)?,
            _ => {
                return Err(RumorError::exec(
                    "channel input requires a single-threaded session (omit workers)".to_string(),
                ))
            }
        }
        self.deliver_local();
        Ok(())
    }

    /// Routes a batch of drained results: each to its query's live
    /// subscription, the rest to the catch-all. A delivery batch that
    /// follows a fresh ingest mark is *sampled*: it reads the clock once
    /// and records every tuple's ingest→delivery latency; unsampled
    /// batches only advance the exact per-query emitted tallies (one
    /// counter add riding the subscription probe).
    fn deliver(&mut self, results: Vec<(QueryId, Tuple)>) {
        let sampled = crate::stats::STATS_COMPILED && self.mark_fresh;
        if sampled {
            if let Some(mark) = self.ingest_mark {
                self.cached_latency = mark.elapsed().as_nanos() as u64;
            }
            self.mark_fresh = false;
        }
        for (query, tuple) in results {
            let chan = match self.subs.get_mut(&query) {
                Some(entry) => {
                    // The tally rides the probe that just found the
                    // channel — no second per-tuple map lookup.
                    if crate::stats::STATS_COMPILED {
                        entry.lat.note_emit();
                        if sampled {
                            entry.lat.record(self.cached_latency);
                        }
                    }
                    entry.chan.upgrade()
                }
                None => {
                    if crate::stats::STATS_COMPILED {
                        let acc = self.latency.entry(query).or_default();
                        acc.note_emit();
                        if sampled {
                            acc.record(self.cached_latency);
                        }
                    }
                    self.unclaimed.push((query, tuple));
                    continue;
                }
            };
            match chan {
                Some(chan) => chan
                    .buf
                    .lock()
                    .expect("subscription poisoned")
                    .push_back(tuple),
                None => {
                    // Dead weak handles (dropped subscriptions) are
                    // pruned lazily, right when a result would have gone
                    // to them; their latency samples fold back into the
                    // session-side map.
                    let entry = self.subs.remove(&query).expect("probed above");
                    if crate::stats::STATS_COMPILED && entry.lat.emitted() > 0 {
                        self.latency.entry(query).or_default().absorb(&entry.lat);
                    }
                    self.unclaimed.push((query, tuple));
                }
            }
        }
    }

    /// Takes a fresh ingest mark — the batch entry points always mark
    /// (one clock read amortized over the whole batch).
    fn mark_ingest(&mut self) {
        if crate::stats::STATS_COMPILED {
            self.ingest_mark = Some(Instant::now());
            self.mark_fresh = true;
        }
    }

    /// Single-threaded delivery point: the local engine produced results
    /// synchronously during the last push; route them now.
    fn deliver_local(&mut self) {
        if let Backend::Local(rt) = &mut self.backend {
            if !rt.sink.results.is_empty() {
                let sink = rt.drain_sink();
                self.deliver(sink.results);
            }
        }
    }

    /// Barrier delivery point on the live session: drain whatever the
    /// engine accumulated and route it.
    fn deliver_barrier(&mut self) -> Result<()> {
        let sink = self.backend.drain_live()?;
        if !sink.results.is_empty() {
            self.deliver(sink.results);
        }
        Ok(())
    }

    /// A consistent snapshot of every runtime counter the session keeps:
    /// per-m-op dispatch counters and state sizes, adaptive-gate state,
    /// queue pressure and barrier latencies, per-query delivery counts,
    /// and per-query sharing attribution against the current plan.
    ///
    /// On a live parallel session this is itself a barrier-consistent
    /// read: staged deliveries are dispatched and each worker reports in
    /// queue order, so the counters reflect every event accepted before
    /// the call. After [`EventRuntime::finish`] the final counters stay
    /// readable. Snapshots are plain data — diff two with
    /// [`StatsSnapshot::diff`] to meter an interval, or serialize with
    /// [`StatsSnapshot::to_json`].
    pub fn stats(&mut self) -> Result<StatsSnapshot> {
        let (engine, report): (&'static str, ExecStatsReport) = match &mut self.backend {
            Backend::Local(rt) => ("local", rt.exec.stats_report()),
            Backend::OneShot(rt) => ("sharded", rt.exec_stats()),
            Backend::Streaming(rt) => ("streaming", rt.exec_stats()?),
        };
        let runtime = RuntimeStats {
            queue_depth_hwm: match &self.backend {
                Backend::Streaming(rt) => rt.queue_depth_hwm().to_vec(),
                _ => Vec::new(),
            },
            blocking_sends: match &self.backend {
                Backend::Streaming(rt) => rt.blocking_sends(),
                _ => 0,
            },
            flush: self.flush_hist.clone(),
            update: self.update_hist.clone(),
        };
        // Query rows come from the plan's registration order — not from
        // the latency map — so zero-emit queries appear and the snapshot
        // shape is identical across engines.
        let queries = self
            .plan
            .query_outputs()
            .iter()
            .map(|&(q, _)| {
                // A query's samples can live in two places: the live
                // subscription entry and the session-side map (catch-all
                // deliveries + reclaimed dead subscriptions).
                let mut acc = self.latency.get(&q).cloned().unwrap_or_default();
                if let Some(entry) = self.subs.get(&q) {
                    acc.absorb(&entry.lat);
                }
                QueryStats {
                    query: q,
                    emitted: acc.emitted(),
                    latency: acc.to_histogram(),
                }
            })
            .collect();
        let sharing = sharing_attribution(&self.plan, &report.ops);
        Ok(StatsSnapshot {
            engine,
            workers: self.workers(),
            events_in: self.events_in(),
            ops: report.ops,
            gates: report.gates,
            runtime,
            queries,
            sharing,
        })
    }

    /// Renders the optimized plan annotated with live runtime counters,
    /// followed by gate state, runtime pressure counters, and per-query
    /// sharing attribution — the paper's benefit metric (events a shared
    /// m-op absorbs once instead of once per subscribed query).
    ///
    /// # Examples
    ///
    /// ```
    /// use rumor_core::OptimizerConfig;
    /// use rumor_engine::{EventRuntime, Rumor};
    /// use rumor_types::Tuple;
    ///
    /// let mut rumor = Rumor::new(OptimizerConfig::default());
    /// rumor.execute(
    ///     "CREATE STREAM s (a INT, b INT);
    ///      QUERY q0 AS SELECT * FROM s WHERE a = 0;
    ///      QUERY q1 AS SELECT * FROM s WHERE a = 1;",
    /// )?;
    /// rumor.optimize()?;
    /// let mut session = rumor.session().build()?;
    /// let src = rumor.source_id("s").unwrap();
    /// for ts in 0..10 {
    ///     session.push(src, Tuple::ints(ts, &[(ts % 2) as i64, 1]))?;
    /// }
    /// session.finish()?;
    /// let text = session.explain()?;
    /// assert!(text.contains("engine=local"));
    /// assert!(text.contains("mop op"), "annotated plan listing:\n{text}");
    /// assert!(text.contains("fan-in"), "shared m-op fan-in:\n{text}");
    /// assert!(text.contains("events saved"), "benefit metric:\n{text}");
    /// # Ok::<(), rumor_types::RumorError>(())
    /// ```
    pub fn explain(&mut self) -> Result<String> {
        let snap = self.stats()?;
        let mut by_op = HashMap::new();
        for op in &snap.ops {
            by_op.insert(op.mop, op);
        }
        let shares: HashMap<_, _> = snap.time_shares().into_iter().collect();
        let plan = &self.plan;
        let listing = render_annotated(plan, |id| {
            by_op.get(&id).map(|op| {
                let mut s = format!(
                    "in={} out={} sel={:.3} calls={}ev+{}b state={}",
                    op.events_in,
                    op.events_out,
                    op.selectivity(),
                    op.event_calls,
                    op.batch_calls,
                    op.state_size
                );
                let fan_in = plan.mop(id).members.len();
                if fan_in > 1 {
                    let _ = write!(s, " fan-in={fan_in}");
                }
                if let Some(&share) = shares.get(&id) {
                    let _ = write!(s, " time={:.1}% {}", share * 100.0, share_bar(share, 10));
                }
                s
            })
        });
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== plan (engine={}, workers={}, events_in={}) ==",
            snap.engine, snap.workers, snap.events_in
        );
        out.push_str(&listing);
        if !snap.gates.is_empty() {
            let _ = writeln!(out, "== dispatch gates ==");
            for g in &snap.gates {
                let forced = match g.forced {
                    Some(m) => format!(" forced={}", mode_str(m)),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "component {}: mode={} frozen={}{}",
                    g.component,
                    mode_str(g.mode),
                    g.frozen,
                    forced
                );
            }
        }
        let _ = writeln!(out, "== runtime ==");
        let _ = writeln!(
            out,
            "flush_barriers={} ({}us total, p99={}us), update_epochs={} ({}us total, p99={}us), blocking_sends={}",
            snap.runtime.flush.count(),
            snap.runtime.flush.total() / 1_000,
            snap.runtime.flush.p99() / 1_000,
            snap.runtime.update.count(),
            snap.runtime.update.total() / 1_000,
            snap.runtime.update.p99() / 1_000,
            snap.runtime.blocking_sends
        );
        if !snap.runtime.queue_depth_hwm.is_empty() {
            let hwm: Vec<String> = snap
                .runtime
                .queue_depth_hwm
                .iter()
                .map(u64::to_string)
                .collect();
            let _ = writeln!(out, "queue_depth_hwm=[{}]", hwm.join(", "));
        }
        let _ = writeln!(out, "== sharing ==");
        for q in &snap.queries {
            let lat = if q.latency.is_empty() {
                String::new()
            } else {
                format!(
                    " (latency p50={}us p99={}us)",
                    q.latency.p50() / 1_000,
                    q.latency.p99() / 1_000
                )
            };
            let share = snap.sharing.iter().find(|s| s.query == q.query);
            match share.filter(|s| !s.shared.is_empty()) {
                Some(s) => {
                    let ops: Vec<String> = s
                        .shared
                        .iter()
                        .map(|r| format!("{} (fan-in {})", r.mop, r.fan_in))
                        .collect();
                    let saved_time = if s.nanos_saved > 0 {
                        format!(" (~{}us wall)", s.nanos_saved / 1_000)
                    } else {
                        String::new()
                    };
                    let _ = writeln!(
                        out,
                        "{}: emitted={}{}, shares {} — events saved vs unshared: {}{}",
                        q.query,
                        q.emitted,
                        lat,
                        ops.join(", "),
                        s.events_saved,
                        saved_time
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "{}: emitted={}{}, no shared m-ops",
                        q.query, q.emitted, lat
                    );
                }
            }
        }
        let total_time = snap.total_nanos_saved();
        let _ = writeln!(
            out,
            "total events saved: {}{}",
            snap.total_events_saved(),
            if total_time > 0 {
                format!(" (~{}us wall)", total_time / 1_000)
            } else {
                String::new()
            }
        );
        Ok(out)
    }

    /// Journals one caller-level event into the session's flight
    /// recorder — e.g. a declined merge from an
    /// [`rumor_core::Integration`]'s rewrite-trace notes, or any
    /// application milestone worth seeing on the runtime's timeline.
    /// No-op under `stats-off`.
    pub fn trace_event(&mut self, kind: &'static str, detail: impl Into<String>) {
        if crate::stats::STATS_COMPILED {
            self.flight.record(kind, detail.into());
        }
    }

    /// Dumps the merged flight-recorder timeline as JSON lines (one
    /// object per line, sorted by timestamp): session-level events
    /// (plan-swap phases, [`Session::trace_event`] notes), executor-level
    /// events (adaptive-gate flips and freezes, from every worker), and
    /// runtime-level events (backpressure stalls on the streaming pool).
    /// All recorders share one process-wide clock
    /// ([`crate::stats::trace_clock_nanos`]), so cross-thread ordering is
    /// coherent. Bounded: each recorder keeps its most recent events
    /// (oldest evicted), so the dump is a flight recorder, not a full
    /// log.
    ///
    /// Recording is compiled out under `stats-off`; the dump is then
    /// empty but the call works.
    pub fn trace(&mut self) -> Result<String> {
        let mut events: Vec<TraceEvent> = self.flight.events().cloned().collect();
        match &mut self.backend {
            Backend::Local(rt) => events.extend(rt.exec.stats_report().trace),
            Backend::OneShot(rt) => events.extend(rt.exec_stats().trace),
            Backend::Streaming(rt) => {
                events.extend(rt.exec_stats()?.trace);
                events.extend(rt.trace_events());
            }
        }
        events.sort_by_key(|e| e.at_nanos);
        Ok(trace_json_lines(&events))
    }
}

/// Events per delivery slice of a single-threaded session's `push_batch`:
/// results route to subscriptions while the producing slice is still
/// cache-resident instead of accumulating in one sink that is drained
/// cold after the whole batch. Matches the engine's internal batch chunk
/// so slicing never splits a dispatch unit.
const LOCAL_DELIVERY_CHUNK: usize = 1024;

impl EventRuntime for Session {
    fn push(&mut self, source: SourceId, tuple: Tuple) -> Result<()> {
        if crate::stats::STATS_COMPILED {
            // Sampled ingest mark: one clock read in TIME_SAMPLE_EVERY
            // pushes keeps the latency histograms honest without a
            // per-event `Instant::now` on the hottest path.
            if self.push_count & (TIME_SAMPLE_EVERY - 1) == 0 {
                self.ingest_mark = Some(Instant::now());
                self.mark_fresh = true;
            }
            self.push_count += 1;
        }
        self.backend.push(source, tuple)?;
        self.deliver_local();
        Ok(())
    }

    fn push_batch(&mut self, events: &[(SourceId, Tuple)]) -> Result<()> {
        self.mark_ingest();
        if matches!(self.backend, Backend::Local(_)) && !events.is_empty() {
            for chunk in events.chunks(LOCAL_DELIVERY_CHUNK) {
                self.backend.push_batch(chunk)?;
                self.deliver_local();
            }
            return Ok(());
        }
        self.backend.push_batch(events)?;
        self.deliver_local();
        Ok(())
    }

    fn push_batch_shared(&mut self, events: Arc<Vec<(SourceId, Tuple)>>) -> Result<()> {
        if matches!(self.backend, Backend::Local(_)) {
            return self.push_batch(&events);
        }
        self.mark_ingest();
        self.backend.push_batch_shared(events)?;
        self.deliver_local();
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        // drain_live is itself the barrier (it flushes or hands the
        // worker sinks off), so no separate backend.flush() round-trip.
        let t = Instant::now();
        self.deliver_barrier()?;
        // Barriers are control-plane (rare by construction), so their
        // latency histogram records even under `stats-off` — preserving
        // the barrier-count semantics the scalar counters always had.
        self.flush_hist.record(t.elapsed().as_nanos() as u64);
        Ok(())
    }

    fn finish(&mut self) -> Result<()> {
        let t = Instant::now();
        self.backend.finish()?;
        let sink = self.backend.drain_final();
        if !sink.results.is_empty() {
            self.deliver(sink.results);
        }
        self.flush_hist.record(t.elapsed().as_nanos() as u64);
        Ok(())
    }

    fn update_plan(&mut self, plan: &PlanGraph) -> Result<()> {
        let t = Instant::now();
        if crate::stats::STATS_COMPILED {
            self.flight.record(
                "swap_begin",
                format!("quiesce for plan with {} m-ops", plan.mop_count()),
            );
        }
        if let Err(e) = self.backend.update_plan(plan) {
            if crate::stats::STATS_COMPILED {
                self.flight.record("swap_refused", e.to_string());
            }
            return Err(e);
        }
        let nanos = t.elapsed().as_nanos() as u64;
        self.update_hist.record(nanos);
        if crate::stats::STATS_COMPILED {
            self.flight.record(
                "swap_complete",
                format!("installed and resumed in {}us", nanos / 1_000),
            );
        }
        self.plan = plan.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rumor;
    use rumor_core::OptimizerConfig;

    fn engine() -> Rumor {
        let mut rumor = Rumor::new(OptimizerConfig::default());
        rumor
            .execute(
                "CREATE STREAM s (a INT, b INT);
                 QUERY q0 AS SELECT * FROM s WHERE a = 0;
                 QUERY q1 AS SELECT * FROM s WHERE a = 1;",
            )
            .unwrap();
        rumor.optimize().unwrap();
        rumor
    }

    fn events(n: u64) -> Vec<Tuple> {
        (0..n)
            .map(|ts| Tuple::ints(ts, &[(ts % 3) as i64, ts as i64]))
            .collect()
    }

    /// Every engine configuration the builder can produce.
    fn all_configs() -> Vec<SessionConfig> {
        vec![
            SessionConfig::default(),
            SessionConfig {
                workers: Some(2),
                one_shot: true,
                streaming: None,
            },
            SessionConfig {
                workers: Some(2),
                one_shot: false,
                streaming: Some(StreamingConfig {
                    batch_size: 4,
                    queue_depth: 2,
                }),
            },
        ]
    }

    #[test]
    fn builder_rejects_contradictory_configs() {
        let rumor = engine();
        assert!(rumor.session().one_shot().build().is_err());
        assert!(rumor
            .session()
            .streaming(StreamingConfig::default())
            .build()
            .is_err());
        assert!(rumor
            .session()
            .workers(2)
            .one_shot()
            .streaming(StreamingConfig::default())
            .build()
            .is_err());
        assert!(rumor.session().workers(0).build().is_err());
    }

    #[test]
    fn lifecycle_misuse_returns_the_same_typed_error_on_every_engine() {
        let rumor = engine();
        let s = rumor.source_id("s").unwrap();
        for cfg in all_configs() {
            let mut session = rumor.session().config(cfg.clone()).build().unwrap();
            session.push(s, Tuple::ints(0, &[0, 0])).unwrap();
            session.finish().unwrap();
            // Push-after-finish, flush-after-finish, double-finish,
            // update-after-finish: all the *same* typed error.
            for err in [
                session.push(s, Tuple::ints(1, &[0, 0])),
                session.push_batch(&[]),
                session.push_batch_shared(Arc::new(Vec::new())),
                session.flush(),
                session.finish(),
                session.update_plan(rumor.plan()),
            ] {
                assert!(
                    matches!(err, Err(RumorError::Finished(_))),
                    "{cfg:?}: {err:?}"
                );
            }
            // The already-delivered results stay retrievable.
            assert_eq!(session.collect_all().len(), 1);
        }
    }

    #[test]
    fn subscriptions_route_per_query_on_every_engine() {
        let rumor = engine();
        let s = rumor.source_id("s").unwrap();
        let q0 = rumor.query_id("q0").unwrap();
        let q1 = rumor.query_id("q1").unwrap();
        for cfg in all_configs() {
            let mut session = rumor.session().config(cfg.clone()).build().unwrap();
            let mut sub = session.subscribe(q0);
            let batch: Vec<_> = events(30).into_iter().map(|t| (s, t)).collect();
            session.push_batch(&batch).unwrap();
            session.finish().unwrap();
            let got = sub.drain();
            assert_eq!(got.len(), 10, "{cfg:?}");
            assert!(got.iter().all(|t| t.ts % 3 == 0));
            let rest = session.collect_all();
            assert!(rest.iter().all(|(q, _)| *q == q1), "{cfg:?}: {rest:?}");
            assert_eq!(rest.len(), 10, "{cfg:?}");
        }
    }

    #[test]
    fn results_before_first_subscriber_stay_in_collect_all() {
        let rumor = engine();
        let s = rumor.source_id("s").unwrap();
        let q0 = rumor.query_id("q0").unwrap();
        let mut session = rumor.session().build().unwrap();
        session.push(s, Tuple::ints(0, &[0, 0])).unwrap();
        session.flush().unwrap();
        // Everything delivered so far predates the subscription: it is
        // never retroactively moved.
        let mut sub = session.subscribe(q0);
        session.push(s, Tuple::ints(3, &[0, 1])).unwrap();
        session.finish().unwrap();
        assert_eq!(sub.drain().len(), 1);
        assert_eq!(session.collect_all().len(), 1);
    }

    #[test]
    fn dropping_a_subscription_unsubscribes() {
        let rumor = engine();
        let s = rumor.source_id("s").unwrap();
        let q0 = rumor.query_id("q0").unwrap();
        let mut session = rumor.session().build().unwrap();
        let sub = session.subscribe(q0);
        drop(sub);
        session.push(s, Tuple::ints(0, &[0, 0])).unwrap();
        session.finish().unwrap();
        assert_eq!(session.collect_all().len(), 1, "routed to the catch-all");
    }

    #[test]
    fn newer_subscription_supersedes_older() {
        let rumor = engine();
        let s = rumor.source_id("s").unwrap();
        let q0 = rumor.query_id("q0").unwrap();
        let mut session = rumor.session().build().unwrap();
        let mut old = session.subscribe(q0);
        session.push(s, Tuple::ints(0, &[0, 0])).unwrap();
        let mut new = session.subscribe(q0);
        session.push(s, Tuple::ints(3, &[0, 1])).unwrap();
        session.finish().unwrap();
        // The old handle keeps what it already received, nothing more.
        assert_eq!(old.drain().len(), 1);
        assert_eq!(new.drain().len(), 1);
        assert!(session.collect_all().is_empty());
    }

    #[test]
    fn subscription_iterates_nonblocking() {
        let rumor = engine();
        let s = rumor.source_id("s").unwrap();
        let mut session = rumor.session().build().unwrap();
        let mut sub = session.subscribe_named("q1").unwrap();
        assert!(session.subscribe_named("nope").is_err());
        let batch: Vec<_> = events(9).into_iter().map(|t| (s, t)).collect();
        session.push_batch(&batch).unwrap();
        session.flush().unwrap();
        assert_eq!(sub.len(), 3);
        assert!(!sub.is_empty());
        let drained: Vec<Tuple> = sub.by_ref().collect();
        assert_eq!(drained.len(), 3);
        assert!(sub.next().is_none(), "iterator ends when buffer is empty");
        session.finish().unwrap();
    }

    #[test]
    fn stats_shape_is_identical_across_engines() {
        let rumor = engine();
        let s = rumor.source_id("s").unwrap();
        let q0 = rumor.query_id("q0").unwrap();
        let q1 = rumor.query_id("q1").unwrap();
        let mut shapes: Vec<(Vec<_>, Vec<_>)> = Vec::new();
        for cfg in all_configs() {
            let mut session = rumor.session().config(cfg.clone()).build().unwrap();
            let batch: Vec<_> = events(30).into_iter().map(|t| (s, t)).collect();
            session.push_batch(&batch).unwrap();
            session.finish().unwrap();
            let snap = session.stats().unwrap();
            assert_eq!(snap.events_in, 30, "{cfg:?}");
            if crate::stats::STATS_COMPILED {
                let total_in: u64 = snap.ops.iter().map(|o| o.events_in).sum();
                assert!(total_in >= 30, "{cfg:?}: {total_in}");
                // q0 matches a%3==0 (10 events), q1 matches a%3==1 (10).
                for (q, want) in [(q0, 10), (q1, 10)] {
                    let got = snap.queries.iter().find(|r| r.query == q).unwrap();
                    assert_eq!(got.emitted, want, "{cfg:?} {q}");
                }
            }
            // Barrier latency histograms cover the finish barrier (these
            // record even under `stats-off` — control-plane, rare).
            assert!(snap.runtime.flush.count() >= 1, "{cfg:?}");
            assert!(
                snap.runtime.flush.p50() <= snap.runtime.flush.max(),
                "{cfg:?}"
            );
            shapes.push((
                snap.ops.iter().map(|o| o.mop).collect(),
                snap.queries.iter().map(|r| r.query).collect(),
            ));
        }
        // Same plan → same snapshot shape on every engine.
        for shape in &shapes[1..] {
            assert_eq!(shape, &shapes[0]);
        }
    }

    #[test]
    fn streaming_stats_work_live_and_after_finish() {
        let rumor = engine();
        let s = rumor.source_id("s").unwrap();
        let mut session = rumor
            .session()
            .workers(2)
            .streaming(StreamingConfig {
                batch_size: 4,
                queue_depth: 2,
            })
            .build()
            .unwrap();
        let batch: Vec<_> = events(40).into_iter().map(|t| (s, t)).collect();
        session.push_batch(&batch).unwrap();
        // Live snapshot: a barrier-consistent read on a running pool.
        let live = session.stats().unwrap();
        assert_eq!(live.engine, "streaming");
        assert_eq!(live.workers, 2);
        assert_eq!(live.events_in, 40);
        if crate::stats::STATS_COMPILED {
            let total_in: u64 = live.ops.iter().map(|o| o.events_in).sum();
            assert!(total_in >= 40, "{total_in}");
        }
        session.finish().unwrap();
        let fin = session.stats().unwrap();
        assert_eq!(fin.events_in, 40);
        assert_eq!(
            fin.ops.iter().map(|o| o.mop).collect::<Vec<_>>(),
            live.ops.iter().map(|o| o.mop).collect::<Vec<_>>()
        );
        // The tiny queue saw at least one dispatch; the high-water mark
        // is recorded per worker.
        assert_eq!(fin.runtime.queue_depth_hwm.len(), 2);
        let diff = fin.diff(&live);
        assert_eq!(diff.events_in, 0, "all events were in before the barrier");
    }

    #[test]
    fn explain_mentions_sharing_and_counters() {
        let rumor = engine();
        let s = rumor.source_id("s").unwrap();
        let mut session = rumor.session().build().unwrap();
        let batch: Vec<_> = events(12).into_iter().map(|t| (s, t)).collect();
        session.push_batch(&batch).unwrap();
        session.finish().unwrap();
        let text = session.explain().unwrap();
        assert!(text.contains("engine=local"), "{text}");
        assert!(text.contains("mop op"), "{text}");
        assert!(text.contains("== sharing =="), "{text}");
        assert!(text.contains("total events saved:"), "{text}");
        // The two eq-selects on `a` share one σ-index m-op: fan-in shows.
        assert!(text.contains("fan-in"), "{text}");
    }

    #[test]
    fn push_channel_requires_single_threaded_session() {
        let mut rumor = Rumor::new(OptimizerConfig::default());
        let c = rumor
            .add_source_group("C", rumor_types::Schema::ints(2), 3)
            .unwrap();
        // Group member streams are plan-level names; register via the
        // logical-plan path.
        rumor
            .register(&rumor_core::LogicalPlan::source("C.0"))
            .unwrap();
        rumor.optimize().unwrap();
        let mut local = rumor.session().build().unwrap();
        local
            .push_channel(c, Tuple::ints(0, &[1, 2]), Membership::all(3))
            .unwrap();
        local.finish().unwrap();
        assert_eq!(local.collect_all().len(), 1);
        let mut parallel = rumor.session().workers(2).build().unwrap();
        assert!(parallel
            .push_channel(c, Tuple::ints(1, &[1, 2]), Membership::all(3))
            .is_err());
        parallel.finish().unwrap();
    }
}
