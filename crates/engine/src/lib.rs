//! # rumor-engine
//!
//! The RUMOR runtime: registers continuous queries (as logical plans or
//! query-language scripts), runs the rule-based multi-query optimizer, and
//! executes the resulting shared plan over pushed stream tuples.
//!
//! ## One execution API
//!
//! Every engine speaks the same lifecycle — the [`EventRuntime`] trait
//! (`push` / `push_batch` / `push_batch_shared` / `flush` / `finish` /
//! `update_plan`) — and is constructed through one builder:
//! [`Rumor::session`]. The builder chain picks the engine; results come
//! back through per-query [`Subscription`]s or the [`Session::collect_all`]
//! catch-all:
//!
//! * `session().build()?` — [`LocalRuntime`], the single-threaded push
//!   engine. Fully stateless plans batch at channel-run granularity;
//!   stateful plans run *hybrid*, batching the stateless prefix and
//!   dropping to timestamp-ordered per-event delivery only at the first
//!   stateful m-op ([`ExecutablePlan::is_prefix_batch_safe`]).
//! * `session().workers(n).build()?` — [`StreamingShardedRuntime`], the
//!   persistent worker pool: long-lived workers behind bounded queues
//!   with backpressure, fed by the static partition router
//!   (`rumor_core::partition`): round-robin for stateless components,
//!   hashed on consistent keys for key-partitionable ones, worker 0 for
//!   pinned stateful subgraphs (stateless siblings still round-robin).
//! * `session().workers(n).one_shot().build()?` — [`ShardedRuntime`],
//!   the same router with scoped threads spawned per batch call; for
//!   inputs already in memory as a few large slices.
//!
//! Per-worker sinks fold deterministically at every delivery barrier
//! ([`MergeSink`]); all engines produce identical per-query results (the
//! differential conformance harness pins this byte-for-byte). Sharding
//! pays off when there are physical cores to spare and per-event work is
//! nontrivial; on a single core it measures the routing overhead (see
//! `BENCH_throughput.json` and the [`SessionBuilder`] docs).
//!
//! ## Dynamic query lifecycle
//!
//! The query set may churn while runtimes are live — no rebuild, no lost
//! state:
//!
//! * [`Rumor::add_query`] (and `QUERY`/`SELECT`/`PATTERN` statements in
//!   [`Rumor::execute`] after [`Rumor::optimize`]) merges a new query into
//!   the already-optimized shared plan via
//!   [`rumor_core::Optimizer::integrate`]: the m-rule catalogue runs
//!   scoped to the new operators, returning a
//!   [`rumor_core::RewriteTrace`] for the integration and a
//!   [`rumor_core::PlanDelta`] describing exactly which m-ops were added,
//!   removed, or rewired.
//! * [`Rumor::remove_query`] (and `DROP QUERY name;`) retires a query,
//!   pruning operators and channels nothing else references and
//!   un-splitting stateless shared m-ops left serving one member.
//! * Runtimes hot-swap from the delta via [`EventRuntime::update_plan`]:
//!   [`ExecutablePlan::apply_delta`] carries every untouched operator's
//!   instance — windows, sequence instance indexes, aggregate buckets —
//!   across the swap (state moves by m-op id; only new or rewired
//!   operators start cold), and both shard engines implement the *epoch
//!   protocol*: quiesce at a flush barrier, install the patched plan on
//!   every worker, re-derive the routing scheme incrementally, resume —
//!   the pool never restarts.
//!
//! When incremental integration cannot reach the fully shared plan (a
//! merge would restructure a stateful m-op holding live state, or
//! re-encode a channel feeding one), it declines that merge and records
//! why in [`rumor_core::RewriteTrace::notes`]; re-optimizing from scratch
//! on a fresh engine reclaims the missed sharing. Similarly,
//! `update_plan` refuses a swap that would re-route tuples away from live
//! stateful state (for example a keyed component becoming pinned): that
//! transition needs a fresh pool.
//!
//! ```
//! use rumor_engine::{EventRuntime, Rumor};
//! use rumor_core::OptimizerConfig;
//! use rumor_types::Tuple;
//!
//! let mut rumor = Rumor::new(OptimizerConfig::default());
//! rumor
//!     .execute(
//!         "CREATE STREAM s (a0 INT, a1 INT);
//!          QUERY q0 AS SELECT * FROM s WHERE a0 = 1;
//!          QUERY q1 AS SELECT * FROM s WHERE a0 = 2;",
//!     )
//!     .unwrap();
//! let trace = rumor.optimize().unwrap();
//! assert_eq!(trace.count("s_sigma"), 1); // both selections share one index
//!
//! let mut session = rumor.session().build().unwrap();
//! let mut q0 = session.subscribe_named("q0").unwrap();
//! let s = rumor.source_id("s").unwrap();
//! for ts in 0..4u64 {
//!     session.push(s, Tuple::ints(ts, &[ts as i64 % 3, 0])).unwrap();
//! }
//! session.finish().unwrap();
//! assert_eq!(q0.drain().len(), 1); // a0=1 at ts 1, routed to q0's owner
//! assert_eq!(session.collect_all().len(), 1); // unsubscribed q1: a0=2 at ts 2
//! ```

#![warn(missing_docs)]

pub mod exec;
pub mod metrics;
pub mod session;
pub mod shard;
pub mod stats;

pub use exec::{CollectingSink, ConeScope, CountingSink, DiscardSink, ExecutablePlan, QuerySink};
pub use metrics::{
    measure, measure_batched, measure_mode, BatchProfile, FeedMode, InputEvent, Measurement,
    Protocol,
};
pub use session::{
    EventRuntime, LocalRuntime, Session, SessionBuilder, SessionConfig, Subscription,
};
pub use shard::{MergeSink, ShardedRuntime, StreamingConfig, StreamingShardedRuntime};
pub use stats::{
    trace_clock_nanos, trace_json_lines, CollectingMeterSink, ExecStatsReport, FileMeterSink,
    GateStats, Histogram, Meter, MeterSink, OpStats, QuerySharing, QueryStats, RuntimeStats,
    SharedOpRef, StatsSnapshot, StderrMeterSink, TraceEvent, TraceRing, STATS_COMPILED,
    TIME_SAMPLE_EVERY,
};

use std::collections::HashMap;

use rumor_core::{
    Integration, LogicalPlan, Optimizer, OptimizerConfig, PlanDelta, PlanGraph, RewriteTrace,
    SelectivityModel,
};
use rumor_lang::{parse_script, LoweredStatement, Lowerer};
use rumor_types::{QueryId, Result, RumorError, Schema, SourceId};

/// The top-level engine facade.
pub struct Rumor {
    plan: PlanGraph,
    lowerer: Lowerer,
    config: OptimizerConfig,
    query_names: HashMap<String, QueryId>,
    optimized: bool,
    selectivity: SelectivityModel,
}

impl Rumor {
    /// Creates an engine with the given optimizer configuration.
    pub fn new(config: OptimizerConfig) -> Self {
        Rumor {
            plan: PlanGraph::new(),
            lowerer: Lowerer::new(),
            config,
            query_names: HashMap::new(),
            optimized: false,
            selectivity: SelectivityModel::default(),
        }
    }

    /// Calibrates the optimizer's cost model with measured per-m-op
    /// selectivities. Every subsequent [`Rumor::optimize`] /
    /// [`Rumor::add_query`] / [`Rumor::execute`] call scores candidate
    /// rewrites against this model (relevant under
    /// [`rumor_core::SearchStrategy::CostBased`] and for the
    /// refused-merge ranking in [`RewriteTrace::notes`]; the greedy
    /// search ignores it). See [`Rumor::calibrate_from_stats`] for the
    /// usual source.
    pub fn calibrate(&mut self, model: SelectivityModel) {
        self.selectivity = model;
    }

    /// [`Rumor::calibrate`] from a live session's measured stats — the
    /// stats → selectivity feedback loop: run a representative window,
    /// take [`Session::stats`], feed it back, and re-optimize (or let
    /// subsequent integrations use it).
    pub fn calibrate_from_stats(&mut self, stats: &StatsSnapshot) {
        self.calibrate(stats.selectivity_model());
    }

    /// The optimizer every plan-mutating path uses: configured rules plus
    /// the current selectivity calibration.
    fn optimizer(&self) -> Optimizer {
        Optimizer::new(self.config.clone()).with_selectivity(self.selectivity.clone())
    }

    /// Registers a source stream programmatically.
    pub fn add_source(
        &mut self,
        name: &str,
        schema: Schema,
        sharable_label: Option<String>,
    ) -> Result<SourceId> {
        let id = self.plan.add_source(name, schema.clone(), sharable_label)?;
        self.lowerer.add_source(name, schema);
        Ok(id)
    }

    /// Registers a *channel source* (see
    /// [`rumor_core::PlanGraph::add_source_group`]): `k` union-compatible
    /// streams pre-encoded into one channel, fed with
    /// [`Session::push_channel`]. The member streams are named
    /// `{name}.{i}` and usable from logical plans like any stream.
    pub fn add_source_group(&mut self, name: &str, schema: Schema, k: usize) -> Result<SourceId> {
        self.plan.add_source_group(name, schema, k)
    }

    /// Registers a logical query programmatically. Before
    /// [`Rumor::optimize`] this builds the naive chain for the coming
    /// batch optimization; afterwards it delegates to [`Rumor::add_query`]
    /// (incremental integration into the live shared plan).
    pub fn register(&mut self, plan: &LogicalPlan) -> Result<QueryId> {
        Ok(self.add_query(plan)?.query)
    }

    /// Adds one query to the engine — at any point in its life.
    ///
    /// Before [`Rumor::optimize`] the query simply joins the batch to be
    /// optimized. *After* it (including while compiled runtimes exist),
    /// the query is merged into the already-optimized shared plan by
    /// [`rumor_core::Optimizer::integrate`]: the m-rule catalogue runs
    /// scoped to the new query's operators, and the returned
    /// [`Integration`] carries the [`RewriteTrace`] of that scoped run
    /// (including any declined stateful merges in its `notes`) plus the
    /// [`PlanDelta`] describing what changed. Hand the *plan* to a live
    /// session's [`EventRuntime::update_plan`] for the hot swap —
    /// runtimes track what they have installed and diff against it
    /// themselves. If a runtime refuses the swap (it would re-route live
    /// stateful state), remove the offending query and update again; the
    /// runtime keeps refusing until the plan it is offered is
    /// installable.
    pub fn add_query(&mut self, plan: &LogicalPlan) -> Result<Integration> {
        if !self.optimized {
            // No runtime can exist yet, so the delta needs no context
            // diffing (a full snapshot per registration would make bulk
            // setup quadratic): registering only ever appends m-ops and
            // one query tap.
            let first_new = self.plan.mop_slots();
            let query = self.plan.add_query(plan)?;
            let mut delta = PlanDelta {
                added: (first_new..self.plan.mop_slots())
                    .map(rumor_types::MopId::from_index)
                    .collect(),
                ..PlanDelta::default()
            };
            if let Some(out) = self.plan.query_output(query) {
                if let rumor_core::Producer::Source(src) = self.plan.stream(out).producer {
                    delta.retapped.push(src);
                }
            }
            return Ok(Integration {
                query,
                trace: RewriteTrace::default(),
                delta,
            });
        }
        let optimizer = self.optimizer();
        optimizer.integrate(&mut self.plan, plan)
    }

    /// Retires a query (see [`rumor_core::PlanGraph::remove_query`]):
    /// its output tap is dropped, operators and channels no other query
    /// references are pruned, and stateless shared m-ops left serving one
    /// member un-split back to plain operators. The returned [`PlanDelta`]
    /// hot-swaps live runtimes exactly as with [`Rumor::add_query`].
    pub fn remove_query(&mut self, query: QueryId) -> Result<PlanDelta> {
        let delta = self.plan.remove_query(query)?;
        self.query_names.retain(|_, &mut q| q != query);
        Ok(delta)
    }

    /// [`Rumor::remove_query`] by registered name (`QUERY name AS ...`).
    pub fn remove_query_named(&mut self, name: &str) -> Result<PlanDelta> {
        let query = self
            .query_id(name)
            .ok_or_else(|| RumorError::unknown(format!("query `{name}`")))?;
        self.remove_query(query)
    }

    /// Executes a script of `CREATE STREAM` / `DEFINE` / query /
    /// `DROP QUERY` statements, returning the ids of registered queries in
    /// statement order.
    ///
    /// Valid at any point in the engine's life: after [`Rumor::optimize`]
    /// (including while compiled runtimes exist) `QUERY`/`SELECT`/
    /// `PATTERN` statements integrate incrementally into the live shared
    /// plan and `DROP QUERY` retires named queries — see
    /// [`Rumor::execute_live`] for the variant that also returns the
    /// combined [`PlanDelta`] runtimes need to hot-swap.
    /// Scripts are **transactional**: every statement applies to a
    /// scratch copy of the engine state, committed only when the whole
    /// script succeeds. A failing statement mid-script therefore cannot
    /// leave earlier integrations half-applied — which matters for live
    /// engines, where a lost [`PlanDelta`] would permanently desync
    /// already-running runtimes.
    pub fn execute(&mut self, script: &str) -> Result<Vec<QueryId>> {
        let statements = parse_script(script)?;
        let mut plan = self.plan.clone();
        let mut lowerer = self.lowerer.clone();
        let mut query_names = self.query_names.clone();
        let mut registered = Vec::new();
        for stmt in &statements {
            match lowerer.lower(stmt)? {
                LoweredStatement::CreateStream {
                    name,
                    schema,
                    sharable_label,
                } => {
                    plan.add_source(name, schema, sharable_label)?;
                }
                LoweredStatement::Defined { .. } => {}
                LoweredStatement::Register {
                    name, plan: query, ..
                } => {
                    let q = if self.optimized {
                        self.optimizer().integrate(&mut plan, &query)?.query
                    } else {
                        plan.add_query(&query)?
                    };
                    if let Some(n) = name {
                        query_names.insert(n, q);
                    }
                    registered.push(q);
                }
                LoweredStatement::DropQuery { name } => {
                    let q = query_names
                        .remove(&name)
                        .ok_or_else(|| RumorError::unknown(format!("query `{name}`")))?;
                    plan.remove_query(q)?;
                }
            }
        }
        self.plan = plan;
        self.lowerer = lowerer;
        self.query_names = query_names;
        Ok(registered)
    }

    /// [`Rumor::execute`] for a *live* engine: additionally returns the
    /// combined [`PlanDelta`] across every statement of the script —
    /// useful for inspecting what changed before handing the plan to a
    /// running runtime's `update_plan`/`apply_delta`.
    pub fn execute_live(&mut self, script: &str) -> Result<(Vec<QueryId>, PlanDelta)> {
        let before = self.plan.snapshot();
        let registered = self.execute(script)?;
        Ok((registered, before.delta(&self.plan)))
    }

    /// Runs the rule-based optimizer over the registered queries, using
    /// the configured [`rumor_core::SearchStrategy`] and the current
    /// selectivity calibration (see [`Rumor::calibrate`]).
    pub fn optimize(&mut self) -> Result<RewriteTrace> {
        let optimizer = self.optimizer();
        let trace = optimizer.optimize(&mut self.plan)?;
        self.optimized = true;
        Ok(trace)
    }

    /// The current (possibly optimized) plan.
    pub fn plan(&self) -> &PlanGraph {
        &self.plan
    }

    /// Source id by name.
    pub fn source_id(&self, name: &str) -> Option<SourceId> {
        self.plan.source_by_name(name).map(|s| s.id)
    }

    /// Query id by registered name (`QUERY name AS ...`).
    pub fn query_id(&self, name: &str) -> Option<QueryId> {
        self.query_names.get(name).copied()
    }

    /// Opens a [`SessionBuilder`] over the current plan — the one way to
    /// construct an execution runtime. The plan is used as-is: call
    /// [`Rumor::optimize`] first to get the shared plan. The builder
    /// chain picks the engine (single-threaded when
    /// [`SessionBuilder::workers`] is omitted; see the builder docs for
    /// guidance on choosing); the resulting [`Session`] speaks the
    /// [`EventRuntime`] lifecycle and routes results to per-query
    /// [`Subscription`]s.
    ///
    /// ```
    /// use rumor_engine::{EventRuntime, Rumor};
    /// use rumor_core::OptimizerConfig;
    /// use rumor_types::Tuple;
    ///
    /// let mut rumor = Rumor::new(OptimizerConfig::default());
    /// rumor
    ///     .execute(
    ///         "CREATE STREAM s (a0 INT, a1 INT);
    ///          QUERY q0 AS SELECT * FROM s WHERE a0 = 1;
    ///          QUERY q1 AS SELECT * FROM s WHERE a0 = 2;",
    ///     )
    ///     .unwrap();
    /// rumor.optimize().unwrap();
    /// // A 4-worker streaming session; `q1`'s owner subscribes.
    /// let mut session = rumor.session().workers(4).build().unwrap();
    /// let mut q1 = session.subscribe_named("q1").unwrap();
    /// let s = rumor.source_id("s").unwrap();
    /// let events: Vec<_> = (0..8u64)
    ///     .map(|ts| (s, Tuple::ints(ts, &[ts as i64 % 3, 0])))
    ///     .collect();
    /// session.push_batch(&events).unwrap();
    /// session.finish().unwrap();
    /// assert_eq!(q1.drain().len(), 2); // a0=2 at ts 2,5 — q1's results only
    /// assert_eq!(session.collect_all().len(), 3); // q0: a0=1 at ts 1,4,7
    /// ```
    pub fn session(&self) -> SessionBuilder<'_> {
        SessionBuilder::new(&self.plan, self.query_names.clone())
    }

    /// Renders the current plan as text (diagnostics).
    pub fn render_plan(&self) -> String {
        rumor_core::render::render_text(&self.plan)
    }

    /// Estimated cost profile of the current plan under the current
    /// selectivity calibration (see [`rumor_core::cost`]): useful for
    /// comparing the effect of different optimizer configurations on the
    /// same query set. Errors if the plan has no topological order.
    pub fn plan_cost(&self) -> Result<rumor_core::PlanCost> {
        rumor_core::estimate_cost_with(&self.plan, &self.selectivity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_types::Tuple;

    #[test]
    fn script_end_to_end_with_optimizer() {
        let mut rumor = Rumor::new(OptimizerConfig::default());
        let queries = rumor
            .execute(
                "CREATE STREAM cpu (pid INT, load INT);
                 QUERY a AS SELECT * FROM cpu WHERE pid = 1;
                 QUERY b AS SELECT * FROM cpu WHERE pid = 2;
                 QUERY c AS SELECT * FROM cpu WHERE pid = 1;",
            )
            .unwrap();
        assert_eq!(queries.len(), 3);
        let trace = rumor.optimize().unwrap();
        assert_eq!(trace.count("s_sigma"), 1);
        assert_eq!(rumor.plan().mop_count(), 1);

        let mut session = rumor.session().build().unwrap();
        // Per-query delivery: a's owner subscribes; b and c go unclaimed.
        let mut sub_a = session.subscribe_named("a").unwrap();
        let cpu = rumor.source_id("cpu").unwrap();
        for ts in 0..6u64 {
            session
                .push(cpu, Tuple::ints(ts, &[(ts % 3) as i64, 0]))
                .unwrap();
        }
        session.finish().unwrap();
        let b = rumor.query_id("b").unwrap();
        let c = rumor.query_id("c").unwrap();
        let a_results = sub_a.drain();
        assert_eq!(a_results.len(), 2);
        let rest = session.collect_all();
        assert_eq!(rest.iter().filter(|(q, _)| *q == b).count(), 2);
        // Identical queries a and c were CSE-merged but both still report.
        let c_results: Vec<&Tuple> = rest
            .iter()
            .filter(|(q, _)| *q == c)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(c_results, a_results.iter().collect::<Vec<_>>());
    }

    #[test]
    fn plan_cost_drops_after_optimize() {
        let mut rumor = Rumor::new(OptimizerConfig::default());
        rumor
            .execute(
                "CREATE STREAM s (a INT);
                 SELECT * FROM s WHERE a = 1;
                 SELECT * FROM s WHERE a = 2;
                 SELECT * FROM s WHERE a = 3;",
            )
            .unwrap();
        let before = rumor.plan_cost().unwrap();
        rumor.optimize().unwrap();
        let after = rumor.plan_cost().unwrap();
        assert!(after.evals_per_tuple < before.evals_per_tuple);
        assert_eq!(after.members, before.members);
        assert!(after.score() < before.score());
    }

    #[test]
    fn stats_calibrate_feedback_loop() {
        // Run a window, measure per-m-op selectivities, feed them back:
        // the calibrated cost estimate must reflect the measured rates.
        let mut rumor = Rumor::new(OptimizerConfig::cost_based());
        rumor
            .execute(
                "CREATE STREAM s (a INT, b INT);
                 DEFINE hot AS SELECT * FROM s WHERE a = 1;
                 QUERY q0 AS SELECT a, SUM(b) AS total FROM hot [RANGE 5] GROUP BY a;",
            )
            .unwrap();
        rumor.optimize().unwrap();
        let mut session = rumor.session().build().unwrap();
        let s = rumor.source_id("s").unwrap();
        // Every event has a = 1: the selection passes everything, so its
        // measured selectivity (1.0) is far above the 0.1 eq-const
        // default, and the aggregate behind it is busier than assumed.
        for ts in 0..10u64 {
            session.push(s, Tuple::ints(ts, &[1, 2])).unwrap();
        }
        session.finish().unwrap();
        let stats = session.stats().unwrap();
        if !crate::stats::STATS_COMPILED {
            // Without measured counters there is nothing to feed back:
            // the model stays uncalibrated and calibration is a no-op.
            assert!(!stats.selectivity_model().is_calibrated());
            return;
        }
        assert!(stats.selectivity_model().is_calibrated());
        let uncalibrated = rumor.plan_cost().unwrap();
        rumor.calibrate_from_stats(&stats);
        let calibrated = rumor.plan_cost().unwrap();
        // The per-tuple work profile ignores rates, but the weighted work
        // must rise: the aggregate's input rate is measured at 1.0 per
        // source event instead of the assumed 0.1.
        assert_eq!(calibrated.evals_per_tuple, uncalibrated.evals_per_tuple);
        assert!(
            calibrated.work > uncalibrated.work,
            "calibrated {calibrated:?} vs {uncalibrated:?}"
        );
    }

    #[test]
    fn register_after_optimize_integrates_incrementally() {
        let mut rumor = Rumor::new(OptimizerConfig::default());
        rumor
            .execute("CREATE STREAM s (a INT); QUERY q0 AS SELECT * FROM s WHERE a = 1;")
            .unwrap();
        rumor.optimize().unwrap();
        // Post-optimize registration goes through the incremental path:
        // the new selection joins the live shared plan.
        let before = rumor.plan().mop_count();
        let qs = rumor
            .execute("QUERY q1 AS SELECT * FROM s WHERE a = 2;")
            .unwrap();
        assert_eq!(qs.len(), 1);
        assert_eq!(rumor.plan().mop_count(), before, "selection merged in");
        assert_eq!(rumor.query_id("q1"), Some(qs[0]));
        // And DROP QUERY retires it again.
        rumor.execute("DROP QUERY q1;").unwrap();
        assert_eq!(rumor.query_id("q1"), None);
        assert!(rumor.execute("DROP QUERY q1;").is_err(), "already dropped");
        rumor.plan().validate().unwrap();
    }

    #[test]
    fn execute_live_reports_combined_delta() {
        let mut rumor = Rumor::new(OptimizerConfig::default());
        rumor
            .execute("CREATE STREAM s (a INT); QUERY q0 AS SELECT * FROM s WHERE a = 1;")
            .unwrap();
        rumor.optimize().unwrap();
        let (qs, delta) = rumor
            .execute_live("QUERY q1 AS SELECT * FROM s WHERE a = 2; DROP QUERY q0;")
            .unwrap();
        assert_eq!(qs.len(), 1);
        assert!(!delta.is_empty());
        // The mutated plan is exactly what a live session hot-swaps onto.
        let mut session = rumor.session().build().unwrap();
        session.update_plan(rumor.plan()).unwrap();
    }

    #[test]
    fn hybrid_script_query1() {
        // Query 1 of §4.1 end to end: smoothing aggregate + µ pattern +
        // stopping condition.
        let mut rumor = Rumor::new(OptimizerConfig::default());
        rumor
            .execute(
                "CREATE STREAM cpu (pid INT, load INT);
                 DEFINE smoothed AS
                   SELECT pid, AVG(load) AS load FROM cpu [RANGE 5] GROUP BY pid;
                 DEFINE ramp AS
                   PATTERN smoothed AS x WHERE x.load < 20.0
                   THEN ITERATE smoothed AS y
                   FILTER x.pid != y.pid
                   REBIND x.pid = y.pid AND y.load > x.load
                   SET load = y.load
                   WITHIN 100;
                 QUERY alerts AS SELECT * FROM ramp WHERE load > 90.0;",
            )
            .unwrap();
        rumor.optimize().unwrap();
        let mut session = rumor.session().build().unwrap();
        let mut alerts = session.subscribe_named("alerts").unwrap();
        let cpu = rumor.source_id("cpu").unwrap();
        // Process 7 ramps from 10 upward in steps of 20; process 8 stays flat.
        let mut ts = 0u64;
        for step in 0..10i64 {
            session
                .push(cpu, Tuple::ints(ts, &[7, 10 + step * 20]))
                .unwrap();
            ts += 1;
            session.push(cpu, Tuple::ints(ts, &[8, 50])).unwrap();
            ts += 1;
        }
        session.finish().unwrap();
        let got = alerts.drain();
        assert!(!got.is_empty(), "ramping process must trigger the alert");
        // Every alert is for process 7 with smoothed load > 90.
        for t in got {
            assert_eq!(t.value(0), Some(&rumor_types::Value::Int(7)));
            assert!(t.value(1).unwrap().as_float().unwrap() > 90.0);
        }
    }
}
