//! Runtime introspection: always-on per-m-op counters, dispatch-gate and
//! backpressure visibility, the paper's sharing-benefit metric measured
//! live — and the time domain: latency [`Histogram`]s, sampled per-m-op
//! wall-time attribution, a bounded [`TraceRing`] flight recorder, and an
//! interval [`Meter`].
//!
//! The layer is deliberately cheap: each executor owns plain `u64`
//! counters bumped inline at its dispatch sites (no atomics on the hot
//! path — per-worker executors are single-threaded by construction) and
//! the shard runtimes fold the per-worker counters at the same barriers
//! that already merge sinks. Wall time is *sampled*: one dispatch in
//! [`TIME_SAMPLE_EVERY`] is bracketed with `Instant` reads and the total
//! is scaled back up by the event ratio, so the hot loop pays a counter
//! mask, not a clock read. A [`StatsSnapshot`] is assembled on demand by
//! [`Session::stats`](crate::session::Session::stats), serialized with
//! [`StatsSnapshot::to_json`], and two snapshots bracketing a workload
//! window subtract into a per-window view via [`StatsSnapshot::diff`]
//! (histogram diffs subtract bucket counts, so interval percentiles stay
//! meaningful).
//!
//! Compiling with the `stats-off` cargo feature turns every counter and
//! clock update into a no-op (the snapshot machinery stays, reporting
//! zeros) — the baseline the overhead guard in the bench crate measures
//! against.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt::Write as _;
use std::time::Instant;

use rumor_core::plan::{PlanGraph, Producer};
use rumor_types::{MopId, QueryId};

use crate::metrics::FeedMode;

/// Whether counter updates are compiled in. `false` when the engine was
/// built with the `stats-off` feature (the overhead-guard baseline).
pub const STATS_COMPILED: bool = cfg!(not(feature = "stats-off"));

/// Wall-time sampling interval: one dispatch in this many is bracketed
/// with `Instant` reads (power of two — the sample decision is a mask on
/// counters the hot path already maintains). Totals are scaled back up by
/// the covered-event ratio in [`OpStats::est_nanos`].
pub const TIME_SAMPLE_EVERY: u64 = 64;

// ----------------------------------------------------------------------
// The log-bucket histogram.
// ----------------------------------------------------------------------

const HIST_BUCKETS: usize = 64;

/// A fixed-size log-bucket histogram (no dependencies, 64 power-of-two
/// buckets — enough for nanosecond values up to `u64::MAX`).
///
/// Percentiles report the *lower bound* of the bucket holding the
/// requested rank, which keeps the ordering invariant exact:
/// `p50() ≤ p90() ≤ p99() ≤ max()` always holds, because [`Histogram::max`]
/// is tracked exactly and can never be below its own bucket's lower
/// bound. Merge worker-side histograms with [`Histogram::absorb`];
/// subtract an interval baseline with [`Histogram::diff`] (per-bucket
/// saturating subtraction — the diffed histogram's percentiles describe
/// just the interval).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn bucket(value: u64) -> usize {
        // floor(log2(value)) with 0 landing in bucket 0.
        63 - (value | 1).leading_zeros() as usize
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if value > self.max {
            self.max = value;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (saturating).
    pub fn total(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `p` (`0.0 ..= 1.0`): the lower bound of the
    /// bucket containing the `⌈p·count⌉`-th sample. 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }

    /// Median ([`Histogram::percentile`] at 0.5).
    pub fn p50(&self) -> u64 {
        self.percentile(0.5)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(0.9)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Merges another histogram into this one (bucket-wise addition) —
    /// how per-worker latency distributions fold at stats barriers.
    pub fn absorb(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The interval `self − baseline`: bucket counts subtract
    /// (saturating), `count` is recomputed from the diffed buckets, and
    /// `max` keeps `self`'s value (a maximum is a lifetime gauge — it
    /// cannot be un-observed).
    pub fn diff(&self, baseline: &Histogram) -> Histogram {
        let mut out = Histogram::default();
        for i in 0..HIST_BUCKETS {
            out.buckets[i] = self.buckets[i].saturating_sub(baseline.buckets[i]);
        }
        out.count = out.buckets.iter().sum();
        out.sum = self.sum.saturating_sub(baseline.sum);
        out.max = self.max;
        out
    }

    /// One-line JSON summary (`count`, `total_nanos`, percentiles, max).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"total_nanos\": {}, \"p50_nanos\": {}, \"p90_nanos\": {}, \"p99_nanos\": {}, \"max_nanos\": {}}}",
            self.count,
            self.sum,
            self.p50(),
            self.p90(),
            self.p99(),
            self.max,
        )
    }
}

// ----------------------------------------------------------------------
// Hot-path recording support: fast id hashing + compact accumulators.
// ----------------------------------------------------------------------

/// Multiply-shift hasher for small integer keys (`QueryId`, `MopId`).
/// The std SipHash costs tens of nanoseconds per lookup — measurable on
/// the per-delivered-tuple latency path — while a Fibonacci multiply is
/// a couple of cycles and distributes sequential ids well.
#[derive(Default, Clone)]
pub(crate) struct IdHasher(u64);

impl std::hash::Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Fold high entropy into the low bits the table indexes with.
        self.0 ^ (self.0 >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.0 = (self.0 ^ n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// `BuildHasher` for [`IdHasher`]-keyed maps.
pub(crate) type IdBuild = std::hash::BuildHasherDefault<IdHasher>;

/// Inline bucket slots a [`LatAcc`] holds before spilling to a boxed
/// [`Histogram`]. Latency values cluster into a handful of log buckets
/// per query, so four slots absorb virtually every recording.
const LAT_INLINE: usize = 4;

/// A compact per-query latency accumulator for the delivery hot path.
/// A full [`Histogram`] is 536 bytes; at 1024 registered queries the
/// per-query map blows past L2 and every delivered tuple pays a cache
/// miss. This accumulator is ~64 bytes — an exact `emitted` tally plus
/// sparse `(bucket, count)` slots for the *sampled* deliveries — and
/// expands to a `Histogram` at snapshot time
/// ([`LatAcc::to_histogram`]). The split keeps the per-tuple hot-path
/// work to one counter add: [`LatAcc::note_emit`] runs per delivered
/// tuple, while [`LatAcc::record`] runs only for tuples in a sampled
/// delivery batch (one batch in [`TIME_SAMPLE_EVERY`] on the per-event
/// path). Within the sampled population nothing is lost: a fifth
/// distinct bucket (or a saturated slot) spills into a lazily boxed
/// full histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct LatAcc {
    /// `(bucket index, samples)` pairs; `count == 0` marks a free slot.
    slots: [(u8, u32); LAT_INLINE],
    /// Tuples delivered (exact — every tuple, sampled or not).
    emitted: u64,
    /// Latency samples recorded (`<= emitted`).
    count: u64,
    sum: u64,
    max: u64,
    spill: Option<Box<Histogram>>,
}

impl LatAcc {
    /// Counts one delivered tuple — the only per-tuple cost on unsampled
    /// delivery batches.
    #[inline(always)]
    pub(crate) fn note_emit(&mut self) {
        self.emitted += 1;
    }

    /// Records one latency sample (nanoseconds).
    #[inline]
    pub(crate) fn record(&mut self, value: u64) {
        let b = Histogram::bucket(value) as u8;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if value > self.max {
            self.max = value;
        }
        for slot in &mut self.slots {
            if slot.1 == 0 {
                *slot = (b, 1);
                return;
            }
            if slot.0 == b {
                if let Some(n) = slot.1.checked_add(1) {
                    slot.1 = n;
                    return;
                }
                break;
            }
        }
        // Fifth distinct bucket or a saturated slot: exact spill. The
        // spill histogram only carries bucket counts; count/sum/max stay
        // authoritative on the accumulator.
        self.spill.get_or_insert_with(Default::default).buckets[b as usize] += 1;
    }

    /// Tuples delivered (exact).
    pub(crate) fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Folds another accumulator's samples into this one (exact — both
    /// sides expand to histograms, so no bucket is lost). Cold path:
    /// used when a dead subscription's accumulator is reclaimed and at
    /// snapshot assembly, never per tuple.
    pub(crate) fn absorb(&mut self, other: &LatAcc) {
        self.emitted += other.emitted;
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            let emitted = self.emitted;
            *self = other.clone();
            self.emitted = emitted;
            return;
        }
        let mut merged = self.to_histogram();
        merged.absorb(&other.to_histogram());
        self.count = merged.count;
        self.sum = merged.sum;
        self.max = merged.max;
        self.slots = [(0, 0); LAT_INLINE];
        self.spill = Some(Box::new(merged));
    }

    /// Expands into the equivalent full [`Histogram`].
    pub(crate) fn to_histogram(&self) -> Histogram {
        let mut h = self.spill.as_deref().cloned().unwrap_or_default();
        for &(b, n) in &self.slots {
            h.buckets[b as usize] += n as u64;
        }
        h.count = self.count;
        h.sum = self.sum;
        h.max = self.max;
        h
    }
}

// ----------------------------------------------------------------------
// The flight recorder.
// ----------------------------------------------------------------------

fn trace_epoch() -> Instant {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace epoch (first use). Every
/// [`TraceEvent`] timestamps against this one clock, so events recorded
/// on different worker threads merge into one coherent timeline.
pub fn trace_clock_nanos() -> u64 {
    trace_epoch().elapsed().as_nanos() as u64
}

/// One journaled runtime transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the process trace epoch ([`trace_clock_nanos`]).
    pub at_nanos: u64,
    /// Stable event kind (`gate_freeze`, `swap_quiesce`,
    /// `backpressure_stall`, ...).
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// A bounded in-memory flight recorder: the last `capacity` runtime
/// transitions, oldest evicted first. Kept per executor / runtime /
/// session and merged (sorted by timestamp) in
/// [`Session::trace`](crate::session::Session::trace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRing {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Default for TraceRing {
    fn default() -> Self {
        TraceRing::with_capacity(256)
    }
}

impl TraceRing {
    /// A recorder holding at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceRing {
            ring: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Journals one event, evicting the oldest when full.
    pub fn record(&mut self, kind: &'static str, detail: String) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceEvent {
            at_nanos: trace_clock_nanos(),
            kind,
            detail,
        });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Renders trace events as JSON lines (one object per line, sorted by
/// whatever order the caller passed —
/// [`Session::trace`](crate::session::Session::trace) pre-sorts by
/// timestamp).
pub fn trace_json_lines(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let _ = writeln!(
            out,
            "{{\"at_us\": {:.1}, \"kind\": \"{}\", \"detail\": \"{}\"}}",
            e.at_nanos as f64 / 1_000.0,
            json_escape(e.kind),
            json_escape(&e.detail),
        );
    }
    out
}

// ----------------------------------------------------------------------
// Per-op counters.
// ----------------------------------------------------------------------

/// Raw per-operator counters owned by one executor, bumped inline at the
/// dispatch sites. All updates compile to nothing under `stats-off`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Events fed into the operator (per-event calls + batched run lengths).
    pub events_in: u64,
    /// Events the operator emitted downstream.
    pub events_out: u64,
    /// Batched invocations (`process_batch` / `process_batch_keyed`).
    pub batch_calls: u64,
    /// Per-event invocations (`process`).
    pub event_calls: u64,
    /// Wall nanoseconds accumulated by *sampled* dispatches (one in
    /// [`TIME_SAMPLE_EVERY`]).
    pub sampled_nanos: u64,
    /// Sampled dispatch count.
    pub sampled_calls: u64,
    /// Events covered by the sampled dispatches — the scale factor
    /// [`OpStats::est_nanos`] uses to estimate total wall time.
    pub sampled_events: u64,
}

impl OpCounters {
    /// Records one per-event `process` invocation that emitted `emitted`
    /// events.
    #[inline(always)]
    pub fn record_event(&mut self, emitted: u64) {
        #[cfg(not(feature = "stats-off"))]
        {
            self.events_in += 1;
            self.event_calls += 1;
            self.events_out += emitted;
        }
        #[cfg(feature = "stats-off")]
        let _ = emitted;
    }

    /// Records one batched invocation over `events` inputs that emitted
    /// `emitted` events.
    #[inline(always)]
    pub fn record_batch(&mut self, events: u64, emitted: u64) {
        #[cfg(not(feature = "stats-off"))]
        {
            self.events_in += events;
            self.batch_calls += 1;
            self.events_out += emitted;
        }
        #[cfg(feature = "stats-off")]
        let _ = (events, emitted);
    }

    /// Whether the *next* dispatch is a timing sample: one call in
    /// [`TIME_SAMPLE_EVERY`] (a mask over counters the dispatch site
    /// already bumps) returns a live `Instant`; everything else — and
    /// every call under `stats-off` — costs a branch. Pair with
    /// [`OpCounters::record_time`] after the dispatch.
    #[inline(always)]
    pub fn sample_start(&self) -> Option<Instant> {
        #[cfg(not(feature = "stats-off"))]
        if (self.event_calls + self.batch_calls) & (TIME_SAMPLE_EVERY - 1) == 0 {
            return Some(Instant::now());
        }
        None
    }

    /// Closes a timing sample opened by [`OpCounters::sample_start`]
    /// (no-op when that dispatch was not sampled), attributing the
    /// elapsed wall time to `events` input events.
    #[inline(always)]
    pub fn record_time(&mut self, start: Option<Instant>, events: u64) {
        #[cfg(not(feature = "stats-off"))]
        if let Some(t) = start {
            self.sampled_nanos += t.elapsed().as_nanos() as u64;
            self.sampled_calls += 1;
            self.sampled_events += events.max(1);
        }
        #[cfg(feature = "stats-off")]
        let _ = (start, events);
    }
}

/// Counters plus sampled gauges for one m-op, as reported by one
/// executor (or folded across all workers of a shard runtime).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpStats {
    /// The plan node these counters belong to.
    pub mop: MopId,
    /// The operator implementation's name (`MultiOp::name`).
    pub name: String,
    /// Events fed in.
    pub events_in: u64,
    /// Events emitted.
    pub events_out: u64,
    /// Batched invocations.
    pub batch_calls: u64,
    /// Per-event invocations.
    pub event_calls: u64,
    /// Resident state (live NFA instances, buffered join tuples, window
    /// occupancy + group count) sampled at snapshot time; 0 for
    /// stateless operators. Summed across workers on shard runtimes.
    pub state_size: u64,
    /// Wall nanoseconds measured by the sampled dispatches.
    pub sampled_nanos: u64,
    /// Sampled dispatch count.
    pub sampled_calls: u64,
    /// Events the sampled dispatches covered.
    pub sampled_events: u64,
}

impl OpStats {
    /// Observed selectivity: events out per event in (0 when nothing was
    /// fed).
    pub fn selectivity(&self) -> f64 {
        if self.events_in == 0 {
            0.0
        } else {
            self.events_out as f64 / self.events_in as f64
        }
    }

    /// Estimated total wall nanoseconds spent in this operator: the
    /// sampled time scaled up by the covered-event ratio
    /// (`sampled_nanos × events_in / sampled_events`). 0 before the
    /// first sample and under `stats-off`.
    pub fn est_nanos(&self) -> u64 {
        if self.sampled_events == 0 {
            0
        } else {
            ((self.sampled_nanos as u128 * self.events_in.max(1) as u128)
                / self.sampled_events as u128) as u64
        }
    }

    /// Measured wall nanoseconds per input event (sampled; 0.0 before the
    /// first sample).
    pub fn nanos_per_event(&self) -> f64 {
        if self.sampled_events == 0 {
            0.0
        } else {
            self.sampled_nanos as f64 / self.sampled_events as f64
        }
    }
}

/// The adaptive dispatch gate's state for one plan component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateStats {
    /// Component index (parallel to the executor's component table).
    pub component: usize,
    /// The mode the gate currently believes faster.
    pub mode: FeedMode,
    /// Whether the gate has frozen its choice (probing stopped).
    pub frozen: bool,
    /// A process-wide forced mode (`RUMOR_FORCE_PER_EVENT` /
    /// `RUMOR_FORCE_BATCHED`), if pinned.
    pub forced: Option<FeedMode>,
}

/// One executor's full stats report: per-op counters, gate state, and the
/// executor's retained flight-recorder events. Shard runtimes fold
/// per-worker reports with [`ExecStatsReport::absorb`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStatsReport {
    /// Per-op counters, in the executor's operator order.
    pub ops: Vec<OpStats>,
    /// Per-component gate state (worker 0's view after a fold — the gate
    /// adapts independently per worker).
    pub gates: Vec<GateStats>,
    /// Flight-recorder events retained by the executor (gate flips and
    /// freezes). Folding concatenates; consumers sort by timestamp.
    pub trace: Vec<TraceEvent>,
}

impl ExecStatsReport {
    /// Folds another worker's report into this one: counters and state
    /// gauges sum per op; gate state keeps the first (worker 0) view;
    /// trace events concatenate.
    pub fn absorb(&mut self, other: &ExecStatsReport) {
        if self.ops.is_empty() && self.gates.is_empty() {
            *self = other.clone();
            return;
        }
        debug_assert_eq!(self.ops.len(), other.ops.len(), "same plan on all workers");
        for (mine, theirs) in self.ops.iter_mut().zip(&other.ops) {
            debug_assert_eq!(mine.mop, theirs.mop);
            mine.events_in += theirs.events_in;
            mine.events_out += theirs.events_out;
            mine.batch_calls += theirs.batch_calls;
            mine.event_calls += theirs.event_calls;
            mine.state_size += theirs.state_size;
            mine.sampled_nanos += theirs.sampled_nanos;
            mine.sampled_calls += theirs.sampled_calls;
            mine.sampled_events += theirs.sampled_events;
        }
        self.trace.extend(other.trace.iter().cloned());
    }
}

/// Runtime-level (not per-op) counters: queue pressure and barrier
/// latency distributions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Per-worker high-water mark of the dispatch queue depth (streaming
    /// pool only; empty for the local and one-shot backends).
    pub queue_depth_hwm: Vec<u64>,
    /// Dispatches that found the worker queue full and fell back to a
    /// blocking send — the backpressure count (streaming pool only).
    pub blocking_sends: u64,
    /// Flush-barrier latency distribution: one sample per `flush` and
    /// `finish` barrier (`count()` is the barrier count, `total()` the
    /// wall nanoseconds inside barriers).
    pub flush: Histogram,
    /// `update_plan` epoch latency distribution (quiesce → install →
    /// resume), one sample per epoch.
    pub update: Histogram,
}

/// Results delivered for one query at the subscription dispatch point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryStats {
    /// The query.
    pub query: QueryId,
    /// Result tuples routed to this query (subscription or unclaimed).
    pub emitted: u64,
    /// Ingest→delivery latency distribution over *sampled* delivery
    /// batches (`count() <= emitted`; `emitted` itself is exact). A
    /// delivery batch is sampled when it follows a fresh ingest mark —
    /// one push in [`TIME_SAMPLE_EVERY`] takes an `Instant` (batch entry
    /// points always mark, so barrier deliveries are always sampled) —
    /// and measures against that mark, so the distribution reflects true
    /// queueing + processing delay with no clock read and only one
    /// counter add per tuple on the unsampled hot path.
    pub latency: Histogram,
}

/// One shared ancestor m-op of a query, with its fan-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedOpRef {
    /// The shared m-op.
    pub mop: MopId,
    /// How many member operators (≈ queries) share it.
    pub fan_in: usize,
}

/// Sharing attribution for one query: which shared m-ops sit in its
/// ancestry and the paper's benefit metric — how many operator
/// invocations (and how much measured wall time) sharing saved versus an
/// unshared plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySharing {
    /// The query.
    pub query: QueryId,
    /// Shared m-ops (fan-in > 1) in this query's ancestry, by id.
    pub shared: Vec<SharedOpRef>,
    /// Estimated events saved by sharing across this query's shared
    /// ancestors: Σ `events_in(op) × (fan_in − 1)` — an unshared plan
    /// would have run each member's private copy over the same input.
    pub events_saved: u64,
    /// The same saving priced in measured wall time: events saved at each
    /// shared op × that op's sampled nanoseconds per event. 0 until the
    /// op has timing samples (and under `stats-off`).
    pub nanos_saved: u64,
}

/// A point-in-time, engine-independent view of the whole runtime.
///
/// Counters are cumulative since session construction; gauges
/// (`state_size`, `queue_depth_hwm`, gate state) are the value at
/// snapshot time. Serialize with [`to_json`](Self::to_json); subtract a
/// baseline with [`diff`](Self::diff).
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Backend label: `local`, `sharded`, or `streaming`.
    pub engine: &'static str,
    /// Worker count (1 for the local backend).
    pub workers: usize,
    /// Total events accepted by the session.
    pub events_in: u64,
    /// Per-m-op counters, folded across workers.
    pub ops: Vec<OpStats>,
    /// Adaptive-gate state per component.
    pub gates: Vec<GateStats>,
    /// Queue/backpressure/barrier counters.
    pub runtime: RuntimeStats,
    /// Per-query delivered-result counts and latency distributions, one
    /// entry per registered query.
    pub queries: Vec<QueryStats>,
    /// Per-query sharing attribution.
    pub sharing: Vec<QuerySharing>,
}

impl StatsSnapshot {
    /// Measured per-m-op selectivities (and, when timing samples exist,
    /// per-m-op *time weights* — measured nanoseconds per event
    /// normalized to a mean of 1.0) as a cost-model calibration (see
    /// [`rumor_core::SelectivityModel`]): every op that has seen at least
    /// one input event contributes its observed events-out/events-in
    /// ratio. Feed the result to [`crate::Rumor::calibrate`] (or
    /// `Optimizer::with_selectivity`) so the cost-based sharing search
    /// scores candidate plans against this workload instead of the
    /// per-kind defaults — with work terms weighted by where the wall
    /// time actually went.
    pub fn selectivity_model(&self) -> rumor_core::SelectivityModel {
        let mut model = rumor_core::SelectivityModel::from_measured(
            self.ops
                .iter()
                .filter(|o| o.events_in > 0)
                .map(|o| (o.mop, o.selectivity())),
        );
        let timed: Vec<(MopId, f64)> = self
            .ops
            .iter()
            .filter(|o| o.sampled_events > 0 && o.events_in > 0)
            .map(|o| (o.mop, o.nanos_per_event()))
            .collect();
        if !timed.is_empty() {
            let mean = timed.iter().map(|(_, n)| n).sum::<f64>() / timed.len() as f64;
            if mean > 0.0 {
                for (mop, npe) in timed {
                    model = model.with_time_weight(mop, npe / mean);
                }
            }
        }
        model
    }

    /// The counter delta `self − baseline`: per-op and per-query counters
    /// subtract (saturating, matched by id), histograms subtract bucket
    /// counts; gauges — `state_size`, `queue_depth_hwm`, gate state —
    /// keep `self`'s value; per-query `events_saved`/`nanos_saved` are
    /// recomputed from the diffed op counters. Take a snapshot before
    /// and after a workload window and diff them to see just that window.
    pub fn diff(&self, baseline: &StatsSnapshot) -> StatsSnapshot {
        let base_ops: HashMap<MopId, &OpStats> = baseline.ops.iter().map(|o| (o.mop, o)).collect();
        let ops: Vec<OpStats> = self
            .ops
            .iter()
            .map(|o| {
                let b = base_ops.get(&o.mop);
                let sub =
                    |f: fn(&OpStats) -> u64| f(o).saturating_sub(b.map(|b| f(b)).unwrap_or(0));
                OpStats {
                    mop: o.mop,
                    name: o.name.clone(),
                    events_in: sub(|o| o.events_in),
                    events_out: sub(|o| o.events_out),
                    batch_calls: sub(|o| o.batch_calls),
                    event_calls: sub(|o| o.event_calls),
                    state_size: o.state_size,
                    sampled_nanos: sub(|o| o.sampled_nanos),
                    sampled_calls: sub(|o| o.sampled_calls),
                    sampled_events: sub(|o| o.sampled_events),
                }
            })
            .collect();
        let base_queries: HashMap<QueryId, &QueryStats> =
            baseline.queries.iter().map(|q| (q.query, q)).collect();
        let queries = self
            .queries
            .iter()
            .map(|q| {
                let b = base_queries.get(&q.query);
                QueryStats {
                    query: q.query,
                    emitted: q.emitted.saturating_sub(b.map(|b| b.emitted).unwrap_or(0)),
                    latency: match b {
                        Some(b) => q.latency.diff(&b.latency),
                        None => q.latency.clone(),
                    },
                }
            })
            .collect();
        let in_by_op: HashMap<MopId, u64> = ops.iter().map(|o| (o.mop, o.events_in)).collect();
        let npe_by_op: HashMap<MopId, f64> =
            ops.iter().map(|o| (o.mop, o.nanos_per_event())).collect();
        let sharing = self
            .sharing
            .iter()
            .map(|s| QuerySharing {
                query: s.query,
                shared: s.shared.clone(),
                events_saved: events_saved(&s.shared, &in_by_op),
                nanos_saved: nanos_saved(&s.shared, &in_by_op, &npe_by_op),
            })
            .collect();
        StatsSnapshot {
            engine: self.engine,
            workers: self.workers,
            events_in: self.events_in.saturating_sub(baseline.events_in),
            ops,
            gates: self.gates.clone(),
            runtime: RuntimeStats {
                queue_depth_hwm: self.runtime.queue_depth_hwm.clone(),
                blocking_sends: self
                    .runtime
                    .blocking_sends
                    .saturating_sub(baseline.runtime.blocking_sends),
                flush: self.runtime.flush.diff(&baseline.runtime.flush),
                update: self.runtime.update.diff(&baseline.runtime.update),
            },
            queries,
            sharing,
        }
    }

    /// Total estimated events saved by sharing across all queries'
    /// shared ancestors (each shared op counted once).
    pub fn total_events_saved(&self) -> u64 {
        let mut seen: HashSet<MopId> = HashSet::new();
        let in_by_op: HashMap<MopId, u64> = self.ops.iter().map(|o| (o.mop, o.events_in)).collect();
        let mut total = 0u64;
        for s in &self.sharing {
            for op in &s.shared {
                if seen.insert(op.mop) {
                    total += in_by_op.get(&op.mop).copied().unwrap_or(0)
                        * (op.fan_in.saturating_sub(1)) as u64;
                }
            }
        }
        total
    }

    /// Total estimated wall nanoseconds saved by sharing (each shared op
    /// counted once, priced at its measured nanoseconds per event). 0
    /// until timing samples exist.
    pub fn total_nanos_saved(&self) -> u64 {
        let mut seen: HashSet<MopId> = HashSet::new();
        let by_op: HashMap<MopId, &OpStats> = self.ops.iter().map(|o| (o.mop, o)).collect();
        let mut total = 0u64;
        for s in &self.sharing {
            for op in &s.shared {
                if seen.insert(op.mop) {
                    if let Some(o) = by_op.get(&op.mop) {
                        let saved = o.events_in * (op.fan_in.saturating_sub(1)) as u64;
                        total += (saved as f64 * o.nanos_per_event()) as u64;
                    }
                }
            }
        }
        total
    }

    /// Per-m-op share of the total estimated wall time (empty until
    /// timing samples exist). Shares sum to ~1.0 across ops.
    pub fn time_shares(&self) -> Vec<(MopId, f64)> {
        let total: u64 = self.ops.iter().map(|o| o.est_nanos()).sum();
        if total == 0 {
            return Vec::new();
        }
        self.ops
            .iter()
            .map(|o| (o.mop, o.est_nanos() as f64 / total as f64))
            .collect()
    }

    /// Serializes the snapshot as a stable, hand-rolled JSON document
    /// (the workspace deliberately carries no serialization dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"engine\": \"{}\",", self.engine);
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(out, "  \"stats_compiled\": {},", STATS_COMPILED);
        let _ = writeln!(out, "  \"events_in\": {},", self.events_in);
        let total_est: u64 = self.ops.iter().map(|o| o.est_nanos()).sum();
        out.push_str("  \"ops\": [\n");
        for (i, o) in self.ops.iter().enumerate() {
            let share = if total_est == 0 {
                0.0
            } else {
                o.est_nanos() as f64 / total_est as f64
            };
            let _ = writeln!(
                out,
                "    {{\"mop\": {}, \"name\": \"{}\", \"events_in\": {}, \"events_out\": {}, \"selectivity\": {:.4}, \"batch_calls\": {}, \"event_calls\": {}, \"state_size\": {}, \"est_nanos\": {}, \"time_share\": {:.4}, \"sampled_calls\": {}}}{}",
                o.mop.index(),
                json_escape(&o.name),
                o.events_in,
                o.events_out,
                o.selectivity(),
                o.batch_calls,
                o.event_calls,
                o.state_size,
                o.est_nanos(),
                share,
                o.sampled_calls,
                comma(i, self.ops.len()),
            );
        }
        out.push_str("  ],\n  \"gates\": [\n");
        for (i, g) in self.gates.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"component\": {}, \"mode\": \"{}\", \"frozen\": {}, \"forced\": {}}}{}",
                g.component,
                mode_str(g.mode),
                g.frozen,
                match g.forced {
                    Some(m) => format!("\"{}\"", mode_str(m)),
                    None => "null".to_string(),
                },
                comma(i, self.gates.len()),
            );
        }
        out.push_str("  ],\n");
        let hwm: Vec<String> = self
            .runtime
            .queue_depth_hwm
            .iter()
            .map(u64::to_string)
            .collect();
        let _ = writeln!(
            out,
            "  \"runtime\": {{\"queue_depth_hwm\": [{}], \"blocking_sends\": {}, \"flush_barriers\": {}, \"flush_nanos\": {}, \"flush_latency\": {}, \"update_epochs\": {}, \"update_nanos\": {}, \"update_latency\": {}}},",
            hwm.join(", "),
            self.runtime.blocking_sends,
            self.runtime.flush.count(),
            self.runtime.flush.total(),
            self.runtime.flush.to_json(),
            self.runtime.update.count(),
            self.runtime.update.total(),
            self.runtime.update.to_json(),
        );
        out.push_str("  \"queries\": [\n");
        for (i, q) in self.queries.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"query\": {}, \"emitted\": {}, \"latency\": {}}}{}",
                q.query.index(),
                q.emitted,
                q.latency.to_json(),
                comma(i, self.queries.len()),
            );
        }
        out.push_str("  ],\n  \"sharing\": [\n");
        for (i, s) in self.sharing.iter().enumerate() {
            let shared: Vec<String> = s
                .shared
                .iter()
                .map(|op| format!("{{\"mop\": {}, \"fan_in\": {}}}", op.mop.index(), op.fan_in))
                .collect();
            let _ = writeln!(
                out,
                "    {{\"query\": {}, \"shared\": [{}], \"events_saved\": {}, \"nanos_saved\": {}}}{}",
                s.query.index(),
                shared.join(", "),
                s.events_saved,
                s.nanos_saved,
                comma(i, self.sharing.len()),
            );
        }
        let _ = writeln!(
            out,
            "  ],\n  \"total_events_saved\": {},\n  \"total_nanos_saved\": {}\n}}",
            self.total_events_saved(),
            self.total_nanos_saved(),
        );
        out
    }
}

// ----------------------------------------------------------------------
// The interval meter.
// ----------------------------------------------------------------------

/// Where [`Meter`] interval lines go. Implementations must tolerate being
/// called from whatever thread drives the session (the meter itself is
/// caller-driven, so this is the session thread in practice).
pub trait MeterSink {
    /// Emits one JSON line (no trailing newline in `line`).
    fn emit(&mut self, line: &str);
}

/// A [`MeterSink`] writing lines to stderr.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrMeterSink;

impl MeterSink for StderrMeterSink {
    fn emit(&mut self, line: &str) {
        eprintln!("{line}");
    }
}

/// A [`MeterSink`] appending lines to a file (buffered; flushed on drop).
#[derive(Debug)]
pub struct FileMeterSink {
    out: std::io::BufWriter<std::fs::File>,
}

impl FileMeterSink {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(FileMeterSink {
            out: std::io::BufWriter::new(std::fs::File::create(path)?),
        })
    }
}

impl MeterSink for FileMeterSink {
    fn emit(&mut self, line: &str) {
        use std::io::Write as _;
        let _ = writeln!(self.out, "{line}");
    }
}

/// A [`MeterSink`] collecting lines in memory (tests, bench reports).
#[derive(Debug, Default, Clone)]
pub struct CollectingMeterSink {
    /// The emitted lines, in order.
    pub lines: Vec<String>,
}

impl MeterSink for CollectingMeterSink {
    fn emit(&mut self, line: &str) {
        self.lines.push(line.to_string());
    }
}

/// Caller-driven interval metering: feed it a [`StatsSnapshot`] whenever
/// an interval closes (a timer tick, every N batches — the cadence is
/// the caller's), and it diffs against the previous snapshot via
/// [`StatsSnapshot::diff`] and emits one compact JSON line per interval
/// to its [`MeterSink`]. The first tick only establishes the baseline.
#[derive(Debug)]
pub struct Meter<S: MeterSink> {
    sink: S,
    last: Option<StatsSnapshot>,
    intervals: u64,
}

impl<S: MeterSink> Meter<S> {
    /// A meter emitting to `sink`.
    pub fn new(sink: S) -> Self {
        Meter {
            sink,
            last: None,
            intervals: 0,
        }
    }

    /// Closes an interval: diffs `snapshot` against the previous tick's
    /// and emits the interval line (returns `false` on the baseline
    /// tick, which emits nothing).
    pub fn tick(&mut self, snapshot: StatsSnapshot) -> bool {
        let emitted = if let Some(prev) = &self.last {
            let d = snapshot.diff(prev);
            let line = meter_line(self.intervals, &d);
            self.sink.emit(&line);
            self.intervals += 1;
            true
        } else {
            false
        };
        self.last = Some(snapshot);
        emitted
    }

    /// Intervals emitted so far (baseline tick excluded).
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Consumes the meter, returning its sink (e.g. to read collected
    /// lines).
    pub fn into_sink(self) -> S {
        self.sink
    }
}

/// One compact interval line from a diffed snapshot.
fn meter_line(interval: u64, d: &StatsSnapshot) -> String {
    let delivered: u64 = d.queries.iter().map(|q| q.emitted).sum();
    let busiest = d.ops.iter().max_by_key(|o| (o.est_nanos(), o.events_in));
    let total_est: u64 = d.ops.iter().map(|o| o.est_nanos()).sum();
    let (busiest_name, busiest_share) = match busiest {
        Some(o) if total_est > 0 => (o.name.clone(), o.est_nanos() as f64 / total_est as f64),
        Some(o) => (o.name.clone(), 0.0),
        None => (String::new(), 0.0),
    };
    format!(
        "{{\"interval\": {}, \"events_in\": {}, \"delivered\": {}, \"events_saved\": {}, \"blocking_sends\": {}, \"flush_barriers\": {}, \"flush_p99_us\": {:.1}, \"busiest\": \"{}\", \"busiest_share\": {:.3}}}",
        interval,
        d.events_in,
        delivered,
        d.total_events_saved(),
        d.runtime.blocking_sends,
        d.runtime.flush.count(),
        d.runtime.flush.p99() as f64 / 1_000.0,
        json_escape(&busiest_name),
        busiest_share,
    )
}

// ----------------------------------------------------------------------
// Sharing attribution.
// ----------------------------------------------------------------------

/// Computes per-query sharing attribution from the plan structure and a
/// folded op report: for each query, walk its output stream's ancestry
/// through member-precise producer links, collect every m-op with more
/// than one member, and price the saved work at `events_in × (fan_in −
/// 1)` per shared ancestor — in events, and in measured wall time where
/// timing samples exist.
pub fn sharing_attribution(plan: &PlanGraph, ops: &[OpStats]) -> Vec<QuerySharing> {
    let in_by_op: HashMap<MopId, u64> = ops.iter().map(|o| (o.mop, o.events_in)).collect();
    let npe_by_op: HashMap<MopId, f64> = ops.iter().map(|o| (o.mop, o.nanos_per_event())).collect();
    plan.query_outputs()
        .iter()
        .map(|&(query, out)| {
            let mut shared: Vec<SharedOpRef> = Vec::new();
            let mut seen_mops: HashSet<MopId> = HashSet::new();
            let mut stack = vec![out];
            let mut seen_streams: HashSet<_> = HashSet::new();
            while let Some(s) = stack.pop() {
                if !seen_streams.insert(s) {
                    continue;
                }
                if let Producer::Mop { mop, member } = plan.stream(s).producer {
                    let node = plan.mop(mop);
                    if seen_mops.insert(mop) && node.members.len() > 1 {
                        shared.push(SharedOpRef {
                            mop,
                            fan_in: node.members.len(),
                        });
                    }
                    // Member-precise lineage: only the producing member's
                    // inputs are this query's ancestors.
                    stack.extend(node.members[member].inputs.iter().copied());
                }
            }
            shared.sort_by_key(|op| op.mop);
            let events_saved = events_saved(&shared, &in_by_op);
            let nanos_saved = nanos_saved(&shared, &in_by_op, &npe_by_op);
            QuerySharing {
                query,
                shared,
                events_saved,
                nanos_saved,
            }
        })
        .collect()
}

fn events_saved(shared: &[SharedOpRef], in_by_op: &HashMap<MopId, u64>) -> u64 {
    shared
        .iter()
        .map(|op| {
            in_by_op.get(&op.mop).copied().unwrap_or(0) * (op.fan_in.saturating_sub(1)) as u64
        })
        .sum()
}

fn nanos_saved(
    shared: &[SharedOpRef],
    in_by_op: &HashMap<MopId, u64>,
    npe_by_op: &HashMap<MopId, f64>,
) -> u64 {
    shared
        .iter()
        .map(|op| {
            let saved =
                in_by_op.get(&op.mop).copied().unwrap_or(0) * (op.fan_in.saturating_sub(1)) as u64;
            (saved as f64 * npe_by_op.get(&op.mop).copied().unwrap_or(0.0)) as u64
        })
        .sum()
}

/// Stable label for a [`FeedMode`] in snapshots and `explain` output.
pub fn mode_str(mode: FeedMode) -> &'static str {
    match mode {
        FeedMode::PerEvent => "per_event",
        FeedMode::Batched => "batched",
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 == len {
        ""
    } else {
        ","
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(mop: u32, events_in: u64, events_out: u64) -> OpStats {
        OpStats {
            mop: MopId(mop),
            name: format!("op{mop}"),
            events_in,
            events_out,
            batch_calls: 1,
            event_calls: 2,
            state_size: 3,
            sampled_nanos: 0,
            sampled_calls: 0,
            sampled_events: 0,
        }
    }

    fn snap(ops: Vec<OpStats>) -> StatsSnapshot {
        StatsSnapshot {
            engine: "local",
            workers: 1,
            events_in: ops.iter().map(|o| o.events_in).sum(),
            ops,
            gates: vec![GateStats {
                component: 0,
                mode: FeedMode::Batched,
                frozen: true,
                forced: None,
            }],
            runtime: RuntimeStats::default(),
            queries: vec![QueryStats {
                query: QueryId(0),
                emitted: 7,
                latency: Histogram::default(),
            }],
            sharing: vec![QuerySharing {
                query: QueryId(0),
                shared: vec![SharedOpRef {
                    mop: MopId(0),
                    fan_in: 3,
                }],
                events_saved: 0,
                nanos_saved: 0,
            }],
        }
    }

    #[test]
    fn diff_subtracts_counters_and_keeps_gauges() {
        let before = snap(vec![op(0, 100, 40)]);
        let mut after = snap(vec![op(0, 250, 90)]);
        after.queries[0].emitted = 19;
        let d = after.diff(&before);
        assert_eq!(d.ops[0].events_in, 150);
        assert_eq!(d.ops[0].events_out, 50);
        assert_eq!(d.ops[0].state_size, 3, "gauge keeps the later value");
        assert_eq!(d.queries[0].emitted, 12);
        // events_saved recomputed from the diffed window: 150 × (3−1).
        assert_eq!(d.sharing[0].events_saved, 300);
        assert_eq!(d.events_in, 150);
    }

    #[test]
    fn json_is_balanced_and_names_escaped() {
        let mut s = snap(vec![op(0, 10, 5)]);
        s.ops[0].name = "weird\"name".into();
        let json = s.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("weird\\\"name"));
        assert!(json.contains("\"stats_compiled\""));
        assert!(json.contains("\"queue_depth_hwm\""));
        assert!(json.contains("\"flush_latency\""));
        assert!(json.contains("\"time_share\""));
        assert!(json.contains("\"nanos_saved\""));
    }

    #[test]
    fn counters_record_both_paths() {
        let mut c = OpCounters::default();
        c.record_event(2);
        c.record_batch(10, 4);
        if STATS_COMPILED {
            assert_eq!(c.events_in, 11);
            assert_eq!(c.events_out, 6);
            assert_eq!(c.batch_calls, 1);
            assert_eq!(c.event_calls, 1);
        } else {
            assert_eq!(c, OpCounters::default());
        }
    }

    #[test]
    fn timing_samples_first_dispatch_then_every_interval() {
        let mut c = OpCounters::default();
        // The very first dispatch is always a sample.
        let t0 = c.sample_start();
        assert_eq!(t0.is_some(), STATS_COMPILED);
        c.record_event(0);
        c.record_time(t0, 1);
        if STATS_COMPILED {
            assert_eq!(c.sampled_calls, 1);
            assert_eq!(c.sampled_events, 1);
            // Calls 2..TIME_SAMPLE_EVERY are unsampled...
            for _ in 1..TIME_SAMPLE_EVERY {
                let t = c.sample_start();
                assert!(t.is_none());
                c.record_event(0);
                c.record_time(t, 1);
            }
            // ...and the cycle restarts exactly at the interval.
            assert!(c.sample_start().is_some());
        } else {
            assert_eq!(c, OpCounters::default());
        }
    }

    #[test]
    fn lat_acc_expands_to_the_identical_histogram() {
        // More distinct log buckets than inline slots, so the spill path
        // runs; interleaved repeats exercise slot reuse.
        let values = [
            3u64, 90_000, 3, 17, 512, 90_000, 1, 40, 1_000_000, 17, 7, 512, 33_000_000, 2,
        ];
        let mut acc = LatAcc::default();
        let mut direct = Histogram::new();
        for &v in &values {
            acc.record(v);
            direct.record(v);
        }
        assert_eq!(acc.to_histogram(), direct);
        // Sparse case: a single hot bucket never allocates the spill.
        let mut acc = LatAcc::default();
        let mut direct = Histogram::new();
        for _ in 0..1000 {
            acc.record(42);
            direct.record(42);
        }
        assert!(acc.spill.is_none());
        assert_eq!(acc.to_histogram(), direct);
    }

    #[test]
    fn lat_acc_absorb_is_exact() {
        // absorb(a, b) must equal recording every sample into one
        // accumulator, in every mix of empty/inline/spilled states —
        // including recording more samples after the merge.
        let a_vals = [3u64, 17, 512, 90_000, 1_000_000, 3, 17];
        let b_vals = [7u64, 42, 42, 33_000_000, 2, 512, 90_000, 8_000];
        let tail = [5u64, 999];
        let mut a = LatAcc::default();
        let mut b = LatAcc::default();
        let mut direct = Histogram::new();
        for &v in &a_vals {
            a.record(v);
            direct.record(v);
        }
        for &v in &b_vals {
            b.record(v);
            direct.record(v);
        }
        // Emitted tallies are independent of the sampled population and
        // must survive the merge exactly.
        for _ in 0..10 {
            a.note_emit();
        }
        for _ in 0..3 {
            b.note_emit();
        }
        a.absorb(&b);
        for &v in &tail {
            a.record(v);
            direct.record(v);
        }
        assert_eq!(a.to_histogram(), direct);
        assert_eq!(a.emitted(), 13);
        // Absorbing into an empty accumulator clones; absorbing an empty
        // one is a no-op.
        let mut empty = LatAcc::default();
        empty.absorb(&b);
        assert_eq!(empty.to_histogram(), b.to_histogram());
        let before = b.to_histogram();
        b.absorb(&LatAcc::default());
        assert_eq!(b.to_histogram(), before);
    }

    #[test]
    fn histogram_percentiles_are_ordered_and_bounded() {
        let mut h = Histogram::new();
        for v in [3u64, 17, 17, 120, 900, 4096, 70_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), 70_000);
        assert!(h.p50() <= h.p90());
        assert!(h.p90() <= h.p99());
        assert!(h.p99() <= h.max());
        // Lower-bound semantics: the median (4th of 7) sample is 120,
        // which lives in bucket [64, 128), so p50 reports 64.
        assert_eq!(h.p50(), 64);
        assert_eq!(h.total(), 3 + 17 + 17 + 120 + 900 + 4096 + 70_000);
    }

    #[test]
    fn histogram_absorb_merges_and_diff_subtracts_buckets() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [10u64, 20, 30] {
            a.record(v);
        }
        for v in [1_000u64, 2_000] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.absorb(&b);
        assert_eq!(merged.count(), 5);
        assert_eq!(merged.max(), 2_000);
        assert_eq!(merged.total(), a.total() + b.total());
        // diff is absorb's inverse on bucket counts.
        let d = merged.diff(&a);
        assert_eq!(d.count(), b.count());
        assert_eq!(d.total(), b.total());
        assert_eq!(d.p99(), b.p99());
        // Diffing an empty baseline is the identity.
        assert_eq!(merged.diff(&Histogram::new()), merged);
        // An empty interval has no samples at any percentile.
        let none = merged.diff(&merged);
        assert_eq!(none.count(), 0);
        assert_eq!(none.p99(), 0);
    }

    #[test]
    fn trace_ring_evicts_oldest_beyond_capacity() {
        let mut ring = TraceRing::with_capacity(3);
        for i in 0..5 {
            ring.record("tick", format!("event {i}"));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let kept: Vec<&str> = ring.events().map(|e| e.detail.as_str()).collect();
        assert_eq!(kept, ["event 2", "event 3", "event 4"]);
        // Timestamps are monotone within the ring.
        let stamps: Vec<u64> = ring.events().map(|e| e.at_nanos).collect();
        let mut sorted = stamps.clone();
        sorted.sort_unstable();
        assert_eq!(stamps, sorted);
        let lines = trace_json_lines(&ring.events().cloned().collect::<Vec<_>>());
        assert_eq!(lines.lines().count(), 3);
        assert!(lines
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn meter_emits_one_line_per_interval_after_baseline() {
        let mut meter = Meter::new(CollectingMeterSink::default());
        let before = snap(vec![op(0, 100, 40)]);
        let mut after = snap(vec![op(0, 250, 90)]);
        after.queries[0].emitted = 19;
        assert!(!meter.tick(before), "baseline tick emits nothing");
        assert!(meter.tick(after));
        assert_eq!(meter.intervals(), 1);
        let sink = meter.into_sink();
        assert_eq!(sink.lines.len(), 1);
        let line = &sink.lines[0];
        assert!(line.contains("\"interval\": 0"), "{line}");
        assert!(line.contains("\"events_in\": 150"), "{line}");
        assert!(line.contains("\"delivered\": 12"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn total_events_saved_counts_each_shared_op_once() {
        let mut s = snap(vec![op(0, 100, 40)]);
        // Two queries sharing the same op: the op's saving counts once.
        s.sharing.push(QuerySharing {
            query: QueryId(1),
            shared: vec![SharedOpRef {
                mop: MopId(0),
                fan_in: 3,
            }],
            events_saved: 200,
            nanos_saved: 0,
        });
        assert_eq!(s.total_events_saved(), 200);
    }

    #[test]
    fn time_weighted_attribution_follows_sampled_nanos() {
        let mut timed = op(0, 100, 40);
        timed.sampled_nanos = 5_000;
        timed.sampled_calls = 2;
        timed.sampled_events = 50; // 100 ns/event measured
        let mut s = snap(vec![timed]);
        s.sharing = sharing_or_stub(&s);
        // est_nanos scales sampled time to all events: 5000 × 100 / 50.
        assert_eq!(s.ops[0].est_nanos(), 10_000);
        let shares = s.time_shares();
        assert_eq!(shares.len(), 1);
        assert!((shares[0].1 - 1.0).abs() < 1e-9);
        // nanos saved = events saved × ns/event = 200 × 100.
        assert_eq!(s.total_nanos_saved(), 20_000);
        let model = s.selectivity_model();
        assert!(model.is_calibrated());
        // Single timed op normalizes to weight 1.0.
        assert!((model.time_weight_for(MopId(0)) - 1.0).abs() < 1e-9);
    }

    /// Rebuilds the stub sharing rows against the snapshot's own ops so
    /// saved-time tests price with the synthetic timing above.
    fn sharing_or_stub(s: &StatsSnapshot) -> Vec<QuerySharing> {
        let in_by_op: HashMap<MopId, u64> = s.ops.iter().map(|o| (o.mop, o.events_in)).collect();
        let npe: HashMap<MopId, f64> = s.ops.iter().map(|o| (o.mop, o.nanos_per_event())).collect();
        s.sharing
            .iter()
            .map(|row| QuerySharing {
                query: row.query,
                shared: row.shared.clone(),
                events_saved: events_saved(&row.shared, &in_by_op),
                nanos_saved: nanos_saved(&row.shared, &in_by_op, &npe),
            })
            .collect()
    }
}
