//! Runtime introspection: always-on per-m-op counters, dispatch-gate and
//! backpressure visibility, and the paper's sharing-benefit metric
//! measured live.
//!
//! The layer is deliberately cheap: each executor owns plain `u64`
//! counters bumped inline at its dispatch sites (no atomics on the hot
//! path — per-worker executors are single-threaded by construction) and
//! the shard runtimes fold the per-worker counters at the same barriers
//! that already merge sinks. A [`StatsSnapshot`] is assembled on demand
//! by [`Session::stats`](crate::session::Session::stats), serialized
//! with [`StatsSnapshot::to_json`], and two snapshots bracketing a
//! workload window subtract into a per-window view via
//! [`StatsSnapshot::diff`].
//!
//! Compiling with the `stats-off` cargo feature turns every counter
//! update into a no-op (the snapshot machinery stays, reporting zeros) —
//! the baseline the overhead guard in the bench crate measures against.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

use rumor_core::plan::{PlanGraph, Producer};
use rumor_types::{MopId, QueryId};

use crate::metrics::FeedMode;

/// Whether counter updates are compiled in. `false` when the engine was
/// built with the `stats-off` feature (the overhead-guard baseline).
pub const STATS_COMPILED: bool = cfg!(not(feature = "stats-off"));

/// Raw per-operator counters owned by one executor, bumped inline at the
/// dispatch sites. All updates compile to nothing under `stats-off`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Events fed into the operator (per-event calls + batched run lengths).
    pub events_in: u64,
    /// Events the operator emitted downstream.
    pub events_out: u64,
    /// Batched invocations (`process_batch` / `process_batch_keyed`).
    pub batch_calls: u64,
    /// Per-event invocations (`process`).
    pub event_calls: u64,
}

impl OpCounters {
    /// Records one per-event `process` invocation that emitted `emitted`
    /// events.
    #[inline(always)]
    pub fn record_event(&mut self, emitted: u64) {
        #[cfg(not(feature = "stats-off"))]
        {
            self.events_in += 1;
            self.event_calls += 1;
            self.events_out += emitted;
        }
        #[cfg(feature = "stats-off")]
        let _ = emitted;
    }

    /// Records one batched invocation over `events` inputs that emitted
    /// `emitted` events.
    #[inline(always)]
    pub fn record_batch(&mut self, events: u64, emitted: u64) {
        #[cfg(not(feature = "stats-off"))]
        {
            self.events_in += events;
            self.batch_calls += 1;
            self.events_out += emitted;
        }
        #[cfg(feature = "stats-off")]
        let _ = (events, emitted);
    }
}

/// Counters plus sampled gauges for one m-op, as reported by one
/// executor (or folded across all workers of a shard runtime).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpStats {
    /// The plan node these counters belong to.
    pub mop: MopId,
    /// The operator implementation's name (`MultiOp::name`).
    pub name: String,
    /// Events fed in.
    pub events_in: u64,
    /// Events emitted.
    pub events_out: u64,
    /// Batched invocations.
    pub batch_calls: u64,
    /// Per-event invocations.
    pub event_calls: u64,
    /// Resident state (live NFA instances, buffered join tuples, window
    /// occupancy + group count) sampled at snapshot time; 0 for
    /// stateless operators. Summed across workers on shard runtimes.
    pub state_size: u64,
}

impl OpStats {
    /// Observed selectivity: events out per event in (0 when nothing was
    /// fed).
    pub fn selectivity(&self) -> f64 {
        if self.events_in == 0 {
            0.0
        } else {
            self.events_out as f64 / self.events_in as f64
        }
    }
}

/// The adaptive dispatch gate's state for one plan component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateStats {
    /// Component index (parallel to the executor's component table).
    pub component: usize,
    /// The mode the gate currently believes faster.
    pub mode: FeedMode,
    /// Whether the gate has frozen its choice (probing stopped).
    pub frozen: bool,
    /// A process-wide forced mode (`RUMOR_FORCE_PER_EVENT` /
    /// `RUMOR_FORCE_BATCHED`), if pinned.
    pub forced: Option<FeedMode>,
}

/// One executor's full stats report: per-op counters plus gate state.
/// Shard runtimes fold per-worker reports with [`ExecStatsReport::absorb`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStatsReport {
    /// Per-op counters, in the executor's operator order.
    pub ops: Vec<OpStats>,
    /// Per-component gate state (worker 0's view after a fold — the gate
    /// adapts independently per worker).
    pub gates: Vec<GateStats>,
}

impl ExecStatsReport {
    /// Folds another worker's report into this one: counters and state
    /// gauges sum per op; gate state keeps the first (worker 0) view.
    pub fn absorb(&mut self, other: &ExecStatsReport) {
        if self.ops.is_empty() && self.gates.is_empty() {
            *self = other.clone();
            return;
        }
        debug_assert_eq!(self.ops.len(), other.ops.len(), "same plan on all workers");
        for (mine, theirs) in self.ops.iter_mut().zip(&other.ops) {
            debug_assert_eq!(mine.mop, theirs.mop);
            mine.events_in += theirs.events_in;
            mine.events_out += theirs.events_out;
            mine.batch_calls += theirs.batch_calls;
            mine.event_calls += theirs.event_calls;
            mine.state_size += theirs.state_size;
        }
    }
}

/// Runtime-level (not per-op) counters: queue pressure and barrier
/// latencies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Per-worker high-water mark of the dispatch queue depth (streaming
    /// pool only; empty for the local and one-shot backends).
    pub queue_depth_hwm: Vec<u64>,
    /// Dispatches that found the worker queue full and fell back to a
    /// blocking send — the backpressure count (streaming pool only).
    pub blocking_sends: u64,
    /// Flush barriers executed (every `flush`, `drain`, and `finish`).
    pub flush_barriers: u64,
    /// Total wall time spent inside flush barriers, nanoseconds.
    pub flush_nanos: u64,
    /// `update_plan` epochs executed (quiesce → install → resume).
    pub update_epochs: u64,
    /// Total wall time spent inside `update_plan` epochs, nanoseconds.
    pub update_nanos: u64,
}

/// Results delivered for one query at the subscription dispatch point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryStats {
    /// The query.
    pub query: QueryId,
    /// Result tuples routed to this query (subscription or unclaimed).
    pub emitted: u64,
}

/// One shared ancestor m-op of a query, with its fan-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedOpRef {
    /// The shared m-op.
    pub mop: MopId,
    /// How many member operators (≈ queries) share it.
    pub fan_in: usize,
}

/// Sharing attribution for one query: which shared m-ops sit in its
/// ancestry and the paper's benefit metric — how many operator
/// invocations sharing saved versus an unshared plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySharing {
    /// The query.
    pub query: QueryId,
    /// Shared m-ops (fan-in > 1) in this query's ancestry, by id.
    pub shared: Vec<SharedOpRef>,
    /// Estimated events saved by sharing across this query's shared
    /// ancestors: Σ `events_in(op) × (fan_in − 1)` — an unshared plan
    /// would have run each member's private copy over the same input.
    pub events_saved: u64,
}

/// A point-in-time, engine-independent view of the whole runtime.
///
/// Counters are cumulative since session construction; gauges
/// (`state_size`, `queue_depth_hwm`, gate state) are the value at
/// snapshot time. Serialize with [`to_json`](Self::to_json); subtract a
/// baseline with [`diff`](Self::diff).
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Backend label: `local`, `sharded`, or `streaming`.
    pub engine: &'static str,
    /// Worker count (1 for the local backend).
    pub workers: usize,
    /// Total events accepted by the session.
    pub events_in: u64,
    /// Per-m-op counters, folded across workers.
    pub ops: Vec<OpStats>,
    /// Adaptive-gate state per component.
    pub gates: Vec<GateStats>,
    /// Queue/backpressure/barrier counters.
    pub runtime: RuntimeStats,
    /// Per-query delivered-result counts, one entry per registered query.
    pub queries: Vec<QueryStats>,
    /// Per-query sharing attribution.
    pub sharing: Vec<QuerySharing>,
}

impl StatsSnapshot {
    /// Measured per-m-op selectivities as a cost-model calibration (see
    /// [`rumor_core::SelectivityModel`]): every op that has seen at least
    /// one input event contributes its observed events-out/events-in
    /// ratio. Feed the result to [`crate::Rumor::calibrate`] (or
    /// `Optimizer::with_selectivity`) so the cost-based sharing search
    /// scores candidate plans against this workload instead of the
    /// per-kind defaults.
    pub fn selectivity_model(&self) -> rumor_core::SelectivityModel {
        rumor_core::SelectivityModel::from_measured(
            self.ops
                .iter()
                .filter(|o| o.events_in > 0)
                .map(|o| (o.mop, o.selectivity())),
        )
    }

    /// The counter delta `self − baseline`: per-op and per-query counters
    /// subtract (saturating, matched by id); gauges — `state_size`,
    /// `queue_depth_hwm`, gate state — keep `self`'s value; per-query
    /// `events_saved` is recomputed from the diffed op counters. Take a
    /// snapshot before and after a workload window and diff them to see
    /// just that window.
    pub fn diff(&self, baseline: &StatsSnapshot) -> StatsSnapshot {
        let base_ops: HashMap<MopId, &OpStats> = baseline.ops.iter().map(|o| (o.mop, o)).collect();
        let ops: Vec<OpStats> = self
            .ops
            .iter()
            .map(|o| {
                let b = base_ops.get(&o.mop);
                let sub =
                    |f: fn(&OpStats) -> u64| f(o).saturating_sub(b.map(|b| f(b)).unwrap_or(0));
                OpStats {
                    mop: o.mop,
                    name: o.name.clone(),
                    events_in: sub(|o| o.events_in),
                    events_out: sub(|o| o.events_out),
                    batch_calls: sub(|o| o.batch_calls),
                    event_calls: sub(|o| o.event_calls),
                    state_size: o.state_size,
                }
            })
            .collect();
        let base_queries: HashMap<QueryId, u64> = baseline
            .queries
            .iter()
            .map(|q| (q.query, q.emitted))
            .collect();
        let queries = self
            .queries
            .iter()
            .map(|q| QueryStats {
                query: q.query,
                emitted: q
                    .emitted
                    .saturating_sub(base_queries.get(&q.query).copied().unwrap_or(0)),
            })
            .collect();
        let in_by_op: HashMap<MopId, u64> = ops.iter().map(|o| (o.mop, o.events_in)).collect();
        let sharing = self
            .sharing
            .iter()
            .map(|s| QuerySharing {
                query: s.query,
                shared: s.shared.clone(),
                events_saved: events_saved(&s.shared, &in_by_op),
            })
            .collect();
        StatsSnapshot {
            engine: self.engine,
            workers: self.workers,
            events_in: self.events_in.saturating_sub(baseline.events_in),
            ops,
            gates: self.gates.clone(),
            runtime: RuntimeStats {
                queue_depth_hwm: self.runtime.queue_depth_hwm.clone(),
                blocking_sends: self
                    .runtime
                    .blocking_sends
                    .saturating_sub(baseline.runtime.blocking_sends),
                flush_barriers: self
                    .runtime
                    .flush_barriers
                    .saturating_sub(baseline.runtime.flush_barriers),
                flush_nanos: self
                    .runtime
                    .flush_nanos
                    .saturating_sub(baseline.runtime.flush_nanos),
                update_epochs: self
                    .runtime
                    .update_epochs
                    .saturating_sub(baseline.runtime.update_epochs),
                update_nanos: self
                    .runtime
                    .update_nanos
                    .saturating_sub(baseline.runtime.update_nanos),
            },
            queries,
            sharing,
        }
    }

    /// Total estimated events saved by sharing across all queries'
    /// shared ancestors (each shared op counted once).
    pub fn total_events_saved(&self) -> u64 {
        let mut seen: HashSet<MopId> = HashSet::new();
        let in_by_op: HashMap<MopId, u64> = self.ops.iter().map(|o| (o.mop, o.events_in)).collect();
        let mut total = 0u64;
        for s in &self.sharing {
            for op in &s.shared {
                if seen.insert(op.mop) {
                    total += in_by_op.get(&op.mop).copied().unwrap_or(0)
                        * (op.fan_in.saturating_sub(1)) as u64;
                }
            }
        }
        total
    }

    /// Serializes the snapshot as a stable, hand-rolled JSON document
    /// (the workspace deliberately carries no serialization dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"engine\": \"{}\",", self.engine);
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(out, "  \"stats_compiled\": {},", STATS_COMPILED);
        let _ = writeln!(out, "  \"events_in\": {},", self.events_in);
        out.push_str("  \"ops\": [\n");
        for (i, o) in self.ops.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"mop\": {}, \"name\": \"{}\", \"events_in\": {}, \"events_out\": {}, \"selectivity\": {:.4}, \"batch_calls\": {}, \"event_calls\": {}, \"state_size\": {}}}{}",
                o.mop.index(),
                json_escape(&o.name),
                o.events_in,
                o.events_out,
                o.selectivity(),
                o.batch_calls,
                o.event_calls,
                o.state_size,
                comma(i, self.ops.len()),
            );
        }
        out.push_str("  ],\n  \"gates\": [\n");
        for (i, g) in self.gates.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"component\": {}, \"mode\": \"{}\", \"frozen\": {}, \"forced\": {}}}{}",
                g.component,
                mode_str(g.mode),
                g.frozen,
                match g.forced {
                    Some(m) => format!("\"{}\"", mode_str(m)),
                    None => "null".to_string(),
                },
                comma(i, self.gates.len()),
            );
        }
        out.push_str("  ],\n");
        let hwm: Vec<String> = self
            .runtime
            .queue_depth_hwm
            .iter()
            .map(u64::to_string)
            .collect();
        let _ = writeln!(
            out,
            "  \"runtime\": {{\"queue_depth_hwm\": [{}], \"blocking_sends\": {}, \"flush_barriers\": {}, \"flush_nanos\": {}, \"update_epochs\": {}, \"update_nanos\": {}}},",
            hwm.join(", "),
            self.runtime.blocking_sends,
            self.runtime.flush_barriers,
            self.runtime.flush_nanos,
            self.runtime.update_epochs,
            self.runtime.update_nanos,
        );
        out.push_str("  \"queries\": [\n");
        for (i, q) in self.queries.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"query\": {}, \"emitted\": {}}}{}",
                q.query.index(),
                q.emitted,
                comma(i, self.queries.len()),
            );
        }
        out.push_str("  ],\n  \"sharing\": [\n");
        for (i, s) in self.sharing.iter().enumerate() {
            let shared: Vec<String> = s
                .shared
                .iter()
                .map(|op| format!("{{\"mop\": {}, \"fan_in\": {}}}", op.mop.index(), op.fan_in))
                .collect();
            let _ = writeln!(
                out,
                "    {{\"query\": {}, \"shared\": [{}], \"events_saved\": {}}}{}",
                s.query.index(),
                shared.join(", "),
                s.events_saved,
                comma(i, self.sharing.len()),
            );
        }
        let _ = writeln!(
            out,
            "  ],\n  \"total_events_saved\": {}\n}}",
            self.total_events_saved()
        );
        out
    }
}

/// Computes per-query sharing attribution from the plan structure and a
/// folded op report: for each query, walk its output stream's ancestry
/// through member-precise producer links, collect every m-op with more
/// than one member, and price the saved work at `events_in × (fan_in −
/// 1)` per shared ancestor.
pub fn sharing_attribution(plan: &PlanGraph, ops: &[OpStats]) -> Vec<QuerySharing> {
    let in_by_op: HashMap<MopId, u64> = ops.iter().map(|o| (o.mop, o.events_in)).collect();
    plan.query_outputs()
        .iter()
        .map(|&(query, out)| {
            let mut shared: Vec<SharedOpRef> = Vec::new();
            let mut seen_mops: HashSet<MopId> = HashSet::new();
            let mut stack = vec![out];
            let mut seen_streams: HashSet<_> = HashSet::new();
            while let Some(s) = stack.pop() {
                if !seen_streams.insert(s) {
                    continue;
                }
                if let Producer::Mop { mop, member } = plan.stream(s).producer {
                    let node = plan.mop(mop);
                    if seen_mops.insert(mop) && node.members.len() > 1 {
                        shared.push(SharedOpRef {
                            mop,
                            fan_in: node.members.len(),
                        });
                    }
                    // Member-precise lineage: only the producing member's
                    // inputs are this query's ancestors.
                    stack.extend(node.members[member].inputs.iter().copied());
                }
            }
            shared.sort_by_key(|op| op.mop);
            let events_saved = events_saved(&shared, &in_by_op);
            QuerySharing {
                query,
                shared,
                events_saved,
            }
        })
        .collect()
}

fn events_saved(shared: &[SharedOpRef], in_by_op: &HashMap<MopId, u64>) -> u64 {
    shared
        .iter()
        .map(|op| {
            in_by_op.get(&op.mop).copied().unwrap_or(0) * (op.fan_in.saturating_sub(1)) as u64
        })
        .sum()
}

/// Stable label for a [`FeedMode`] in snapshots and `explain` output.
pub fn mode_str(mode: FeedMode) -> &'static str {
    match mode {
        FeedMode::PerEvent => "per_event",
        FeedMode::Batched => "batched",
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 == len {
        ""
    } else {
        ","
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(mop: u32, events_in: u64, events_out: u64) -> OpStats {
        OpStats {
            mop: MopId(mop),
            name: format!("op{mop}"),
            events_in,
            events_out,
            batch_calls: 1,
            event_calls: 2,
            state_size: 3,
        }
    }

    fn snap(ops: Vec<OpStats>) -> StatsSnapshot {
        StatsSnapshot {
            engine: "local",
            workers: 1,
            events_in: ops.iter().map(|o| o.events_in).sum(),
            ops,
            gates: vec![GateStats {
                component: 0,
                mode: FeedMode::Batched,
                frozen: true,
                forced: None,
            }],
            runtime: RuntimeStats::default(),
            queries: vec![QueryStats {
                query: QueryId(0),
                emitted: 7,
            }],
            sharing: vec![QuerySharing {
                query: QueryId(0),
                shared: vec![SharedOpRef {
                    mop: MopId(0),
                    fan_in: 3,
                }],
                events_saved: 0,
            }],
        }
    }

    #[test]
    fn diff_subtracts_counters_and_keeps_gauges() {
        let before = snap(vec![op(0, 100, 40)]);
        let mut after = snap(vec![op(0, 250, 90)]);
        after.queries[0].emitted = 19;
        let d = after.diff(&before);
        assert_eq!(d.ops[0].events_in, 150);
        assert_eq!(d.ops[0].events_out, 50);
        assert_eq!(d.ops[0].state_size, 3, "gauge keeps the later value");
        assert_eq!(d.queries[0].emitted, 12);
        // events_saved recomputed from the diffed window: 150 × (3−1).
        assert_eq!(d.sharing[0].events_saved, 300);
        assert_eq!(d.events_in, 150);
    }

    #[test]
    fn json_is_balanced_and_names_escaped() {
        let mut s = snap(vec![op(0, 10, 5)]);
        s.ops[0].name = "weird\"name".into();
        let json = s.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("weird\\\"name"));
        assert!(json.contains("\"stats_compiled\""));
        assert!(json.contains("\"queue_depth_hwm\""));
    }

    #[test]
    fn counters_record_both_paths() {
        let mut c = OpCounters::default();
        c.record_event(2);
        c.record_batch(10, 4);
        if STATS_COMPILED {
            assert_eq!(c.events_in, 11);
            assert_eq!(c.events_out, 6);
            assert_eq!(c.batch_calls, 1);
            assert_eq!(c.event_calls, 1);
        } else {
            assert_eq!(c, OpCounters::default());
        }
    }

    #[test]
    fn total_events_saved_counts_each_shared_op_once() {
        let mut s = snap(vec![op(0, 100, 40)]);
        // Two queries sharing the same op: the op's saving counts once.
        s.sharing.push(QuerySharing {
            query: QueryId(1),
            shared: vec![SharedOpRef {
                mop: MopId(0),
                fan_in: 3,
            }],
            events_saved: 200,
        });
        assert_eq!(s.total_events_saved(), 200);
    }
}
