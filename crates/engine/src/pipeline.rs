//! Optional multi-threaded pipeline runner (an extension beyond the paper's
//! single-threaded prototype).
//!
//! The plan's m-ops are partitioned into pipeline *stages* by topological
//! depth; each stage runs on its own thread connected by bounded
//! crossbeam channels. M-ops keep all state thread-local, so the only
//! synchronization is the inter-stage queues.
//!
//! Routing is batch-granular: stages exchange [`Msg::Batch`] messages
//! carrying up to [`PipelineConfig::batch_size`] events each, instead of
//! one message per event, and each stage resolves `op index → local slot`
//! through a dense table built at compile time (the per-event linear scan
//! this replaced dominated the routing cost). On stateless plans the
//! stages additionally process events at channel-*run* granularity through
//! [`rumor_core::MultiOp::process_batch`], and events skip straight to the
//! stage that consumes them. Stateful plans instead run in *ordered* mode:
//! strict per-event processing, with events relayed hop-by-hop through
//! every intermediate stage — one FIFO path end to end — so a windowed
//! operator's ports can never observe events out of global timestamp
//! order, and results match the single-threaded engine exactly.
//!
//! Results are returned sorted by `(query, timestamp)`; per-query content
//! matches the single-threaded engine exactly (tests cross-check).

use std::collections::{HashMap, VecDeque};
use std::thread;

use crossbeam_channel::{bounded, Receiver, Sender};

use rumor_core::{ChannelTuple, Emit, MopContext, PlanGraph, Producer};
use rumor_ops::instantiate;
use rumor_types::{
    ChannelId, Membership, MopId, PortId, QueryId, Result, RumorError, SourceId, Tuple,
};

use crate::exec::QuerySink;

/// Marker for a global op index absent from a stage's slot table.
const NO_SLOT: usize = usize::MAX;

/// Tuning knobs of the pipelined runner.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Number of pipeline stages (threads); clamped to the plan depth.
    /// Below 2 the runner degenerates to the single-threaded engine.
    pub stages: usize,
    /// Events per inter-stage message. Larger batches amortize the queue
    /// synchronization over more events; 1 reproduces per-event messaging.
    pub batch_size: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            stages: 4,
            batch_size: 128,
        }
    }
}

/// A message flowing between stages.
#[derive(Debug, Clone)]
enum Msg {
    /// A batch of routed events. `tapped` is true when an upstream stage
    /// already delivered these events' query taps (forwarded events must
    /// not be re-tapped).
    Batch {
        events: Vec<(ChannelId, ChannelTuple)>,
        tapped: bool,
    },
    Flush,
}

/// Runs a plan over a prepared input with default batching, spreading
/// stages across threads. Returns the `(query, tuple)` results sorted by
/// `(query, timestamp)`.
pub fn run_pipelined(
    plan: &PlanGraph,
    events: &[(SourceId, Tuple)],
    stage_count: usize,
) -> Result<Vec<(QueryId, Tuple)>> {
    run_pipelined_config(
        plan,
        events,
        &PipelineConfig {
            stages: stage_count,
            ..PipelineConfig::default()
        },
    )
}

/// Runs a plan over a prepared input with explicit batching configuration.
pub fn run_pipelined_config(
    plan: &PlanGraph,
    events: &[(SourceId, Tuple)],
    config: &PipelineConfig,
) -> Result<Vec<(QueryId, Tuple)>> {
    let order = plan.topo_order()?;
    if order.is_empty() || config.stages < 2 {
        // Degenerate: fall back to the single-threaded engine.
        let mut exec = crate::exec::ExecutablePlan::new(plan)?;
        let mut sink = Collect::default();
        for (src, tuple) in events {
            exec.push(*src, tuple.clone(), &mut sink)?;
        }
        let mut results = sink.0;
        results.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.ts.cmp(&b.1.ts)));
        return Ok(results);
    }
    let batch_size = config.batch_size.max(1);

    // Depth = longest producer chain; stage = depth scaled into stages.
    let mut depth: HashMap<MopId, usize> = HashMap::new();
    let mut max_depth = 0usize;
    for &id in &order {
        let node = plan.mop(id);
        let mut d = 0usize;
        for m in &node.members {
            for &s in &m.inputs {
                if let Producer::Mop { mop, .. } = plan.stream(s).producer {
                    d = d.max(depth.get(&mop).copied().unwrap_or(0) + 1);
                }
            }
        }
        depth.insert(id, d);
        max_depth = max_depth.max(d);
    }
    let stages = config.stages.min(max_depth + 1).max(1);
    let stage_of = |id: MopId| -> usize {
        (depth[&id] * (stages - 1))
            .checked_div(max_depth)
            .unwrap_or(0)
    };

    // Per stage: ops, a dense global-op-index → local-slot table, and the
    // channel routing shared by every stage.
    let mut stage_ops: Vec<Vec<Box<dyn rumor_core::MultiOp>>> =
        (0..stages).map(|_| Vec::new()).collect();
    let mut stage_slots: Vec<Vec<usize>> = vec![vec![NO_SLOT; order.len()]; stages];
    let mut consumers: Vec<Vec<(usize, usize, PortId)>> = vec![Vec::new(); plan.channel_slots()];
    let mut batch_safe = true;
    for (i, &id) in order.iter().enumerate() {
        let ctx = MopContext::build(plan, id)?;
        let op = instantiate(&ctx)?;
        batch_safe &= op.is_stateless();
        let s = stage_of(id);
        stage_slots[s][i] = stage_ops[s].len();
        stage_ops[s].push(op);
        let node = plan.mop(id);
        for (p, &ch) in node.inputs.iter().enumerate() {
            consumers[ch.index()].push((s, i, PortId(p as u8)));
        }
    }
    for list in &mut consumers {
        list.sort();
        list.dedup();
    }
    let mut query_taps: Vec<Vec<(usize, Vec<QueryId>)>> = vec![Vec::new(); plan.channel_slots()];
    for &(q, stream) in plan.query_outputs() {
        let ch = plan.channel_of(stream);
        let pos = plan.position_in_channel(stream);
        let taps = &mut query_taps[ch.index()];
        match taps.iter_mut().find(|(p, _)| *p == pos) {
            Some((_, qs)) => qs.push(q),
            None => taps.push((pos, vec![q])),
        }
    }

    let (txs, rxs): (Vec<Sender<Msg>>, Vec<Receiver<Msg>>) =
        (0..stages).map(|_| bounded::<Msg>(64)).unzip();
    let (result_tx, result_rx) = bounded::<Vec<(QueryId, Tuple)>>(64);

    let mut results: Vec<(QueryId, Tuple)> = Vec::new();
    thread::scope(|scope| -> Result<()> {
        // Drain results concurrently with the stages: workers block on the
        // bounded result channel otherwise, deadlocking result-heavy runs.
        let collector =
            scope.spawn(|| -> Vec<(QueryId, Tuple)> { result_rx.iter().flatten().collect() });
        for (s, (ops, slot_of)) in stage_ops.into_iter().zip(stage_slots).enumerate() {
            let rx = rxs[s].clone();
            let downstream: Vec<Sender<Msg>> = txs[s + 1..].to_vec();
            let consumers = &consumers;
            let query_taps = &query_taps;
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                let mut worker = StageWorker {
                    stage: s,
                    ops,
                    slot_of,
                    downstream,
                    consumers,
                    query_taps,
                    results: ResultBuf::new(result_tx),
                    forward_bufs: vec![Vec::new(); stages],
                    local: VecDeque::new(),
                    level: Vec::new(),
                    next_level: Vec::new(),
                    batch_size,
                    batch_safe,
                };
                worker.run(rx);
            });
        }
        drop(result_tx);

        // Feed the sources into stage 0 in batches.
        let feeder = txs[0].clone();
        let source_channels: Vec<ChannelId> = plan
            .sources()
            .iter()
            .map(|src| plan.channel_of(src.stream))
            .collect();
        for chunk in events.chunks(batch_size) {
            let mut batch = Vec::with_capacity(chunk.len());
            for (src, tuple) in chunk {
                let ch = *source_channels
                    .get(src.index())
                    .ok_or_else(|| RumorError::exec(format!("unknown source {src}")))?;
                batch.push((ch, ChannelTuple::solo(tuple.clone())));
            }
            feeder
                .send(Msg::Batch {
                    events: batch,
                    tapped: false,
                })
                .map_err(|_| RumorError::exec("pipeline stage died".to_string()))?;
        }
        feeder
            .send(Msg::Flush)
            .map_err(|_| RumorError::exec("pipeline stage died".to_string()))?;
        drop(feeder);
        drop(txs);
        results = collector
            .join()
            .map_err(|_| RumorError::exec("result collector died".to_string()))?;
        Ok(())
    })?;

    results.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.ts.cmp(&b.1.ts)));
    Ok(results)
}

/// Batches result sends so the shared result channel is touched once per
/// buffer, not once per query match.
struct ResultBuf {
    buf: Vec<(QueryId, Tuple)>,
    tx: Sender<Vec<(QueryId, Tuple)>>,
}

impl ResultBuf {
    fn new(tx: Sender<Vec<(QueryId, Tuple)>>) -> Self {
        ResultBuf {
            buf: Vec::new(),
            tx,
        }
    }

    fn push(&mut self, q: QueryId, tuple: Tuple) {
        self.buf.push((q, tuple));
        if self.buf.len() >= 1024 {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if !self.buf.is_empty() {
            let _ = self.tx.send(std::mem::take(&mut self.buf));
        }
    }
}

struct StageWorker<'a> {
    stage: usize,
    ops: Vec<Box<dyn rumor_core::MultiOp>>,
    /// Global op index → slot in `ops` (dense; `NO_SLOT` when the op lives
    /// in another stage). Replaces the per-event linear scan.
    slot_of: Vec<usize>,
    downstream: Vec<Sender<Msg>>,
    consumers: &'a [Vec<(usize, usize, PortId)>],
    query_taps: &'a [Vec<(usize, Vec<QueryId>)>],
    results: ResultBuf,
    /// Outgoing batches, one buffer per absolute target stage.
    forward_bufs: Vec<Vec<(ChannelId, ChannelTuple)>>,
    /// Ordered mode: depth-first local queue (per-event drain).
    local: VecDeque<(ChannelId, ChannelTuple)>,
    /// Batch-safe mode: level-order double buffers.
    level: Vec<(ChannelId, ChannelTuple)>,
    next_level: Vec<(ChannelId, ChannelTuple)>,
    batch_size: usize,
    batch_safe: bool,
}

impl StageWorker<'_> {
    fn run(&mut self, rx: Receiver<Msg>) {
        while let Ok(msg) = rx.recv() {
            match msg {
                Msg::Flush => {
                    self.flush_forwards();
                    if let Some(next) = self.downstream.first() {
                        let _ = next.send(Msg::Flush);
                    }
                    break;
                }
                Msg::Batch { events, tapped } => {
                    if self.batch_safe {
                        self.process_levelwise(events, tapped);
                    } else {
                        self.process_ordered(events, tapped);
                    }
                }
            }
        }
        self.results.flush();
        // Drain any remaining messages so senders never block forever.
        for msg in rx.try_iter() {
            if let Msg::Flush = msg {
                self.flush_forwards();
                if let Some(next) = self.downstream.first() {
                    let _ = next.send(Msg::Flush);
                }
            }
        }
    }

    /// Strict mode: each event is fully drained (its derived events
    /// processed depth-first) before the next — the same arrival order per
    /// operator as the single-threaded engine, required by stateful m-ops.
    fn process_ordered(&mut self, events: Vec<(ChannelId, ChannelTuple)>, tapped: bool) {
        for (ch, ct) in events {
            if !tapped {
                self.deliver_taps(ch, &ct);
            }
            self.route_one(ch, ct);
            while let Some((ch, ct)) = self.local.pop_front() {
                self.deliver_taps(ch, &ct);
                self.route_one(ch, ct);
            }
        }
    }

    /// Stateless mode: the whole incoming batch is processed level by
    /// level, with consecutive same-channel runs feeding each local
    /// consumer through one `process_batch` call.
    fn process_levelwise(&mut self, events: Vec<(ChannelId, ChannelTuple)>, tapped: bool) {
        debug_assert!(self.level.is_empty());
        self.level = events;
        let mut fresh = !tapped;
        while !self.level.is_empty() {
            let level = std::mem::take(&mut self.level);
            let mut i = 0;
            while i < level.len() {
                let ch = level[i].0;
                let mut j = i + 1;
                while j < level.len() && level[j].0 == ch {
                    j += 1;
                }
                if fresh {
                    for (_, ct) in &level[i..j] {
                        self.deliver_taps(ch, ct);
                    }
                }
                self.route_run(ch, &level[i..j]);
                i = j;
            }
            let mut recycled = level;
            recycled.clear();
            self.level = recycled;
            std::mem::swap(&mut self.level, &mut self.next_level);
            // Derived levels are locally generated, so their taps are this
            // stage's responsibility.
            fresh = true;
        }
    }

    fn deliver_taps(&mut self, ch: ChannelId, ct: &ChannelTuple) {
        for (pos, queries) in &self.query_taps[ch.index()] {
            if ct.belongs_to(*pos) {
                for &q in queries {
                    self.results.push(q, ct.tuple.clone());
                }
            }
        }
    }

    /// Routes one event in ordered mode: local consumers process it
    /// (emitting into the ordered queue); events needed by later stages
    /// relay hop-by-hop through the *next* stage. Relaying (instead of
    /// sending straight to the consuming stage) is what preserves global
    /// timestamp order for stateful m-ops: every event and its derived
    /// events travel the same single FIFO path, so a multi-port operator
    /// can never see one port's events overtake another's.
    fn route_one(&mut self, ch: ChannelId, ct: ChannelTuple) {
        let mut forward = false;
        for &(target_stage, op_idx, port) in &self.consumers[ch.index()] {
            if target_stage == self.stage {
                let slot = self.slot_of[op_idx];
                if slot != NO_SLOT {
                    let mut emit = LocalEmit {
                        queue: &mut self.local,
                    };
                    self.ops[slot].process(port, &ct, &mut emit);
                }
            } else if target_stage > self.stage {
                forward = true;
            }
        }
        if forward {
            self.forward(self.stage + 1, ch, ct);
        }
    }

    /// Routes a channel run: one `process_batch` per local consumer, one
    /// buffered forward per event for later-stage consumers.
    fn route_run(&mut self, ch: ChannelId, run: &[(ChannelId, ChannelTuple)]) {
        // The run is stored as (ChannelId, ChannelTuple) pairs, but
        // `process_batch` takes a contiguous tuple slice; build the
        // scratch copy lazily, once, and share it across every local
        // consumer of the run (each clone is a refcount bump — payloads
        // are shared).
        let mut scratch: Option<Vec<ChannelTuple>> = None;
        let mut forward_to: Option<usize> = None;
        for &(target_stage, op_idx, port) in &self.consumers[ch.index()] {
            if target_stage == self.stage {
                let slot = self.slot_of[op_idx];
                if slot != NO_SLOT {
                    let mut emit = LevelEmit {
                        queue: &mut self.next_level,
                    };
                    if run.len() == 1 {
                        self.ops[slot].process(port, &run[0].1, &mut emit);
                    } else {
                        let tuples = scratch
                            .get_or_insert_with(|| run.iter().map(|(_, ct)| ct.clone()).collect());
                        self.ops[slot].process_batch(port, tuples, &mut emit);
                    }
                }
            } else if target_stage > self.stage {
                forward_to = Some(match forward_to {
                    Some(existing) => existing.min(target_stage),
                    None => target_stage,
                });
            }
        }
        if let Some(target) = forward_to {
            for (_, ct) in run {
                self.forward(target, ch, ct.clone());
            }
        }
    }

    fn forward(&mut self, target: usize, ch: ChannelId, ct: ChannelTuple) {
        self.forward_bufs[target].push((ch, ct));
        if self.forward_bufs[target].len() >= self.batch_size {
            self.flush_forward(target);
        }
    }

    fn flush_forward(&mut self, target: usize) {
        if self.forward_bufs[target].is_empty() {
            return;
        }
        let events = std::mem::take(&mut self.forward_bufs[target]);
        let idx = target - self.stage - 1;
        if let Some(tx) = self.downstream.get(idx.min(self.downstream.len() - 1)) {
            let _ = tx.send(Msg::Batch {
                events,
                tapped: true,
            });
        }
    }

    fn flush_forwards(&mut self) {
        for target in 0..self.forward_bufs.len() {
            self.flush_forward(target);
        }
    }
}

struct LocalEmit<'a> {
    queue: &'a mut VecDeque<(ChannelId, ChannelTuple)>,
}

impl Emit for LocalEmit<'_> {
    fn emit(&mut self, channel: ChannelId, tuple: Tuple, membership: Membership) {
        self.queue
            .push_back((channel, ChannelTuple::new(tuple, membership)));
    }
}

struct LevelEmit<'a> {
    queue: &'a mut Vec<(ChannelId, ChannelTuple)>,
}

impl Emit for LevelEmit<'_> {
    fn emit(&mut self, channel: ChannelId, tuple: Tuple, membership: Membership) {
        self.queue
            .push((channel, ChannelTuple::new(tuple, membership)));
    }
}

#[derive(Default)]
struct Collect(Vec<(QueryId, Tuple)>);

impl QuerySink for Collect {
    fn on_result(&mut self, query: QueryId, tuple: &Tuple) {
        self.0.push((query, tuple.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::{LogicalPlan, Optimizer, OptimizerConfig};
    use rumor_expr::Predicate;
    use rumor_types::Schema;

    fn chain_plan() -> (PlanGraph, SourceId) {
        let mut plan = PlanGraph::new();
        let s = plan.add_source("S", Schema::ints(2), None).unwrap();
        for c in 0..4i64 {
            plan.add_query(
                &LogicalPlan::source("S")
                    .select(Predicate::attr_eq_const(0, c))
                    .select(Predicate::attr_eq_const(1, 1i64)),
            )
            .unwrap();
        }
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();
        (plan, s)
    }

    fn single_threaded(plan: &PlanGraph, events: &[(SourceId, Tuple)]) -> Vec<(QueryId, Tuple)> {
        let mut exec = crate::exec::ExecutablePlan::new(plan).unwrap();
        let mut sink = Collect::default();
        for (src, tuple) in events {
            exec.push(*src, tuple.clone(), &mut sink).unwrap();
        }
        let mut single = sink.0;
        single.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.ts.cmp(&b.1.ts)));
        single
    }

    #[test]
    fn pipelined_matches_single_threaded() {
        let (plan, s) = chain_plan();
        let events: Vec<(SourceId, Tuple)> = (0..200u64)
            .map(|ts| (s, Tuple::ints(ts, &[(ts % 5) as i64, (ts % 2) as i64])))
            .collect();
        let single = single_threaded(&plan, &events);
        let pipelined = run_pipelined(&plan, &events, 3).unwrap();
        assert_eq!(pipelined, single);
    }

    #[test]
    fn pipelined_matches_across_batch_sizes() {
        let (plan, s) = chain_plan();
        let events: Vec<(SourceId, Tuple)> = (0..300u64)
            .map(|ts| (s, Tuple::ints(ts, &[(ts % 5) as i64, (ts % 2) as i64])))
            .collect();
        let single = single_threaded(&plan, &events);
        for batch_size in [1usize, 7, 64, 1024] {
            let config = PipelineConfig {
                stages: 3,
                batch_size,
            };
            let got = run_pipelined_config(&plan, &events, &config).unwrap();
            assert_eq!(got, single, "batch_size {batch_size} diverged");
        }
    }

    #[test]
    fn degenerate_single_stage_falls_back() {
        let (plan, s) = chain_plan();
        let events = vec![(s, Tuple::ints(0, &[0, 1]))];
        let results = run_pipelined(&plan, &events, 1).unwrap();
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn pipelined_stateful_plan_matches_single_threaded() {
        // Regression: a stateful op whose ports reach its stage over
        // different-length paths (T forwarded from stage 0, S-derived
        // events via the select chain in stage 1) used to observe its
        // ports out of timestamp order when events skipped intermediate
        // stages, dropping matches. Ordered mode now relays hop-by-hop.
        use rumor_core::SeqSpec;
        use rumor_expr::{CmpOp, Expr};

        let mut plan = PlanGraph::new();
        let s = plan.add_source("S", Schema::ints(2), None).unwrap();
        let t = plan.add_source("T", Schema::ints(2), None).unwrap();
        plan.add_query(
            &LogicalPlan::source("S")
                .select(Predicate::attr_eq_const(0, 1i64))
                .select(Predicate::attr_eq_const(1, 1i64))
                .followed_by(
                    LogicalPlan::source("T"),
                    SeqSpec {
                        predicate: Predicate::cmp(CmpOp::Le, Expr::col(0), Expr::rcol(0)),
                        window: 1000,
                    },
                ),
        )
        .unwrap();
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();

        let events: Vec<(SourceId, Tuple)> = (0..200u64)
            .map(|ts| {
                let src = if ts % 2 == 0 { s } else { t };
                (
                    src,
                    Tuple::ints(ts, &[(ts % 3) as i64, ((ts / 2) % 2) as i64]),
                )
            })
            .collect();
        let single = single_threaded(&plan, &events);
        assert!(!single.is_empty());
        for batch_size in [1usize, 16, 256] {
            let got = run_pipelined_config(
                &plan,
                &events,
                &PipelineConfig {
                    stages: 3,
                    batch_size,
                },
            )
            .unwrap();
            assert_eq!(got, single, "stateful pipelined batch_size {batch_size}");
        }
    }
}
