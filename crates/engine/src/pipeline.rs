//! Optional multi-threaded pipeline runner (an extension beyond the paper's
//! single-threaded prototype).
//!
//! The plan's m-ops are partitioned into pipeline *stages* by topological
//! depth; each stage runs on its own thread connected by bounded
//! crossbeam channels. M-ops keep all state thread-local, so the only
//! synchronization is the inter-stage queues. Within a stage, events are
//! processed in arrival order; stages preserve order end-to-end, so results
//! match the single-threaded engine exactly (tests cross-check).

use std::collections::HashMap;
use std::thread;

use crossbeam_channel::{bounded, Receiver, Sender};

use rumor_core::{ChannelTuple, Emit, MopContext, PlanGraph, Producer};
use rumor_ops::instantiate;
use rumor_types::{
    ChannelId, Membership, MopId, PortId, QueryId, Result, RumorError, SourceId, Tuple,
};

use crate::exec::QuerySink;

/// A message flowing between stages.
#[derive(Debug, Clone)]
enum Msg {
    Event(ChannelId, ChannelTuple),
    Flush,
}

/// Runs a plan over a prepared input, spreading stages across threads.
/// Returns the `(query, tuple)` results in deterministic per-query order.
pub fn run_pipelined(
    plan: &PlanGraph,
    events: &[(SourceId, Tuple)],
    stage_count: usize,
) -> Result<Vec<(QueryId, Tuple)>> {
    let order = plan.topo_order()?;
    if order.is_empty() || stage_count < 2 {
        // Degenerate: fall back to the single-threaded engine.
        let mut exec = crate::exec::ExecutablePlan::new(plan)?;
        let mut sink = Collect::default();
        for (src, tuple) in events {
            exec.push(*src, tuple.clone(), &mut sink)?;
        }
        return Ok(sink.0);
    }

    // Depth = longest producer chain; stage = depth scaled into stage_count.
    let mut depth: HashMap<MopId, usize> = HashMap::new();
    let mut max_depth = 0usize;
    for &id in &order {
        let node = plan.mop(id);
        let mut d = 0usize;
        for m in &node.members {
            for &s in &m.inputs {
                if let Producer::Mop { mop, .. } = plan.stream(s).producer {
                    d = d.max(depth.get(&mop).copied().unwrap_or(0) + 1);
                }
            }
        }
        depth.insert(id, d);
        max_depth = max_depth.max(d);
    }
    let stages = stage_count.min(max_depth + 1).max(1);
    let stage_of = |id: MopId| -> usize {
        (depth[&id] * (stages - 1)).checked_div(max_depth).unwrap_or(0)
    };

    // Per stage: ops (topological order within stage), channel routing.
    let mut stage_ops: Vec<Vec<(usize, Box<dyn rumor_core::MultiOp>)>> =
        (0..stages).map(|_| Vec::new()).collect();
    let mut consumers: Vec<Vec<(usize, usize, PortId)>> = vec![Vec::new(); plan.channel_slots()];
    let mut exec_index: HashMap<MopId, usize> = HashMap::new();
    for (i, &id) in order.iter().enumerate() {
        exec_index.insert(id, i);
        let ctx = MopContext::build(plan, id)?;
        let op = instantiate(&ctx)?;
        let s = stage_of(id);
        stage_ops[s].push((i, op));
        let node = plan.mop(id);
        for (p, &ch) in node.inputs.iter().enumerate() {
            consumers[ch.index()].push((s, i, PortId(p as u8)));
        }
    }
    for list in &mut consumers {
        list.sort();
        list.dedup();
    }
    let mut query_taps: Vec<Vec<(usize, Vec<QueryId>)>> = vec![Vec::new(); plan.channel_slots()];
    for &(q, stream) in plan.query_outputs() {
        let ch = plan.channel_of(stream);
        let pos = plan.position_in_channel(stream);
        let taps = &mut query_taps[ch.index()];
        match taps.iter_mut().find(|(p, _)| *p == pos) {
            Some((_, qs)) => qs.push(q),
            None => taps.push((pos, vec![q])),
        }
    }

    let (txs, rxs): (Vec<Sender<Msg>>, Vec<Receiver<Msg>>) =
        (0..stages).map(|_| bounded::<Msg>(1024)).unzip();
    let (result_tx, result_rx) = bounded::<(QueryId, Tuple)>(4096);

    thread::scope(|scope| -> Result<()> {
        for (s, ops) in stage_ops.into_iter().enumerate() {
            let rx = rxs[s].clone();
            let downstream: Vec<Sender<Msg>> = txs[s + 1..].to_vec();
            let my_tx = txs[s].clone();
            let consumers = &consumers;
            let query_taps = &query_taps;
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                stage_worker(
                    s,
                    ops,
                    rx,
                    my_tx,
                    downstream,
                    consumers,
                    query_taps,
                    result_tx,
                );
            });
        }
        drop(result_tx);

        // Feed the sources into stage 0 (routing forwards as needed).
        let feeder = txs[0].clone();
        let source_channels: Vec<ChannelId> = plan
            .sources()
            .iter()
            .map(|src| plan.channel_of(src.stream))
            .collect();
        for (src, tuple) in events {
            let ch = *source_channels
                .get(src.index())
                .ok_or_else(|| RumorError::exec(format!("unknown source {src}")))?;
            feeder
                .send(Msg::Event(ch, ChannelTuple::solo(tuple.clone())))
                .map_err(|_| RumorError::exec("pipeline stage died".to_string()))?;
        }
        feeder
            .send(Msg::Flush)
            .map_err(|_| RumorError::exec("pipeline stage died".to_string()))?;
        drop(feeder);
        drop(txs);
        Ok(())
    })?;

    let mut results: Vec<(QueryId, Tuple)> = result_rx.iter().collect();
    results.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.ts.cmp(&b.1.ts)));
    Ok(results)
}

#[allow(clippy::too_many_arguments)]
fn stage_worker(
    stage: usize,
    mut ops: Vec<(usize, Box<dyn rumor_core::MultiOp>)>,
    rx: Receiver<Msg>,
    _my_tx: Sender<Msg>,
    downstream: Vec<Sender<Msg>>,
    consumers: &[Vec<(usize, usize, PortId)>],
    query_taps: &[Vec<(usize, Vec<QueryId>)>],
    result_tx: Sender<(QueryId, Tuple)>,
) {
    drop(_my_tx); // the worker never sends to itself across the channel
    let mut local: std::collections::VecDeque<(ChannelId, ChannelTuple)> =
        std::collections::VecDeque::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Flush => {
                if let Some(next) = downstream.first() {
                    let _ = next.send(Msg::Flush);
                }
                break;
            }
            Msg::Event(ch, ct) => {
                local.push_back((ch, ct));
                while let Some((ch, ct)) = local.pop_front() {
                    for (pos, queries) in &query_taps[ch.index()] {
                        if ct.belongs_to(*pos) {
                            for &q in queries {
                                let _ = result_tx.send((q, ct.tuple.clone()));
                            }
                        }
                    }
                    let mut forward_to: Option<usize> = None;
                    for &(target_stage, op_idx, port) in &consumers[ch.index()] {
                        if target_stage == stage {
                            if let Some(slot) =
                                ops.iter_mut().find(|(i, _)| *i == op_idx)
                            {
                                let mut emit = LocalEmit { queue: &mut local };
                                slot.1.process(port, &ct, &mut emit);
                            }
                        } else if target_stage > stage {
                            forward_to = Some(match forward_to {
                                Some(existing) => existing.min(target_stage),
                                None => target_stage,
                            });
                        }
                    }
                    if let Some(target) = forward_to {
                        // Send to the first downstream stage that needs it;
                        // intermediate stages forward transparently.
                        let idx = target - stage - 1;
                        if let Some(tx) = downstream.get(idx.min(downstream.len() - 1)) {
                            let _ = tx.send(Msg::Event(ch, ct));
                        }
                    }
                }
            }
        }
    }
    // Drain any remaining messages so senders never block forever.
    for msg in rx.try_iter() {
        if let Msg::Flush = msg {
            if let Some(next) = downstream.first() {
                let _ = next.send(Msg::Flush);
            }
        }
    }
}

struct LocalEmit<'a> {
    queue: &'a mut std::collections::VecDeque<(ChannelId, ChannelTuple)>,
}

impl Emit for LocalEmit<'_> {
    fn emit(&mut self, channel: ChannelId, tuple: Tuple, membership: Membership) {
        self.queue
            .push_back((channel, ChannelTuple::new(tuple, membership)));
    }
}

#[derive(Default)]
struct Collect(Vec<(QueryId, Tuple)>);

impl QuerySink for Collect {
    fn on_result(&mut self, query: QueryId, tuple: &Tuple) {
        self.0.push((query, tuple.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::{LogicalPlan, Optimizer, OptimizerConfig};
    use rumor_expr::Predicate;
    use rumor_types::Schema;

    fn chain_plan() -> (PlanGraph, SourceId) {
        let mut plan = PlanGraph::new();
        let s = plan.add_source("S", Schema::ints(2), None).unwrap();
        for c in 0..4i64 {
            plan.add_query(
                &LogicalPlan::source("S")
                    .select(Predicate::attr_eq_const(0, c))
                    .select(Predicate::attr_eq_const(1, 1i64)),
            )
            .unwrap();
        }
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();
        (plan, s)
    }

    #[test]
    fn pipelined_matches_single_threaded() {
        let (plan, s) = chain_plan();
        let events: Vec<(SourceId, Tuple)> = (0..200u64)
            .map(|ts| (s, Tuple::ints(ts, &[(ts % 5) as i64, (ts % 2) as i64])))
            .collect();

        let mut exec = crate::exec::ExecutablePlan::new(&plan).unwrap();
        let mut sink = Collect::default();
        for (src, tuple) in &events {
            exec.push(*src, tuple.clone(), &mut sink).unwrap();
        }
        let mut single = sink.0;
        single.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.ts.cmp(&b.1.ts)));

        let pipelined = run_pipelined(&plan, &events, 3).unwrap();
        assert_eq!(pipelined, single);
    }

    #[test]
    fn degenerate_single_stage_falls_back() {
        let (plan, s) = chain_plan();
        let events = vec![(s, Tuple::ints(0, &[0, 1]))];
        let results = run_pipelined(&plan, &events, 1).unwrap();
        assert_eq!(results.len(), 1);
    }
}
