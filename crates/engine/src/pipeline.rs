//! The multi-threaded pipelined runner, rebuilt on *shard-local stages*.
//!
//! The original runner partitioned the plan's m-ops into pipeline stages
//! by topological depth, with one thread per stage exchanging batched
//! messages and dense per-stage op-slot tables. Measured end to end
//! (`BENCH_throughput.json` history), depth-staging lost to the
//! single-threaded engine on cheap operators even with batched messages:
//! every event crossed one queue per stage it traversed, and the stage
//! split serialized exactly the per-event work the batched drain
//! amortizes. That runner is retired.
//!
//! A pipelined run is now a [`StreamingShardedRuntime`] pass: each worker
//! owns a **full plan clone** (a shard-local stage) fed by the static
//! partition router, so events cross exactly one queue regardless of plan
//! depth, and the per-worker engine keeps the run-batched drain it is fast
//! with. [`PipelineConfig::stages`] names the worker count;
//! [`PipelineConfig::batch_size`] the deliveries staged per message.
//!
//! Results are returned sorted by `(query, timestamp)`; per-query content
//! matches the single-threaded engine exactly (tests cross-check).

use rumor_core::{PlanGraph, SourceRoute};
use rumor_types::{QueryId, Result, SourceId, Tuple};

use crate::exec::{CollectingSink, ExecutablePlan};
use crate::shard::{StreamingConfig, StreamingShardedRuntime};

/// Tuning knobs of the pipelined runner.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Number of shard-local stages (worker plan clones). Below 2 the
    /// runner degenerates to the single-threaded engine.
    pub stages: usize,
    /// Deliveries per worker message. Larger batches amortize the queue
    /// synchronization over more events; 1 reproduces per-event messaging.
    pub batch_size: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            stages: 4,
            batch_size: 128,
        }
    }
}

/// Runs a plan over a prepared input with default batching, spreading
/// shard-local stages across threads. Returns the `(query, tuple)` results
/// sorted by `(query, timestamp)`.
pub fn run_pipelined(
    plan: &PlanGraph,
    events: &[(SourceId, Tuple)],
    stage_count: usize,
) -> Result<Vec<(QueryId, Tuple)>> {
    run_pipelined_config(
        plan,
        events,
        &PipelineConfig {
            stages: stage_count,
            ..PipelineConfig::default()
        },
    )
}

/// Runs a plan over a prepared input with explicit batching configuration.
pub fn run_pipelined_config(
    plan: &PlanGraph,
    events: &[(SourceId, Tuple)],
    config: &PipelineConfig,
) -> Result<Vec<(QueryId, Tuple)>> {
    let mut results = if config.stages < 2 {
        // Degenerate: the single-threaded engine.
        let mut exec = ExecutablePlan::new(plan)?;
        let mut sink = CollectingSink::default();
        for (src, tuple) in events {
            exec.push(*src, tuple.clone(), &mut sink)?;
        }
        sink.results
    } else {
        let mut rt: StreamingShardedRuntime<CollectingSink> = StreamingShardedRuntime::with_config(
            plan,
            config.stages,
            StreamingConfig {
                batch_size: config.batch_size.max(1),
                ..StreamingConfig::default()
            },
        )?;
        // The shared handoff only pays off on fully stateless schemes
        // (zero-copy segment ranges); keyed/pinned/split schemes route per
        // event anyway, so materializing an owned copy first would be a
        // wasted full-input allocation.
        if rt
            .scheme()
            .routes()
            .iter()
            .all(|r| matches!(r, SourceRoute::RoundRobin))
        {
            rt.push_batch_shared(std::sync::Arc::new(events.to_vec()))?;
        } else {
            rt.push_batch(events)?;
        }
        rt.into_results()?
    };
    results.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.ts.cmp(&b.1.ts)));
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::QuerySink;
    use rumor_core::{LogicalPlan, Optimizer, OptimizerConfig};
    use rumor_expr::Predicate;
    use rumor_types::Schema;

    #[derive(Default)]
    struct Collect(Vec<(QueryId, Tuple)>);

    impl QuerySink for Collect {
        fn on_result(&mut self, query: QueryId, tuple: &Tuple) {
            self.0.push((query, tuple.clone()));
        }
    }

    fn chain_plan() -> (PlanGraph, SourceId) {
        let mut plan = PlanGraph::new();
        let s = plan.add_source("S", Schema::ints(2), None).unwrap();
        for c in 0..4i64 {
            plan.add_query(
                &LogicalPlan::source("S")
                    .select(Predicate::attr_eq_const(0, c))
                    .select(Predicate::attr_eq_const(1, 1i64)),
            )
            .unwrap();
        }
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();
        (plan, s)
    }

    fn single_threaded(plan: &PlanGraph, events: &[(SourceId, Tuple)]) -> Vec<(QueryId, Tuple)> {
        let mut exec = ExecutablePlan::new(plan).unwrap();
        let mut sink = Collect::default();
        for (src, tuple) in events {
            exec.push(*src, tuple.clone(), &mut sink).unwrap();
        }
        let mut single = sink.0;
        single.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.ts.cmp(&b.1.ts)));
        single
    }

    #[test]
    fn pipelined_matches_single_threaded() {
        let (plan, s) = chain_plan();
        let events: Vec<(SourceId, Tuple)> = (0..200u64)
            .map(|ts| (s, Tuple::ints(ts, &[(ts % 5) as i64, (ts % 2) as i64])))
            .collect();
        let single = single_threaded(&plan, &events);
        let pipelined = run_pipelined(&plan, &events, 3).unwrap();
        assert_eq!(pipelined, single);
    }

    #[test]
    fn pipelined_matches_across_batch_sizes() {
        let (plan, s) = chain_plan();
        let events: Vec<(SourceId, Tuple)> = (0..300u64)
            .map(|ts| (s, Tuple::ints(ts, &[(ts % 5) as i64, (ts % 2) as i64])))
            .collect();
        let single = single_threaded(&plan, &events);
        for batch_size in [1usize, 7, 64, 1024] {
            let config = PipelineConfig {
                stages: 3,
                batch_size,
            };
            let got = run_pipelined_config(&plan, &events, &config).unwrap();
            assert_eq!(got, single, "batch_size {batch_size} diverged");
        }
    }

    #[test]
    fn degenerate_single_stage_falls_back() {
        let (plan, s) = chain_plan();
        let events = vec![(s, Tuple::ints(0, &[0, 1]))];
        let results = run_pipelined(&plan, &events, 1).unwrap();
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn pipelined_stateful_plan_matches_single_threaded() {
        // A stateful plan with an unkeyed sequence pins to worker 0, where
        // the hybrid drain reproduces per-event order exactly; shard-local
        // stages must therefore match the single-threaded engine in full
        // result order, not just multisets.
        use rumor_core::SeqSpec;
        use rumor_expr::{CmpOp, Expr};

        let mut plan = PlanGraph::new();
        let s = plan.add_source("S", Schema::ints(2), None).unwrap();
        let t = plan.add_source("T", Schema::ints(2), None).unwrap();
        plan.add_query(
            &LogicalPlan::source("S")
                .select(Predicate::attr_eq_const(0, 1i64))
                .select(Predicate::attr_eq_const(1, 1i64))
                .followed_by(
                    LogicalPlan::source("T"),
                    SeqSpec {
                        predicate: Predicate::cmp(CmpOp::Le, Expr::col(0), Expr::rcol(0)),
                        window: 1000,
                    },
                ),
        )
        .unwrap();
        Optimizer::new(OptimizerConfig::default())
            .optimize(&mut plan)
            .unwrap();

        let events: Vec<(SourceId, Tuple)> = (0..200u64)
            .map(|ts| {
                let src = if ts % 2 == 0 { s } else { t };
                (
                    src,
                    Tuple::ints(ts, &[(ts % 3) as i64, ((ts / 2) % 2) as i64]),
                )
            })
            .collect();
        let single = single_threaded(&plan, &events);
        assert!(!single.is_empty());
        for batch_size in [1usize, 16, 256] {
            let got = run_pipelined_config(
                &plan,
                &events,
                &PipelineConfig {
                    stages: 3,
                    batch_size,
                },
            )
            .unwrap();
            assert_eq!(got, single, "stateful pipelined batch_size {batch_size}");
        }
    }
}
