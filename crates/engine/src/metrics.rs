//! Throughput measurement following the paper's protocol (§5): warmup
//! iterations first (the paper warms the JVM JIT; we warm caches and
//! allocators), then repeated measured runs whose throughputs are averaged.

use std::time::Instant;

use rumor_core::PlanGraph;
use rumor_types::{Result, SourceId, Timestamp, Tuple};

use crate::exec::{CountingSink, ExecutablePlan};

/// How events are fed through the compiled plan during measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedMode {
    /// One [`ExecutablePlan::push`] call (and full drain) per event.
    PerEvent,
    /// One [`ExecutablePlan::push_batch`] call over the whole input.
    Batched,
}

/// Measured batch profitability of one plan component — the record behind
/// the engine's *adaptive dispatch gate*.
///
/// [`crate::exec::ExecutablePlan::push_batch`] on a hybrid-eligible
/// stateful plan no longer commits statically to the hybrid drain: each
/// component warms up by alternating both feed modes twice (so one cold
/// or throttled chunk cannot decide alone), then keeps choosing the mode
/// with the higher observed event rate, re-probing the loser on a
/// deterministic exponential-backoff schedule (ticks 4, 16, 64, …).
/// Exploration picks are flagged so the engine can sample them on a
/// capped sub-chunk — a badly losing mode costs a bounded slice of one
/// chunk, never a whole one. Two
/// consecutive probes that fail to dethrone the winner freeze the choice
/// for the rest of the engine's life, so a steady-state workload pays no
/// further exploration cost. Rates are exponentially-weighted moving
/// averages, so a workload whose profitability shifts *before* the freeze
/// flips the gate within a few chunks.
///
/// The comparison is asymmetric on purpose: per-event dispatch is the
/// baseline the conformance oracle runs, so batched dispatch must beat it
/// by a clear hysteresis margin ([`BatchProfile::MARGIN`]) to win.
/// Genuinely batch-profitable plans clear the margin by a wide multiple;
/// plans near parity stay per-event instead of ping-ponging on timer
/// noise — on a shared or cgroup-throttled host a single lucky sample is
/// no longer enough to lock in the slower mode.
///
/// The profile is clock-free (callers pass elapsed nanoseconds), fully
/// deterministic given the same timing inputs, and conformance-neutral:
/// both feed modes are per-event-equivalent, so the gate only ever changes
/// *speed*, never results.
#[derive(Debug, Clone)]
pub struct BatchProfile {
    /// EWMA events/sec, indexed by [`BatchProfile::slot`].
    rate: [f64; 2],
    /// Samples recorded per mode.
    trials: [u64; 2],
    /// Choices made so far (drives the probe schedule).
    tick: u64,
    /// Winner at the time of the last completed probe, if any.
    probed_winner: Option<FeedMode>,
    /// Probes in a row that confirmed the standing winner.
    confirmations: u32,
    /// Set once exploration ends; `choose` returns this forever after.
    frozen: Option<FeedMode>,
}

impl Default for BatchProfile {
    fn default() -> Self {
        BatchProfile {
            rate: [0.0; 2],
            trials: [0; 2],
            tick: 0,
            probed_winner: None,
            confirmations: 0,
            frozen: None,
        }
    }
}

impl BatchProfile {
    /// Probes that must confirm the standing winner before freezing.
    const FREEZE_AFTER: u32 = 2;
    /// EWMA weight of a new sample.
    const ALPHA: f64 = 0.4;
    /// Fractional rate advantage batched dispatch must show over per-event
    /// before it is preferred (hysteresis; see the type-level docs).
    pub const MARGIN: f64 = 0.05;
    /// Samples of each mode taken (alternating) before the gate starts
    /// picking winners.
    const WARMUP_TRIALS: u64 = 2;

    fn slot(mode: FeedMode) -> usize {
        match mode {
            FeedMode::PerEvent => 0,
            FeedMode::Batched => 1,
        }
    }

    /// Whether `tick` (1-based) is on the probe schedule: powers of four,
    /// so exploration cost decays geometrically.
    fn is_probe_tick(tick: u64) -> bool {
        tick >= 4 && tick.is_power_of_two() && tick.trailing_zeros().is_multiple_of(2)
    }

    /// Picks the feed mode for the next chunk and advances the schedule,
    /// returning the mode plus whether the pick is an *exploration* sample
    /// (a warmup or probe of the non-standing mode). Exploration picks may
    /// be arbitrarily slower than the standing winner, so callers should
    /// bound how much input they risk on one (the engine samples them on a
    /// capped sub-chunk). Callers must follow up with
    /// [`BatchProfile::record`] for whatever actually ran — a forced
    /// per-event fallback is still a genuine per-event sample.
    ///
    /// Setting `RUMOR_FORCE_PER_EVENT` or `RUMOR_FORCE_BATCHED` in the
    /// environment pins every choice to one mode (for A/B measurement,
    /// e.g. against the throughput bench). Both modes are exact, so
    /// forcing only ever moves speed, never results.
    pub fn choose(&mut self) -> (FeedMode, bool) {
        self.tick += 1;
        if let Some(mode) = Self::forced_mode() {
            return (mode, false);
        }
        if let Some(mode) = self.frozen {
            return (mode, false);
        }
        // Warmup: sample batched until both modes have enough evidence
        // (callers recording each capped probe *and* its per-event
        // remainder finish warmup in two ticks; plain callers alternate).
        let b = self.trials[Self::slot(FeedMode::Batched)];
        let p = self.trials[Self::slot(FeedMode::PerEvent)];
        if b < Self::WARMUP_TRIALS || p < Self::WARMUP_TRIALS {
            return if b <= p {
                (FeedMode::Batched, true)
            } else {
                (FeedMode::PerEvent, false)
            };
        }
        let winner = self.preferred();
        if Self::is_probe_tick(self.tick) {
            return (Self::other(winner), true);
        }
        (winner, false)
    }

    /// The mode pinned by `RUMOR_FORCE_PER_EVENT` / `RUMOR_FORCE_BATCHED`,
    /// if either is set (checked once per process).
    fn forced_mode() -> Option<FeedMode> {
        static FORCED: std::sync::OnceLock<Option<FeedMode>> = std::sync::OnceLock::new();
        *FORCED.get_or_init(|| {
            Self::forced_from(
                std::env::var_os("RUMOR_FORCE_PER_EVENT").is_some(),
                std::env::var_os("RUMOR_FORCE_BATCHED").is_some(),
            )
        })
    }

    /// The pure env-var → mode mapping behind [`BatchProfile::forced`]:
    /// `RUMOR_FORCE_PER_EVENT` wins over `RUMOR_FORCE_BATCHED` when both
    /// are set (per-event is the reference oracle's dispatch order).
    /// Split out so the precedence is unit-testable despite the
    /// once-per-process caching of the real environment read.
    fn forced_from(per_event: bool, batched: bool) -> Option<FeedMode> {
        if per_event {
            Some(FeedMode::PerEvent)
        } else if batched {
            Some(FeedMode::Batched)
        } else {
            None
        }
    }

    /// The process-wide pinned mode, if `RUMOR_FORCE_PER_EVENT` or
    /// `RUMOR_FORCE_BATCHED` was set when the gate first consulted the
    /// environment. Surfaced in [`crate::stats::GateStats`] so a forced
    /// A/B run is visible in every snapshot it produced.
    pub fn forced() -> Option<FeedMode> {
        Self::forced_mode()
    }

    /// Folds one timed chunk into the profile. `nanos` is the chunk's
    /// wall-clock duration; zero durations (timer granularity) count as
    /// one nanosecond.
    pub fn record(&mut self, mode: FeedMode, events: usize, nanos: u64) {
        if events == 0 {
            return;
        }
        let s = Self::slot(mode);
        let sample = events as f64 * 1e9 / nanos.max(1) as f64;
        self.rate[s] = if self.trials[s] == 0 {
            sample
        } else {
            Self::ALPHA * sample + (1.0 - Self::ALPHA) * self.rate[s]
        };
        let warmed_up =
            self.trials[0] >= Self::WARMUP_TRIALS && self.trials[1] >= Self::WARMUP_TRIALS;
        self.trials[s] += 1;
        // A completed probe (a sample for the non-preferred mode after
        // warmup) either dethrones the winner or counts toward freezing.
        // Warmup samples never confirm: freezing is reserved for the
        // deliberate probe schedule, so a cold start can't end exploration.
        if self.frozen.is_none() && warmed_up {
            let winner = self.preferred();
            if mode != winner {
                match self.probed_winner {
                    Some(w) if w == winner => {
                        self.confirmations += 1;
                        if self.confirmations >= Self::FREEZE_AFTER {
                            self.frozen = Some(winner);
                        }
                    }
                    _ => {
                        self.probed_winner = Some(winner);
                        self.confirmations = 1;
                        if self.confirmations >= Self::FREEZE_AFTER {
                            self.frozen = Some(winner);
                        }
                    }
                }
            }
        }
    }

    /// The mode currently believed faster. Batched must lead by
    /// [`BatchProfile::MARGIN`] to win; anything closer — including the
    /// no-evidence state — is per-event, the mode whose dispatch order the
    /// reference oracle uses.
    pub fn preferred(&self) -> FeedMode {
        let per = self.rate[Self::slot(FeedMode::PerEvent)];
        let bat = self.rate[Self::slot(FeedMode::Batched)];
        if bat > per * (1.0 + Self::MARGIN) {
            FeedMode::Batched
        } else {
            FeedMode::PerEvent
        }
    }

    /// Whether exploration has ended.
    pub fn is_frozen(&self) -> bool {
        self.frozen.is_some()
    }

    fn other(mode: FeedMode) -> FeedMode {
        match mode {
            FeedMode::PerEvent => FeedMode::Batched,
            FeedMode::Batched => FeedMode::PerEvent,
        }
    }
}

/// One prepared input event.
#[derive(Debug, Clone)]
pub struct InputEvent {
    /// Which source the tuple arrives on.
    pub source: SourceId,
    /// The tuple (timestamps must be globally non-decreasing).
    pub tuple: Tuple,
}

impl InputEvent {
    /// Convenience constructor.
    pub fn new(source: SourceId, tuple: Tuple) -> Self {
        InputEvent { source, tuple }
    }

    /// The event timestamp.
    pub fn ts(&self) -> Timestamp {
        self.tuple.ts
    }
}

/// Result of a measured run.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Input events per second, averaged across the measured runs (the
    /// paper's throughput metric).
    pub events_per_sec: f64,
    /// Input events per second of the best measured run. On a shared or
    /// cgroup-limited measurement host, load bursts only ever *slow* a
    /// run down, so the best run is the robust estimate of what the
    /// engine can actually sustain.
    pub best_events_per_sec: f64,
    /// Input events per run.
    pub events_in: u64,
    /// Total query results produced per run.
    pub results_out: u64,
    /// Number of measured repetitions.
    pub runs: usize,
}

/// Measurement protocol configuration.
#[derive(Debug, Clone)]
pub struct Protocol {
    /// Warmup passes over the input before measuring.
    pub warmup_runs: usize,
    /// Measured repetitions (averaged).
    pub measured_runs: usize,
}

impl Default for Protocol {
    fn default() -> Self {
        // The paper uses a few warmup iterations and ten measured runs; we
        // default lower so full figure sweeps stay tractable, and the
        // harness raises it per experiment.
        Protocol {
            warmup_runs: 1,
            measured_runs: 3,
        }
    }
}

/// Runs the protocol: each run compiles a fresh executable plan (operator
/// state must not leak across runs) and streams all events through it.
pub fn measure(
    plan: &PlanGraph,
    events: &[InputEvent],
    protocol: &Protocol,
) -> Result<Measurement> {
    measure_mode(plan, events, protocol, FeedMode::PerEvent)
}

/// [`measure`], but feeding each run through one
/// [`ExecutablePlan::push_batch`] call.
pub fn measure_batched(
    plan: &PlanGraph,
    events: &[InputEvent],
    protocol: &Protocol,
) -> Result<Measurement> {
    measure_mode(plan, events, protocol, FeedMode::Batched)
}

/// The shared measurement loop behind [`measure`] and [`measure_batched`].
pub fn measure_mode(
    plan: &PlanGraph,
    events: &[InputEvent],
    protocol: &Protocol,
    mode: FeedMode,
) -> Result<Measurement> {
    // The batched entry point takes `(source, tuple)` pairs; prepare them
    // once, outside the timed region (tuple payloads are refcounted, so
    // this clone does not copy values).
    let batch: Vec<(SourceId, Tuple)> = match mode {
        FeedMode::Batched => events
            .iter()
            .map(|ev| (ev.source, ev.tuple.clone()))
            .collect(),
        FeedMode::PerEvent => Vec::new(),
    };
    // Plan compilation stays outside the timed region, matching the
    // paper's protocol (only event processing is measured).
    let run_once = |sink: &mut CountingSink| -> Result<f64> {
        let mut exec = ExecutablePlan::new(plan)?;
        let start = Instant::now();
        match mode {
            FeedMode::PerEvent => {
                for ev in events {
                    exec.push(ev.source, ev.tuple.clone(), sink)?;
                }
            }
            FeedMode::Batched => exec.push_batch(&batch, sink)?,
        }
        Ok(start.elapsed().as_secs_f64().max(1e-9))
    };
    let mut results_out = 0u64;
    for _ in 0..protocol.warmup_runs {
        let mut sink = CountingSink::default();
        run_once(&mut sink)?;
    }
    let mut total_rate = 0.0;
    let mut best_rate = 0.0f64;
    let runs = protocol.measured_runs.max(1);
    for _ in 0..runs {
        let mut sink = CountingSink::default();
        let elapsed = run_once(&mut sink)?;
        let rate = events.len() as f64 / elapsed;
        total_rate += rate;
        best_rate = best_rate.max(rate);
        results_out = sink.total;
    }
    Ok(Measurement {
        events_per_sec: total_rate / runs as f64,
        best_events_per_sec: best_rate,
        events_in: events.len() as u64,
        results_out,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::LogicalPlan;
    use rumor_expr::Predicate;
    use rumor_types::Schema;

    /// Feeds `profile` one chunk: asks for a mode, then records a sample
    /// at `rate_of(mode)` events/sec. Returns the chosen mode.
    fn step(profile: &mut BatchProfile, mut rate_of: impl FnMut(FeedMode) -> f64) -> FeedMode {
        let (mode, _) = profile.choose();
        // 1024-event chunk at the given rate.
        let nanos = (1024.0 * 1e9 / rate_of(mode)) as u64;
        profile.record(mode, 1024, nanos);
        mode
    }

    #[test]
    fn gate_warms_up_alternating_both_modes() {
        let mut p = BatchProfile::default();
        let seen: Vec<FeedMode> = (0..4).map(|_| step(&mut p, |_| 1e6)).collect();
        assert_eq!(
            seen,
            vec![
                FeedMode::Batched,
                FeedMode::PerEvent,
                FeedMode::Batched,
                FeedMode::PerEvent,
            ]
        );
    }

    #[test]
    fn gate_prefers_per_event_inside_the_hysteresis_margin() {
        let mut p = BatchProfile::default();
        // Batched slightly faster, but within the margin: not enough.
        for _ in 0..8 {
            step(&mut p, |m| match m {
                FeedMode::PerEvent => 1.00e6,
                FeedMode::Batched => 1.03e6,
            });
        }
        assert_eq!(p.preferred(), FeedMode::PerEvent);
    }

    #[test]
    fn gate_locks_onto_clearly_profitable_batching() {
        let mut p = BatchProfile::default();
        for _ in 0..64 {
            step(&mut p, |m| match m {
                FeedMode::PerEvent => 1.0e6,
                FeedMode::Batched => 1.4e6,
            });
        }
        assert_eq!(p.preferred(), FeedMode::Batched);
        assert!(p.is_frozen(), "steady evidence should end exploration");
    }

    #[test]
    fn gate_shrugs_off_one_lucky_batched_spike() {
        let mut p = BatchProfile::default();
        let mut spiked = false;
        for _ in 0..64 {
            step(&mut p, |m| match m {
                FeedMode::PerEvent => 1.0e6,
                // First batched sample after warmup reads 2x (a scheduler
                // hiccup timed the chunk wrong); its true rate is 0.9x.
                FeedMode::Batched if !spiked => {
                    spiked = true;
                    2.0e6
                }
                FeedMode::Batched => 0.9e6,
            });
        }
        assert_eq!(
            p.preferred(),
            FeedMode::PerEvent,
            "EWMA + margin must recover from a single wild sample"
        );
    }

    #[test]
    fn force_env_vars_map_to_modes_with_per_event_precedence() {
        // The OnceLock in `forced_mode` reads the environment once per
        // process, so the mapping itself is pinned through the pure seam.
        assert_eq!(BatchProfile::forced_from(false, false), None);
        assert_eq!(
            BatchProfile::forced_from(true, false),
            Some(FeedMode::PerEvent)
        );
        assert_eq!(
            BatchProfile::forced_from(false, true),
            Some(FeedMode::Batched)
        );
        assert_eq!(
            BatchProfile::forced_from(true, true),
            Some(FeedMode::PerEvent),
            "per-event (the oracle's order) wins when both are set"
        );
    }

    #[test]
    fn forced_and_frozen_state_are_publicly_visible() {
        // The test harness sets neither env var, so the process-wide
        // pinned mode must be absent — and a frozen gate reports both its
        // freeze and its choice through the public accessors the stats
        // layer snapshots.
        assert_eq!(BatchProfile::forced(), None);
        let mut p = BatchProfile::default();
        assert!(!p.is_frozen());
        for _ in 0..64 {
            step(&mut p, |m| match m {
                FeedMode::PerEvent => 1.0e6,
                FeedMode::Batched => 1.4e6,
            });
        }
        assert!(p.is_frozen());
        assert_eq!(p.preferred(), FeedMode::Batched);
    }

    #[test]
    fn measure_reports_rates_and_counts() {
        let mut plan = PlanGraph::new();
        let s = plan.add_source("S", Schema::ints(1), None).unwrap();
        plan.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 0i64)))
            .unwrap();
        let events: Vec<InputEvent> = (0..100)
            .map(|ts| InputEvent::new(s, Tuple::ints(ts, &[(ts % 2) as i64])))
            .collect();
        let m = measure(&plan, &events, &Protocol::default()).unwrap();
        assert_eq!(m.events_in, 100);
        assert_eq!(m.results_out, 50);
        assert!(m.events_per_sec > 0.0);
        assert_eq!(m.runs, 3);
    }
}
