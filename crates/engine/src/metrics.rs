//! Throughput measurement following the paper's protocol (§5): warmup
//! iterations first (the paper warms the JVM JIT; we warm caches and
//! allocators), then repeated measured runs whose throughputs are averaged.

use std::time::Instant;

use rumor_core::PlanGraph;
use rumor_types::{Result, SourceId, Timestamp, Tuple};

use crate::exec::{CountingSink, ExecutablePlan};

/// How events are fed through the compiled plan during measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedMode {
    /// One [`ExecutablePlan::push`] call (and full drain) per event.
    PerEvent,
    /// One [`ExecutablePlan::push_batch`] call over the whole input.
    Batched,
}

/// One prepared input event.
#[derive(Debug, Clone)]
pub struct InputEvent {
    /// Which source the tuple arrives on.
    pub source: SourceId,
    /// The tuple (timestamps must be globally non-decreasing).
    pub tuple: Tuple,
}

impl InputEvent {
    /// Convenience constructor.
    pub fn new(source: SourceId, tuple: Tuple) -> Self {
        InputEvent { source, tuple }
    }

    /// The event timestamp.
    pub fn ts(&self) -> Timestamp {
        self.tuple.ts
    }
}

/// Result of a measured run.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Input events per second, averaged across the measured runs (the
    /// paper's throughput metric).
    pub events_per_sec: f64,
    /// Input events per second of the best measured run. On a shared or
    /// cgroup-limited measurement host, load bursts only ever *slow* a
    /// run down, so the best run is the robust estimate of what the
    /// engine can actually sustain.
    pub best_events_per_sec: f64,
    /// Input events per run.
    pub events_in: u64,
    /// Total query results produced per run.
    pub results_out: u64,
    /// Number of measured repetitions.
    pub runs: usize,
}

/// Measurement protocol configuration.
#[derive(Debug, Clone)]
pub struct Protocol {
    /// Warmup passes over the input before measuring.
    pub warmup_runs: usize,
    /// Measured repetitions (averaged).
    pub measured_runs: usize,
}

impl Default for Protocol {
    fn default() -> Self {
        // The paper uses a few warmup iterations and ten measured runs; we
        // default lower so full figure sweeps stay tractable, and the
        // harness raises it per experiment.
        Protocol {
            warmup_runs: 1,
            measured_runs: 3,
        }
    }
}

/// Runs the protocol: each run compiles a fresh executable plan (operator
/// state must not leak across runs) and streams all events through it.
pub fn measure(
    plan: &PlanGraph,
    events: &[InputEvent],
    protocol: &Protocol,
) -> Result<Measurement> {
    measure_mode(plan, events, protocol, FeedMode::PerEvent)
}

/// [`measure`], but feeding each run through one
/// [`ExecutablePlan::push_batch`] call.
pub fn measure_batched(
    plan: &PlanGraph,
    events: &[InputEvent],
    protocol: &Protocol,
) -> Result<Measurement> {
    measure_mode(plan, events, protocol, FeedMode::Batched)
}

/// The shared measurement loop behind [`measure`] and [`measure_batched`].
pub fn measure_mode(
    plan: &PlanGraph,
    events: &[InputEvent],
    protocol: &Protocol,
    mode: FeedMode,
) -> Result<Measurement> {
    // The batched entry point takes `(source, tuple)` pairs; prepare them
    // once, outside the timed region (tuple payloads are refcounted, so
    // this clone does not copy values).
    let batch: Vec<(SourceId, Tuple)> = match mode {
        FeedMode::Batched => events
            .iter()
            .map(|ev| (ev.source, ev.tuple.clone()))
            .collect(),
        FeedMode::PerEvent => Vec::new(),
    };
    // Plan compilation stays outside the timed region, matching the
    // paper's protocol (only event processing is measured).
    let run_once = |sink: &mut CountingSink| -> Result<f64> {
        let mut exec = ExecutablePlan::new(plan)?;
        let start = Instant::now();
        match mode {
            FeedMode::PerEvent => {
                for ev in events {
                    exec.push(ev.source, ev.tuple.clone(), sink)?;
                }
            }
            FeedMode::Batched => exec.push_batch(&batch, sink)?,
        }
        Ok(start.elapsed().as_secs_f64().max(1e-9))
    };
    let mut results_out = 0u64;
    for _ in 0..protocol.warmup_runs {
        let mut sink = CountingSink::default();
        run_once(&mut sink)?;
    }
    let mut total_rate = 0.0;
    let mut best_rate = 0.0f64;
    let runs = protocol.measured_runs.max(1);
    for _ in 0..runs {
        let mut sink = CountingSink::default();
        let elapsed = run_once(&mut sink)?;
        let rate = events.len() as f64 / elapsed;
        total_rate += rate;
        best_rate = best_rate.max(rate);
        results_out = sink.total;
    }
    Ok(Measurement {
        events_per_sec: total_rate / runs as f64,
        best_events_per_sec: best_rate,
        events_in: events.len() as u64,
        results_out,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::LogicalPlan;
    use rumor_expr::Predicate;
    use rumor_types::Schema;

    #[test]
    fn measure_reports_rates_and_counts() {
        let mut plan = PlanGraph::new();
        let s = plan.add_source("S", Schema::ints(1), None).unwrap();
        plan.add_query(&LogicalPlan::source("S").select(Predicate::attr_eq_const(0, 0i64)))
            .unwrap();
        let events: Vec<InputEvent> = (0..100)
            .map(|ts| InputEvent::new(s, Tuple::ints(ts, &[(ts % 2) as i64])))
            .collect();
        let m = measure(&plan, &events, &Protocol::default()).unwrap();
        assert_eq!(m.events_in, 100);
        assert_eq!(m.results_out, 50);
        assert!(m.events_per_sec > 0.0);
        assert_eq!(m.runs, 3);
    }
}
