//! Boolean predicates with three-valued (SQL-style) evaluation and the
//! structural analyses used by the MQO rules.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use rumor_types::{Schema, Value};

use crate::expr::{EvalCtx, Expr, Side};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn test(&self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with swapped operands (`a < b` ⇔ `b > a`).
    pub fn flip(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A boolean predicate over one or two tuples.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Comparison of two scalar expressions.
    Cmp {
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Expr,
        /// Right operand.
        rhs: Expr,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `lhs op rhs`.
    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Predicate {
        Predicate::Cmp { op, lhs, rhs }
    }

    /// Left attribute equals integer constant — the indexable shape of the
    /// paper's Workload 1 predicates (`a\[0\] = c`, §5.2).
    pub fn attr_eq_const(index: usize, value: impl Into<Value>) -> Predicate {
        Predicate::cmp(CmpOp::Eq, Expr::col(index), Expr::Lit(value.into()))
    }

    /// Conjunction of predicates, flattening trivial cases.
    pub fn and(preds: Vec<Predicate>) -> Predicate {
        let mut out = Vec::with_capacity(preds.len());
        for p in preds {
            match p {
                Predicate::True => {}
                Predicate::False => return Predicate::False,
                Predicate::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Predicate::True,
            1 => out.pop().unwrap(),
            _ => Predicate::And(out),
        }
    }

    /// Disjunction of predicates, flattening trivial cases.
    pub fn or(preds: Vec<Predicate>) -> Predicate {
        let mut out = Vec::with_capacity(preds.len());
        for p in preds {
            match p {
                Predicate::False => {}
                Predicate::True => return Predicate::True,
                Predicate::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Predicate::False,
            1 => out.pop().unwrap(),
            _ => Predicate::Or(out),
        }
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)] // associated constructor, not `!`
    pub fn not(p: Predicate) -> Predicate {
        match p {
            Predicate::True => Predicate::False,
            Predicate::False => Predicate::True,
            Predicate::Not(inner) => *inner,
            other => Predicate::Not(Box::new(other)),
        }
    }

    /// Three-valued evaluation: `None` is SQL UNKNOWN (e.g. comparisons
    /// against NULL or across incomparable types).
    pub fn eval3(&self, ctx: &EvalCtx<'_>) -> Option<bool> {
        match self {
            Predicate::True => Some(true),
            Predicate::False => Some(false),
            Predicate::Cmp { op, lhs, rhs } => {
                let l = lhs.eval(ctx);
                let r = rhs.eval(ctx);
                l.compare(&r).map(|ord| op.test(ord))
            }
            Predicate::And(ps) => {
                let mut unknown = false;
                for p in ps {
                    match p.eval3(ctx) {
                        Some(false) => return Some(false),
                        None => unknown = true,
                        Some(true) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(true)
                }
            }
            Predicate::Or(ps) => {
                let mut unknown = false;
                for p in ps {
                    match p.eval3(ctx) {
                        Some(true) => return Some(true),
                        None => unknown = true,
                        Some(false) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(false)
                }
            }
            Predicate::Not(p) => p.eval3(ctx).map(|b| !b),
        }
    }

    /// Two-valued evaluation: UNKNOWN filters out (SQL WHERE semantics).
    pub fn eval(&self, ctx: &EvalCtx<'_>) -> bool {
        self.eval3(ctx) == Some(true)
    }

    /// If the predicate is exactly `left.a[i] = constant` (either operand
    /// order), returns the attribute index and constant. This is the shape
    /// the predicate-indexing m-op (rule sσ) hashes on \[10, 16\].
    pub fn as_eq_const(&self) -> Option<EqConst> {
        let Predicate::Cmp {
            op: CmpOp::Eq,
            lhs,
            rhs,
        } = self
        else {
            return None;
        };
        match (lhs, rhs) {
            (
                Expr::Col {
                    side: Side::Left,
                    index,
                },
                Expr::Lit(v),
            )
            | (
                Expr::Lit(v),
                Expr::Col {
                    side: Side::Left,
                    index,
                },
            ) => Some(EqConst {
                attr: *index,
                value: v.clone(),
            }),
            _ => None,
        }
    }

    /// Splits a (possibly conjunctive) pairwise predicate into its equi-join
    /// conjuncts `left.a[i] = right.a[j]` and the residual predicate.
    ///
    /// The shared sequence/iterate m-op builds its Active-Instance (AI) index
    /// on the left attributes of these conjuncts (§5.2 Workload 2:
    /// `S.a\[0\] = T.a\[0\]`), and the shared join m-op hashes on them.
    pub fn split_equi_join(&self) -> (Vec<(usize, usize)>, Predicate) {
        let conjuncts: Vec<Predicate> = match self {
            Predicate::And(ps) => ps.clone(),
            other => vec![other.clone()],
        };
        let mut keys = Vec::new();
        let mut residual = Vec::new();
        for c in conjuncts {
            if let Predicate::Cmp {
                op: CmpOp::Eq,
                lhs,
                rhs,
            } = &c
            {
                match (lhs, rhs) {
                    (
                        Expr::Col {
                            side: Side::Left,
                            index: li,
                        },
                        Expr::Col {
                            side: Side::Right,
                            index: ri,
                        },
                    )
                    | (
                        Expr::Col {
                            side: Side::Right,
                            index: ri,
                        },
                        Expr::Col {
                            side: Side::Left,
                            index: li,
                        },
                    ) => {
                        keys.push((*li, *ri));
                        continue;
                    }
                    _ => {}
                }
            }
            residual.push(c);
        }
        (keys, Predicate::and(residual))
    }

    /// True if the predicate references the given side.
    pub fn references(&self, side: Side) -> bool {
        match self {
            Predicate::True | Predicate::False => false,
            Predicate::Cmp { lhs, rhs, .. } => lhs.references(side) || rhs.references(side),
            Predicate::And(ps) | Predicate::Or(ps) => ps.iter().any(|p| p.references(side)),
            Predicate::Not(p) => p.references(side),
        }
    }

    /// Rewrites side references, mirroring [`Expr::shift_side`].
    pub fn shift_side(&self, side: Side, offset: usize, new_side: Side) -> Predicate {
        match self {
            Predicate::True => Predicate::True,
            Predicate::False => Predicate::False,
            Predicate::Cmp { op, lhs, rhs } => Predicate::Cmp {
                op: *op,
                lhs: lhs.shift_side(side, offset, new_side),
                rhs: rhs.shift_side(side, offset, new_side),
            },
            Predicate::And(ps) => Predicate::And(
                ps.iter()
                    .map(|p| p.shift_side(side, offset, new_side))
                    .collect(),
            ),
            Predicate::Or(ps) => Predicate::Or(
                ps.iter()
                    .map(|p| p.shift_side(side, offset, new_side))
                    .collect(),
            ),
            Predicate::Not(p) => Predicate::Not(Box::new(p.shift_side(side, offset, new_side))),
        }
    }

    /// Validates column references against the given schemas.
    pub fn check_types(&self, left: &Schema, right: Option<&Schema>) -> rumor_types::Result<()> {
        match self {
            Predicate::True | Predicate::False => Ok(()),
            Predicate::Cmp { lhs, rhs, .. } => {
                lhs.infer_type(left, right)?;
                rhs.infer_type(left, right)?;
                Ok(())
            }
            Predicate::And(ps) | Predicate::Or(ps) => {
                ps.iter().try_for_each(|p| p.check_types(left, right))
            }
            Predicate::Not(p) => p.check_types(left, right),
        }
    }
}

impl Eq for Predicate {}

impl Hash for Predicate {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Predicate::True => 0u8.hash(state),
            Predicate::False => 1u8.hash(state),
            Predicate::Cmp { op, lhs, rhs } => {
                2u8.hash(state);
                op.hash(state);
                lhs.hash(state);
                rhs.hash(state);
            }
            Predicate::And(ps) => {
                3u8.hash(state);
                ps.hash(state);
            }
            Predicate::Or(ps) => {
                4u8.hash(state);
                ps.hash(state);
            }
            Predicate::Not(p) => {
                5u8.hash(state);
                p.hash(state);
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::Cmp { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Predicate::And(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Predicate::Or(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Predicate::Not(p) => write!(f, "NOT {p}"),
        }
    }
}

/// Result of [`Predicate::as_eq_const`]: `left.a[attr] = value`.
#[derive(Debug, Clone, PartialEq)]
pub struct EqConst {
    /// Attribute position on the left tuple.
    pub attr: usize,
    /// The constant compared against.
    pub value: Value,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_types::Tuple;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::ints(0, vals)
    }

    #[test]
    fn cmp_eval() {
        let tup = t(&[5, 10]);
        let ctx = EvalCtx::unary(&tup);
        assert!(Predicate::attr_eq_const(0, 5i64).eval(&ctx));
        assert!(!Predicate::attr_eq_const(0, 6i64).eval(&ctx));
        assert!(Predicate::cmp(CmpOp::Lt, Expr::col(0), Expr::col(1)).eval(&ctx));
        assert!(Predicate::cmp(CmpOp::Ge, Expr::col(1), Expr::lit(10i64)).eval(&ctx));
    }

    #[test]
    fn three_valued_null_semantics() {
        let tup = t(&[5]);
        let ctx = EvalCtx::unary(&tup);
        // a9 is out of range -> NULL -> comparison UNKNOWN.
        let unknown = Predicate::attr_eq_const(9, 5i64);
        assert_eq!(unknown.eval3(&ctx), None);
        assert!(!unknown.eval(&ctx));
        // NOT UNKNOWN is still UNKNOWN (not true).
        assert!(!Predicate::not(unknown.clone()).eval(&ctx));
        // UNKNOWN OR TRUE is TRUE; UNKNOWN AND TRUE is UNKNOWN.
        assert!(Predicate::or(vec![unknown.clone(), Predicate::True]).eval(&ctx));
        assert_eq!(
            Predicate::And(vec![unknown, Predicate::True]).eval3(&ctx),
            None
        );
    }

    #[test]
    fn and_or_flattening() {
        let p = Predicate::attr_eq_const(0, 1i64);
        assert_eq!(Predicate::and(vec![]), Predicate::True);
        assert_eq!(Predicate::and(vec![p.clone()]), p.clone());
        assert_eq!(Predicate::and(vec![Predicate::True, p.clone()]), p.clone());
        assert_eq!(
            Predicate::and(vec![Predicate::False, p.clone()]),
            Predicate::False
        );
        assert_eq!(Predicate::or(vec![]), Predicate::False);
        assert_eq!(
            Predicate::or(vec![Predicate::True, p.clone()]),
            Predicate::True
        );
        // Nested And flattens.
        let nested = Predicate::and(vec![Predicate::And(vec![p.clone(), p.clone()]), p.clone()]);
        assert_eq!(nested, Predicate::And(vec![p.clone(), p.clone(), p]));
    }

    #[test]
    fn not_simplification() {
        assert_eq!(Predicate::not(Predicate::True), Predicate::False);
        let p = Predicate::attr_eq_const(0, 1i64);
        assert_eq!(Predicate::not(Predicate::not(p.clone())), p);
    }

    #[test]
    fn as_eq_const_detects_both_orders() {
        let p = Predicate::attr_eq_const(3, 42i64);
        let e = p.as_eq_const().unwrap();
        assert_eq!(e.attr, 3);
        assert_eq!(e.value, Value::Int(42));

        let flipped = Predicate::cmp(CmpOp::Eq, Expr::lit(42i64), Expr::col(3));
        assert_eq!(flipped.as_eq_const().unwrap().attr, 3);

        // Not an equality, not a constant comparison, wrong side.
        assert!(Predicate::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(1i64))
            .as_eq_const()
            .is_none());
        assert!(Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::col(1))
            .as_eq_const()
            .is_none());
        assert!(Predicate::cmp(CmpOp::Eq, Expr::rcol(0), Expr::lit(1i64))
            .as_eq_const()
            .is_none());
    }

    #[test]
    fn split_equi_join() {
        // S.a0 = T.a0 AND S.a1 > 5  (Workload 2 + residual)
        let p = Predicate::and(vec![
            Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
            Predicate::cmp(CmpOp::Gt, Expr::col(1), Expr::lit(5i64)),
        ]);
        let (keys, residual) = p.split_equi_join();
        assert_eq!(keys, vec![(0, 0)]);
        assert_eq!(
            residual,
            Predicate::cmp(CmpOp::Gt, Expr::col(1), Expr::lit(5i64))
        );

        // Flipped operand order also detected.
        let p2 = Predicate::cmp(CmpOp::Eq, Expr::rcol(2), Expr::col(1));
        let (keys2, residual2) = p2.split_equi_join();
        assert_eq!(keys2, vec![(1, 2)]);
        assert_eq!(residual2, Predicate::True);
    }

    #[test]
    fn flip_op() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.flip(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
    }

    #[test]
    fn display() {
        let p = Predicate::and(vec![
            Predicate::attr_eq_const(0, 1i64),
            Predicate::cmp(CmpOp::Gt, Expr::rcol(1), Expr::lit(2i64)),
        ]);
        assert_eq!(p.to_string(), "(l.a0 = 1 AND r.a1 > 2)");
    }

    #[test]
    fn check_types() {
        let s = Schema::ints(2);
        assert!(Predicate::attr_eq_const(0, 1i64)
            .check_types(&s, None)
            .is_ok());
        assert!(Predicate::attr_eq_const(5, 1i64)
            .check_types(&s, None)
            .is_err());
        assert!(Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0))
            .check_types(&s, None)
            .is_err());
        assert!(Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0))
            .check_types(&s, Some(&s))
            .is_ok());
    }

    #[test]
    fn binary_predicate_eval() {
        let l = Tuple::ints(0, &[7, 1]);
        let r = Tuple::ints(1, &[7, 9]);
        let ctx = EvalCtx::binary(&l, &r);
        let p = Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0));
        assert!(p.eval(&ctx));
        let q = Predicate::cmp(CmpOp::Gt, Expr::rcol(1), Expr::col(1));
        assert!(q.eval(&ctx));
    }
}
