//! # rumor-expr
//!
//! The expression layer of RUMOR: scalar [`Expr`]essions, boolean
//! [`Predicate`]s, and [`SchemaMap`]s (the paper's *schema map functions*,
//! §4.2 — SQL-SELECT-style projections that can rename, drop, and compute
//! attributes).
//!
//! Two aspects matter beyond plain evaluation:
//!
//! 1. **Structural identity.** Multi-query rewrite rules (m-rules) decide
//!    sharability by comparing operator *definitions* — "two selection
//!    operators with the same predicate", "two aggregation operators with the
//!    same aggregate function and group-by" (§3.2). All expression types here
//!    implement `Eq + Hash` structurally so rule engines can group candidate
//!    operators with a hash map in O(n).
//! 2. **Index analysis.** The predicate-indexing m-op (rule sσ) needs to know
//!    whether a predicate is an equality comparison of an attribute with a
//!    constant ([`Predicate::as_eq_const`]); the AI-index of the shared
//!    sequence m-op needs the equi-join conjuncts of a pairwise predicate
//!    ([`Predicate::split_equi_join`]).

#![warn(missing_docs)]

mod expr;
mod predicate;
mod schema_map;

pub use expr::{ArithOp, EvalCtx, Expr, Side};
pub use predicate::{CmpOp, EqConst, Predicate};
pub use schema_map::{NamedExpr, SchemaMap};
