//! Scalar expressions over one or two input tuples.

use std::fmt;
use std::hash::{Hash, Hasher};

use rumor_types::{Result, RumorError, Schema, Tuple, Value, ValueType};

/// Which input tuple an attribute reference resolves against.
///
/// Unary operators (selection, projection, aggregation input expressions)
/// evaluate against a single tuple — always [`Side::Left`]. Binary operators
/// (join predicates, and the Cayuga `;`/`µ` edge predicates which reference
/// "attributes of both the incoming event as well as the instance", §4.2)
/// additionally see a right tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The left/instance tuple.
    Left,
    /// The right/event tuple.
    Right,
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Left => write!(f, "l"),
            Side::Right => write!(f, "r"),
        }
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (int/int is integer division; by-zero is NULL).
    Div,
    /// Remainder (NULL except for int/int with nonzero divisor).
    Rem,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Rem => "%",
        };
        write!(f, "{s}")
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Attribute reference by position within the `side` tuple.
    Col {
        /// Which input tuple.
        side: Side,
        /// Attribute position.
        index: usize,
    },
    /// The timestamp of the `side` tuple (exposed as an `Int`).
    Ts(Side),
    /// A literal constant.
    Lit(Value),
    /// Binary arithmetic.
    Bin {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Arithmetic negation.
    Neg(Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // add/sub/mul/div are AST builders
                                         // (they construct expression nodes), not arithmetic on `Expr` values.
impl Expr {
    /// Left-side attribute reference.
    pub fn col(index: usize) -> Expr {
        Expr::Col {
            side: Side::Left,
            index,
        }
    }

    /// Right-side attribute reference.
    pub fn rcol(index: usize) -> Expr {
        Expr::Col {
            side: Side::Right,
            index,
        }
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self + other`.
    pub fn add(self, other: Expr) -> Expr {
        Expr::Bin {
            op: ArithOp::Add,
            lhs: Box::new(self),
            rhs: Box::new(other),
        }
    }

    /// `self - other`.
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Bin {
            op: ArithOp::Sub,
            lhs: Box::new(self),
            rhs: Box::new(other),
        }
    }

    /// `self * other`.
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Bin {
            op: ArithOp::Mul,
            lhs: Box::new(self),
            rhs: Box::new(other),
        }
    }

    /// `self / other`.
    pub fn div(self, other: Expr) -> Expr {
        Expr::Bin {
            op: ArithOp::Div,
            lhs: Box::new(self),
            rhs: Box::new(other),
        }
    }

    /// Evaluates against an evaluation context.
    pub fn eval(&self, ctx: &EvalCtx<'_>) -> Value {
        match self {
            Expr::Col { side, index } => match ctx.tuple(*side) {
                Some(t) => t.value(*index).cloned().unwrap_or(Value::Null),
                None => Value::Null,
            },
            Expr::Ts(side) => match ctx.tuple(*side) {
                Some(t) => Value::Int(t.ts as i64),
                None => Value::Null,
            },
            Expr::Lit(v) => v.clone(),
            Expr::Bin { op, lhs, rhs } => {
                let l = lhs.eval(ctx);
                let r = rhs.eval(ctx);
                match op {
                    ArithOp::Add => l.add(&r),
                    ArithOp::Sub => l.sub(&r),
                    ArithOp::Mul => l.mul(&r),
                    ArithOp::Div => l.div(&r),
                    ArithOp::Rem => l.rem(&r),
                }
            }
            Expr::Neg(e) => Value::Int(0).sub(&e.eval(ctx)),
        }
    }

    /// Static type of the expression given input schemas, or an error for
    /// out-of-range column references.
    pub fn infer_type(&self, left: &Schema, right: Option<&Schema>) -> Result<ValueType> {
        match self {
            Expr::Col { side, index } => {
                let schema = match side {
                    Side::Left => left,
                    Side::Right => right
                        .ok_or_else(|| RumorError::expr("right-side column in unary context"))?,
                };
                schema
                    .field(*index)
                    .map(|f| f.ty)
                    .ok_or_else(|| RumorError::expr(format!("column {index} out of range")))
            }
            Expr::Ts(side) => {
                if *side == Side::Right && right.is_none() {
                    return Err(RumorError::expr("right-side ts in unary context"));
                }
                Ok(ValueType::Int)
            }
            Expr::Lit(v) => match v {
                Value::Int(_) => Ok(ValueType::Int),
                Value::Float(_) => Ok(ValueType::Float),
                Value::Bool(_) => Ok(ValueType::Bool),
                Value::Str(_) => Ok(ValueType::Str),
                Value::Null => Ok(ValueType::Int),
            },
            Expr::Bin { op, lhs, rhs } => {
                let lt = lhs.infer_type(left, right)?;
                let rt = rhs.infer_type(left, right)?;
                match (lt, rt) {
                    (ValueType::Int, ValueType::Int) => Ok(ValueType::Int),
                    (ValueType::Int | ValueType::Float, ValueType::Int | ValueType::Float) => {
                        Ok(ValueType::Float)
                    }
                    _ => Err(RumorError::expr(format!(
                        "arithmetic `{op}` on non-numeric operands {lt}/{rt}"
                    ))),
                }
            }
            Expr::Neg(e) => {
                let t = e.infer_type(left, right)?;
                match t {
                    ValueType::Int | ValueType::Float => Ok(t),
                    _ => Err(RumorError::expr("negation of non-numeric operand")),
                }
            }
        }
    }

    /// True if the expression references the given side.
    pub fn references(&self, side: Side) -> bool {
        match self {
            Expr::Col { side: s, .. } | Expr::Ts(s) => *s == side,
            Expr::Lit(_) => false,
            Expr::Bin { lhs, rhs, .. } => lhs.references(side) || rhs.references(side),
            Expr::Neg(e) => e.references(side),
        }
    }

    /// Rewrites every column/ts reference on `side` by shifting its index,
    /// used when embedding an expression into a concatenated schema.
    pub fn shift_side(&self, side: Side, offset: usize, new_side: Side) -> Expr {
        match self {
            Expr::Col { side: s, index } if *s == side => Expr::Col {
                side: new_side,
                index: index + offset,
            },
            Expr::Ts(s) if *s == side => Expr::Ts(new_side),
            Expr::Col { .. } | Expr::Ts(_) | Expr::Lit(_) => self.clone(),
            Expr::Bin { op, lhs, rhs } => Expr::Bin {
                op: *op,
                lhs: Box::new(lhs.shift_side(side, offset, new_side)),
                rhs: Box::new(rhs.shift_side(side, offset, new_side)),
            },
            Expr::Neg(e) => Expr::Neg(Box::new(e.shift_side(side, offset, new_side))),
        }
    }
}

// Structural equality: `PartialEq` is derived; float literals use IEEE
// equality, which is total on the values that can appear in query text.
// `Eq` is asserted so definitions can key hash maps during rule matching.
impl Eq for Expr {}

impl Hash for Expr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Expr::Col { side, index } => {
                0u8.hash(state);
                side.hash(state);
                index.hash(state);
            }
            Expr::Ts(side) => {
                1u8.hash(state);
                side.hash(state);
            }
            Expr::Lit(v) => {
                2u8.hash(state);
                v.group_key().hash(state);
            }
            Expr::Bin { op, lhs, rhs } => {
                3u8.hash(state);
                op.hash(state);
                lhs.hash(state);
                rhs.hash(state);
            }
            Expr::Neg(e) => {
                4u8.hash(state);
                e.hash(state);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col { side, index } => write!(f, "{side}.a{index}"),
            Expr::Ts(side) => write!(f, "{side}.ts"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Bin { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::Neg(e) => write!(f, "(-{e})"),
        }
    }
}

/// Evaluation context: a left tuple and, for binary operators, a right tuple.
#[derive(Debug, Clone, Copy)]
pub struct EvalCtx<'a> {
    left: &'a Tuple,
    right: Option<&'a Tuple>,
}

impl<'a> EvalCtx<'a> {
    /// Unary context.
    pub fn unary(left: &'a Tuple) -> Self {
        EvalCtx { left, right: None }
    }

    /// Binary context (instance/event, or join left/right).
    pub fn binary(left: &'a Tuple, right: &'a Tuple) -> Self {
        EvalCtx {
            left,
            right: Some(right),
        }
    }

    /// The tuple for a side, if present.
    pub fn tuple(&self, side: Side) -> Option<&'a Tuple> {
        match side {
            Side::Left => Some(self.left),
            Side::Right => self.right,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(e: &Expr) -> u64 {
        let mut s = DefaultHasher::new();
        e.hash(&mut s);
        s.finish()
    }

    #[test]
    fn eval_columns_and_literals() {
        let t = Tuple::ints(3, &[10, 20]);
        let ctx = EvalCtx::unary(&t);
        assert_eq!(Expr::col(1).eval(&ctx), Value::Int(20));
        assert_eq!(Expr::lit(5i64).eval(&ctx), Value::Int(5));
        assert_eq!(Expr::Ts(Side::Left).eval(&ctx), Value::Int(3));
        // Out-of-range column is NULL, missing right side is NULL.
        assert_eq!(Expr::col(9).eval(&ctx), Value::Null);
        assert_eq!(Expr::rcol(0).eval(&ctx), Value::Null);
    }

    #[test]
    fn eval_binary_context() {
        let l = Tuple::ints(1, &[10]);
        let r = Tuple::ints(2, &[20]);
        let ctx = EvalCtx::binary(&l, &r);
        assert_eq!(Expr::col(0).eval(&ctx), Value::Int(10));
        assert_eq!(Expr::rcol(0).eval(&ctx), Value::Int(20));
        assert_eq!(Expr::col(0).add(Expr::rcol(0)).eval(&ctx), Value::Int(30));
    }

    #[test]
    fn eval_arithmetic() {
        let t = Tuple::ints(0, &[7]);
        let ctx = EvalCtx::unary(&t);
        assert_eq!(Expr::col(0).mul(Expr::lit(3i64)).eval(&ctx), Value::Int(21));
        assert_eq!(Expr::col(0).div(Expr::lit(2i64)).eval(&ctx), Value::Int(3));
        assert_eq!(Expr::Neg(Box::new(Expr::col(0))).eval(&ctx), Value::Int(-7));
    }

    #[test]
    fn infer_types() {
        let s = Schema::ints(2);
        assert_eq!(Expr::col(0).infer_type(&s, None).unwrap(), ValueType::Int);
        assert_eq!(
            Expr::col(0)
                .add(Expr::lit(1.5f64))
                .infer_type(&s, None)
                .unwrap(),
            ValueType::Float
        );
        assert!(Expr::col(5).infer_type(&s, None).is_err());
        assert!(Expr::rcol(0).infer_type(&s, None).is_err());
        assert_eq!(
            Expr::rcol(0).infer_type(&s, Some(&s)).unwrap(),
            ValueType::Int
        );
        assert!(Expr::lit("x")
            .add(Expr::lit(1i64))
            .infer_type(&s, None)
            .is_err());
    }

    #[test]
    fn structural_hash_eq() {
        let a = Expr::col(1).add(Expr::lit(5i64));
        let b = Expr::col(1).add(Expr::lit(5i64));
        let c = Expr::col(1).add(Expr::lit(6i64));
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
        assert_ne!(a, c);
    }

    #[test]
    fn references_sides() {
        let e = Expr::col(0).add(Expr::rcol(1));
        assert!(e.references(Side::Left));
        assert!(e.references(Side::Right));
        assert!(!Expr::lit(1i64).references(Side::Left));
        assert!(Expr::Ts(Side::Right).references(Side::Right));
    }

    #[test]
    fn shift_side_rewrites_references() {
        // Embed `r.a1` into a concatenated schema where the right tuple
        // starts at offset 3 of the left side.
        let e = Expr::col(0).add(Expr::rcol(1));
        let shifted = e.shift_side(Side::Right, 3, Side::Left);
        assert_eq!(shifted, Expr::col(0).add(Expr::col(4)));
    }

    #[test]
    fn display() {
        let e = Expr::col(0).add(Expr::lit(2i64));
        assert_eq!(e.to_string(), "(l.a0 + 2)");
        assert_eq!(Expr::Ts(Side::Right).to_string(), "r.ts");
    }
}
