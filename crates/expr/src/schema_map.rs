//! Schema map functions (the paper's `F` on automaton edges, §4.2) — the
//! expressive SQL-SELECT-clause projection operator `π` of RUMOR plans.

use std::fmt;

use rumor_types::{Field, Result, Schema, Tuple};

use crate::expr::{EvalCtx, Expr, Side};

/// A named output expression of a schema map.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NamedExpr {
    /// Output attribute name.
    pub name: String,
    /// Defining expression.
    pub expr: Expr,
}

impl NamedExpr {
    /// Creates a named expression.
    pub fn new(name: impl Into<String>, expr: Expr) -> Self {
        NamedExpr {
            name: name.into(),
            expr,
        }
    }
}

/// A schema map: renames, drops, reorders, and computes attributes.
///
/// "A schema map function can rename and project attributes, as well as
/// introducing new attributes via simple arithmetic computation [...]. It is
/// similar to a SQL projection operator (which implements the SQL SELECT
/// clause)." (§4.2)
///
/// Unary contexts (a plan `π`) evaluate against the left tuple; binary
/// contexts (forward/rebind edge maps applied to the concatenation of an
/// instance and an event) also see the right tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SchemaMap {
    /// Output attributes in order.
    pub outputs: Vec<NamedExpr>,
}

impl SchemaMap {
    /// Creates a schema map from named expressions.
    pub fn new(outputs: Vec<NamedExpr>) -> Self {
        SchemaMap { outputs }
    }

    /// The identity map for a unary input with `n` attributes named
    /// `a0..a{n-1}`.
    pub fn identity(n: usize) -> Self {
        SchemaMap {
            outputs: (0..n)
                .map(|i| NamedExpr::new(format!("a{i}"), Expr::col(i)))
                .collect(),
        }
    }

    /// Identity map that preserves the names of `schema`.
    pub fn identity_of(schema: &Schema) -> Self {
        SchemaMap {
            outputs: schema
                .fields()
                .iter()
                .enumerate()
                .map(|(i, f)| NamedExpr::new(f.name.clone(), Expr::col(i)))
                .collect(),
        }
    }

    /// The map that concatenates left and right tuples — the default
    /// behaviour of the `;` operator's forward edge.
    pub fn concat(left: &Schema, right: &Schema) -> Self {
        let out_schema = left.concat(right);
        let mut outputs = Vec::with_capacity(out_schema.len());
        for (i, f) in out_schema.fields().iter().enumerate() {
            let expr = if i < left.len() {
                Expr::col(i)
            } else {
                Expr::rcol(i - left.len())
            };
            outputs.push(NamedExpr::new(f.name.clone(), expr));
        }
        SchemaMap { outputs }
    }

    /// Number of output attributes.
    pub fn arity(&self) -> usize {
        self.outputs.len()
    }

    /// Whether this is an identity passthrough of the left input (used to
    /// skip no-op projections during plan construction).
    pub fn is_identity_for(&self, schema: &Schema) -> bool {
        self.outputs.len() == schema.len()
            && self.outputs.iter().enumerate().all(|(i, ne)| {
                ne.expr
                    == Expr::Col {
                        side: Side::Left,
                        index: i,
                    }
                    && schema.field(i).is_some_and(|f| f.name == ne.name)
            })
    }

    /// Applies the map to produce the output value row.
    pub fn apply(&self, ctx: &EvalCtx<'_>) -> Vec<rumor_types::Value> {
        self.outputs.iter().map(|ne| ne.expr.eval(ctx)).collect()
    }

    /// Applies to a unary input tuple, keeping its timestamp.
    pub fn apply_unary(&self, tuple: &Tuple) -> Tuple {
        let ctx = EvalCtx::unary(tuple);
        tuple.with_values(self.apply(&ctx))
    }

    /// Applies to a binary (instance, event) pair; the output carries the
    /// event's (right) timestamp, matching Cayuga edge semantics.
    pub fn apply_binary(&self, left: &Tuple, right: &Tuple) -> Tuple {
        let ctx = EvalCtx::binary(left, right);
        Tuple::new(right.ts, self.apply(&ctx))
    }

    /// Infers the output schema; errors on out-of-range references or
    /// duplicate output names.
    pub fn output_schema(&self, left: &Schema, right: Option<&Schema>) -> Result<Schema> {
        let mut fields = Vec::with_capacity(self.outputs.len());
        for ne in &self.outputs {
            let ty = ne.expr.infer_type(left, right)?;
            fields.push(Field::new(ne.name.clone(), ty));
        }
        Schema::new(fields)
    }
}

impl fmt::Display for SchemaMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "π[")?;
        for (i, ne) in self.outputs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} := {}", ne.name, ne.expr)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_types::{Value, ValueType};

    #[test]
    fn identity_passthrough() {
        let m = SchemaMap::identity(3);
        let t = Tuple::ints(7, &[1, 2, 3]);
        let out = m.apply_unary(&t);
        assert_eq!(out.ts, 7);
        assert_eq!(out.values(), t.values());
        assert!(m.is_identity_for(&Schema::ints(3)));
        assert!(!m.is_identity_for(&Schema::ints(2)));
    }

    #[test]
    fn identity_of_preserves_names() {
        let s = Schema::new(vec![
            Field::new("pid", ValueType::Int),
            Field::new("load", ValueType::Float),
        ])
        .unwrap();
        let m = SchemaMap::identity_of(&s);
        assert!(m.is_identity_for(&s));
        assert_eq!(m.output_schema(&s, None).unwrap(), s);
    }

    #[test]
    fn computed_attribute() {
        let m = SchemaMap::new(vec![
            NamedExpr::new("double", Expr::col(0).mul(Expr::lit(2i64))),
            NamedExpr::new("orig", Expr::col(0)),
        ]);
        let t = Tuple::ints(0, &[21]);
        let out = m.apply_unary(&t);
        assert_eq!(out.values(), &[Value::Int(42), Value::Int(21)]);
        let schema = m.output_schema(&Schema::ints(1), None).unwrap();
        assert_eq!(schema.index_of("double"), Some(0));
        assert_eq!(schema.field(0).unwrap().ty, ValueType::Int);
    }

    #[test]
    fn concat_map_matches_tuple_concat() {
        let ls = Schema::ints(2);
        let rs = Schema::ints(1);
        let m = SchemaMap::concat(&ls, &rs);
        let l = Tuple::ints(1, &[10, 20]);
        let r = Tuple::ints(5, &[30]);
        let out = m.apply_binary(&l, &r);
        assert_eq!(out, l.concat(&r));
        let schema = m.output_schema(&ls, Some(&rs)).unwrap();
        assert_eq!(schema.len(), 3);
        assert_eq!(schema.index_of("r.a0"), Some(2));
    }

    #[test]
    fn binary_output_takes_right_timestamp() {
        let m = SchemaMap::new(vec![NamedExpr::new("x", Expr::rcol(0))]);
        let l = Tuple::ints(1, &[0]);
        let r = Tuple::ints(9, &[5]);
        assert_eq!(m.apply_binary(&l, &r).ts, 9);
    }

    #[test]
    fn output_schema_rejects_bad_refs_and_dups() {
        let m = SchemaMap::new(vec![NamedExpr::new("x", Expr::col(5))]);
        assert!(m.output_schema(&Schema::ints(2), None).is_err());
        let dup = SchemaMap::new(vec![
            NamedExpr::new("x", Expr::col(0)),
            NamedExpr::new("x", Expr::col(1)),
        ]);
        assert!(dup.output_schema(&Schema::ints(2), None).is_err());
    }

    #[test]
    fn display() {
        let m = SchemaMap::new(vec![NamedExpr::new("x", Expr::col(0))]);
        assert_eq!(m.to_string(), "π[x := l.a0]");
    }

    #[test]
    fn structural_equality() {
        let a = SchemaMap::identity(2);
        let b = SchemaMap::identity(2);
        let c = SchemaMap::identity(3);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
