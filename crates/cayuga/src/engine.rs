//! The Cayuga-style automaton engine — the event-engine baseline the paper
//! compares RUMOR against in §5.2.
//!
//! MQO techniques implemented, mirroring §4.3:
//!
//! * **Prefix state merging**: automata are inserted into a shared forest;
//!   states reachable by identical edge chains are merged, and identical
//!   final edges complete multiple queries at once (the automaton
//!   counterpart of common subexpression elimination).
//! * **FR index**: per state, forward/rebind edges whose predicates compare
//!   an event attribute with a constant are hash-indexed, so an event
//!   retrieves its satisfied edges by lookup instead of scanning all edges.
//! * **AN index**: an event only visits states that subscribe to its stream
//!   and are *active* (start states, or states holding live instances).
//! * **AI index**: per state, instances are hash-indexed by the
//!   instance-side attributes of the edge predicates' equi-join conjuncts,
//!   so an event probes a bucket instead of scanning all instances.
//!
//! Sequence consumption semantics follow §5.2: an instance is consumed per
//! forward edge on that edge's first match; it stays while the filter edge
//! allows and dies when all forward edges are consumed or no edge applies.

use std::collections::HashMap;

use rumor_expr::{EvalCtx, Predicate, SchemaMap};
use rumor_types::{Membership, QueryId, Timestamp, Tuple, Value, ValueKey};

use crate::automaton::{Automaton, StateId};

/// Runtime forward edge (possibly completing several merged queries).
///
/// Final edges with identical predicate and map merge across queries even
/// when their duration windows differ (the \[12\]-style sharing RUMOR gets
/// from per-member windows): `dur` is the maximum, and each completion
/// carries its own window so emissions are filtered by match age.
#[derive(Debug, Clone)]
struct RtEdge {
    predicate: Predicate,
    dur: u64,
    map: SchemaMap,
    target: Option<StateId>,
    /// `(query, duration)` completed when this edge reaches a final target.
    queries: Vec<(QueryId, u64)>,
}

#[derive(Debug, Clone)]
struct RtRebind {
    predicate: Predicate,
    /// Maximum duration across the merged queries.
    dur: u64,
    map: SchemaMap,
    /// `(query, duration)` notified on each rebind within its window.
    queries: Vec<(QueryId, u64)>,
}

#[derive(Debug, Clone)]
struct Instance {
    start_ts: Timestamp,
    tuple: Tuple,
    /// Forward edges already consumed by this instance.
    consumed: Membership,
}

#[derive(Debug, Default)]
struct InstanceSet {
    /// Keyed storage (AI index) or a single scan bucket under key `vec![]`.
    buckets: HashMap<Vec<ValueKey>, Vec<Instance>>,
    live: usize,
}

struct RtState {
    input: String,
    filter: Predicate,
    rebind: Option<RtRebind>,
    forward: Vec<RtEdge>,
    is_start: bool,
    max_dur: u64,
    /// FR index: attr → constant → forward-edge indices (+ per-edge residual).
    fr_index: Vec<(usize, HashMap<ValueKey, Vec<u32>>)>,
    fr_residuals: Vec<Predicate>,
    fr_scan: Vec<u32>,
    index_dirty: bool,
    /// AI index: (instance attr, event attr) pairs; empty = scan.
    ai_keys: Vec<(usize, usize)>,
    instances: InstanceSet,
    events_since_sweep: u32,
}

impl RtState {
    fn new(input: String, filter: Predicate, rebind: Option<RtRebind>, is_start: bool) -> Self {
        RtState {
            input,
            filter,
            rebind,
            forward: Vec::new(),
            is_start,
            max_dur: 0,
            fr_index: Vec::new(),
            fr_residuals: Vec::new(),
            fr_scan: Vec::new(),
            index_dirty: true,
            ai_keys: Vec::new(),
            instances: InstanceSet::default(),
            events_since_sweep: 0,
        }
    }

    fn rebind_def_matches(&self, other: &Option<RtRebind>) -> bool {
        match (&self.rebind, other) {
            (None, None) => true,
            // Durations merge (per-query windows), so only the formula
            // identity matters for state merging.
            (Some(a), Some(b)) => a.predicate == b.predicate && a.map == b.map,
            _ => false,
        }
    }

    /// Rebuilds the FR index (constant predicates of forward edges) and the
    /// AI key set (equi conjuncts shared by all pair-wise edge predicates).
    fn rebuild_indexes(&mut self) {
        self.fr_index.clear();
        self.fr_scan.clear();
        self.fr_residuals = vec![Predicate::True; self.forward.len()];
        let mut by_attr: HashMap<usize, HashMap<ValueKey, Vec<u32>>> = HashMap::new();
        for (i, edge) in self.forward.iter().enumerate() {
            // On start states edge predicates are unary over the event
            // (left side); on inner states they are pairwise, so constant
            // conjuncts live on the right (event) side. Normalize to a
            // left-side predicate for index extraction.
            let pred = if self.is_start {
                edge.predicate.clone()
            } else {
                event_only_part(&edge.predicate)
            };
            match index_split_left(&pred) {
                Some((attr, key, residual)) => {
                    by_attr
                        .entry(attr)
                        .or_default()
                        .entry(key)
                        .or_default()
                        .push(i as u32);
                    if self.is_start {
                        self.fr_residuals[i] = residual;
                    } else {
                        // Residual = full predicate minus nothing (we only
                        // used the index to find candidates; re-check all).
                        self.fr_residuals[i] = edge.predicate.clone();
                    }
                }
                None => self.fr_scan.push(i as u32),
            }
        }
        self.fr_index = by_attr.into_iter().collect();
        self.fr_index.sort_by_key(|(a, _)| *a);

        // AI keys: intersection of the equi-key sets of every pairwise
        // predicate (forward and rebind) — keys every edge agrees on.
        let mut key_sets: Vec<Vec<(usize, usize)>> = Vec::new();
        if !self.is_start {
            for edge in &self.forward {
                key_sets.push(edge.predicate.split_equi_join().0);
            }
            if let Some(r) = &self.rebind {
                key_sets.push(r.predicate.split_equi_join().0);
            }
        }
        self.ai_keys = match key_sets.split_first() {
            Some((first, rest)) => first
                .iter()
                .copied()
                .filter(|k| rest.iter().all(|s| s.contains(k)))
                .collect(),
            None => Vec::new(),
        };
        // Keyed iteration must not skip instances the filter could delete:
        // sound iff the filter passes every non-key event.
        if !self.ai_keys.is_empty() && !filter_safe_for_keys(&self.filter, &self.ai_keys) {
            self.ai_keys.clear();
        }
        self.max_dur = self
            .forward
            .iter()
            .map(|e| e.dur)
            .chain(self.rebind.iter().map(|r| r.dur))
            .max()
            .unwrap_or(0);
        self.index_dirty = false;
    }

    fn instance_key(&self, tuple: &Tuple) -> Vec<ValueKey> {
        self.ai_keys
            .iter()
            .map(|&(l, _)| tuple.value(l).cloned().unwrap_or(Value::Null).group_key())
            .collect()
    }

    fn event_key(&self, tuple: &Tuple) -> Vec<ValueKey> {
        self.ai_keys
            .iter()
            .map(|&(_, r)| tuple.value(r).cloned().unwrap_or(Value::Null).group_key())
            .collect()
    }
}

/// `attr = const` extraction over the left side (see `rumor-ops`' predicate
/// index); duplicated here because the baseline engine must not depend on
/// the RUMOR operator crate.
fn index_split_left(pred: &Predicate) -> Option<(usize, ValueKey, Predicate)> {
    if let Some(eq) = pred.as_eq_const() {
        return Some((eq.attr, eq.value.group_key(), Predicate::True));
    }
    if let Predicate::And(conjuncts) = pred {
        for (i, c) in conjuncts.iter().enumerate() {
            if let Some(eq) = c.as_eq_const() {
                let mut rest = conjuncts.clone();
                rest.remove(i);
                return Some((eq.attr, eq.value.group_key(), Predicate::and(rest)));
            }
        }
    }
    None
}

/// Extracts the event-only conjuncts of a pairwise predicate, rewritten to
/// the left side (for FR indexing of inner states).
fn event_only_part(pred: &Predicate) -> Predicate {
    use rumor_expr::Side;
    let conjuncts: Vec<Predicate> = match pred {
        Predicate::And(ps) => ps.clone(),
        p => vec![p.clone()],
    };
    Predicate::and(
        conjuncts
            .into_iter()
            .filter(|c| c.references(Side::Right) && !c.references(Side::Left))
            .map(|c| c.shift_side(Side::Right, 0, Side::Left))
            .collect(),
    )
}

fn filter_safe_for_keys(filter: &Predicate, keys: &[(usize, usize)]) -> bool {
    use rumor_expr::{CmpOp, Expr, Side};
    match filter {
        Predicate::True => true,
        Predicate::Cmp {
            op: CmpOp::Ne,
            lhs,
            rhs,
        } if keys.len() == 1 => {
            let (l, r) = keys[0];
            matches!(
                (lhs, rhs),
                (
                    Expr::Col { side: Side::Left, index: li },
                    Expr::Col { side: Side::Right, index: ri },
                ) if *li == l && *ri == r
            ) || matches!(
                (lhs, rhs),
                (
                    Expr::Col { side: Side::Right, index: ri },
                    Expr::Col { side: Side::Left, index: li },
                ) if *li == l && *ri == r
            )
        }
        _ => false,
    }
}

/// Per-stream Active-Node index (§4.3): maps an event to the candidate
/// states that could react to it. States whose edges are all hash-indexable
/// event-constant predicates (and whose filter edge is `True`, so skipping
/// them can never miss a deletion) are reached only via constant lookup;
/// every other state is always visited when active.
#[derive(Debug, Default)]
struct StreamIndex {
    /// States that must be visited for every event of the stream.
    always: Vec<StateId>,
    /// attr → constant → states with a matching indexable edge.
    indexed: Vec<(usize, HashMap<ValueKey, Vec<StateId>>)>,
    dirty: bool,
}

/// The Cayuga engine: a merged forest of automata.
pub struct CayugaEngine {
    states: Vec<RtState>,
    /// AN index, level 1: stream name → subscribed states.
    by_stream: HashMap<String, Vec<StateId>>,
    /// AN index, level 2: per-stream candidate-state index.
    stream_index: HashMap<String, StreamIndex>,
    /// Merged start state per stream.
    start_of: HashMap<String, StateId>,
    /// Total events processed.
    pub events_in: u64,
}

impl Default for CayugaEngine {
    fn default() -> Self {
        CayugaEngine::new()
    }
}

impl CayugaEngine {
    /// Empty engine.
    pub fn new() -> Self {
        CayugaEngine {
            states: Vec::new(),
            by_stream: HashMap::new(),
            stream_index: HashMap::new(),
            start_of: HashMap::new(),
            events_in: 0,
        }
    }

    /// Number of states in the merged forest.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Total live instances across states.
    pub fn instance_count(&self) -> usize {
        self.states.iter().map(|s| s.instances.live).sum()
    }

    fn new_state(
        &mut self,
        input: String,
        filter: Predicate,
        rebind: Option<RtRebind>,
        is_start: bool,
    ) -> StateId {
        let id = self.states.len();
        self.by_stream.entry(input.clone()).or_default().push(id);
        self.stream_index.entry(input.clone()).or_default().dirty = true;
        self.states
            .push(RtState::new(input, filter, rebind, is_start));
        id
    }

    /// Rebuilds one stream's AN index from its states' edge predicates.
    fn rebuild_stream_index(&mut self, stream: &str) {
        let Some(state_ids) = self.by_stream.get(stream) else {
            return;
        };
        let state_ids = state_ids.clone();
        let mut always = Vec::new();
        let mut by_attr: HashMap<usize, HashMap<ValueKey, Vec<StateId>>> = HashMap::new();
        for &sid in &state_ids {
            if self.states[sid].index_dirty {
                self.states[sid].rebuild_indexes();
            }
            let st = &self.states[sid];
            // A state is skippable-by-index only if missing an edge can
            // never change its instances: filter == True (nothing deleted
            // on non-match), no rebind edge, and every forward edge has an
            // indexable event-constant conjunct.
            let skippable = st.rebind.is_none()
                && (st.is_start || st.filter == Predicate::True)
                && st.fr_scan.is_empty()
                && !st.forward.is_empty();
            if !skippable {
                always.push(sid);
                continue;
            }
            for (attr, map) in &st.fr_index {
                for key in map.keys() {
                    let states = by_attr
                        .entry(*attr)
                        .or_default()
                        .entry(key.clone())
                        .or_default();
                    if !states.contains(&sid) {
                        states.push(sid);
                    }
                }
            }
        }
        let mut indexed: Vec<(usize, HashMap<ValueKey, Vec<StateId>>)> =
            by_attr.into_iter().collect();
        indexed.sort_by_key(|(a, _)| *a);
        let entry = self.stream_index.entry(stream.to_string()).or_default();
        entry.always = always;
        entry.indexed = indexed;
        entry.dirty = false;
    }

    /// Adds an automaton to the forest with prefix state merging (§4.3).
    pub fn add_automaton(&mut self, automaton: &Automaton) {
        let mut mapping: HashMap<StateId, StateId> = HashMap::new();
        // Insert states in topological (index) order; the start is index 0.
        for (aid, astate) in automaton.states.iter().enumerate() {
            let engine_id = if astate.is_start {
                match self.start_of.get(&astate.input) {
                    Some(&id) => id,
                    None => {
                        let id = self.new_state(astate.input.clone(), Predicate::False, None, true);
                        self.start_of.insert(astate.input.clone(), id);
                        id
                    }
                }
            } else {
                // Created on demand when the incoming edge is processed; a
                // non-start state unreachable from the start is dropped.
                match mapping.get(&aid) {
                    Some(&id) => id,
                    None => continue,
                }
            };
            mapping.insert(aid, engine_id);

            // Rebind edge: merge identical definitions, otherwise the state
            // must have been created fresh (see edge handling below).
            if let Some(rb) = &astate.rebind {
                let rt = RtRebind {
                    predicate: rb.predicate.clone(),
                    dur: rb.dur,
                    map: rb.map.clone(),
                    queries: rb.emit.map(|q| (q, rb.dur)).into_iter().collect(),
                };
                let state = &mut self.states[engine_id];
                match &mut state.rebind {
                    Some(existing)
                        if existing.predicate == rt.predicate && existing.map == rt.map =>
                    {
                        existing.dur = existing.dur.max(rt.dur);
                        for q in rt.queries {
                            if !existing.queries.contains(&q) {
                                existing.queries.push(q);
                            }
                        }
                    }
                    None => state.rebind = Some(rt),
                    Some(_) => {
                        // Incompatible rebind: this should have prevented
                        // state merging; keep both automata correct by
                        // leaving the existing rebind (callers construct
                        // automata via the builders, which cannot hit this).
                    }
                }
                self.states[engine_id].index_dirty = true;
            }

            // Forward edges.
            for (edge, query) in &astate.forward {
                let target_state = edge.target.map(|t| &automaton.states[t]);
                // Look for an existing identical edge whose target matches
                // the prefix-merge criteria.
                let mut reused = None;
                for (ei, existing) in self.states[engine_id].forward.iter().enumerate() {
                    if existing.predicate != edge.predicate || existing.map != edge.map {
                        continue;
                    }
                    // Interior edges must agree on duration (the moved
                    // instance is shared downstream); final edges merge
                    // across durations with per-query filtering.
                    if existing.target.is_some() && existing.dur != edge.dur {
                        continue;
                    }
                    match (existing.target, target_state) {
                        (None, None) => {
                            reused = Some((ei, None));
                            break;
                        }
                        (Some(tid), Some(tstate)) => {
                            let t = &self.states[tid];
                            let rt_rebind = tstate.rebind.as_ref().map(|rb| RtRebind {
                                predicate: rb.predicate.clone(),
                                dur: rb.dur,
                                map: rb.map.clone(),
                                queries: Vec::new(),
                            });
                            if t.input == tstate.input
                                && t.filter == tstate.filter
                                && t.rebind_def_matches(&rt_rebind)
                            {
                                reused = Some((ei, Some(tid)));
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                match reused {
                    Some((ei, target)) => {
                        let e = &mut self.states[engine_id].forward[ei];
                        e.dur = e.dur.max(edge.dur);
                        if let Some(q) = query {
                            if !e.queries.iter().any(|(qq, _)| qq == q) {
                                e.queries.push((*q, edge.dur));
                            }
                        }
                        if let (Some(tid), Some(t)) = (target, edge.target) {
                            mapping.insert(t, tid);
                        }
                    }
                    None => {
                        let target_id = match (edge.target, target_state) {
                            (Some(t), Some(tstate)) => {
                                let rebind = tstate.rebind.as_ref().map(|rb| RtRebind {
                                    predicate: rb.predicate.clone(),
                                    dur: rb.dur,
                                    map: rb.map.clone(),
                                    queries: rb.emit.map(|q| (q, rb.dur)).into_iter().collect(),
                                });
                                let id = self.new_state(
                                    tstate.input.clone(),
                                    tstate.filter.clone(),
                                    rebind,
                                    false,
                                );
                                mapping.insert(t, id);
                                Some(id)
                            }
                            _ => None,
                        };
                        let state = &mut self.states[engine_id];
                        state.forward.push(RtEdge {
                            predicate: edge.predicate.clone(),
                            dur: edge.dur,
                            map: edge.map.clone(),
                            target: target_id,
                            queries: query.iter().map(|&q| (q, edge.dur)).collect(),
                        });
                        state.index_dirty = true;
                    }
                }
            }
            self.states[engine_id].index_dirty = true;
        }
    }

    /// Processes one event, reporting results through `sink`.
    pub fn on_event(&mut self, stream: &str, tuple: &Tuple, sink: &mut dyn FnMut(QueryId, &Tuple)) {
        self.events_in += 1;
        if !self.by_stream.contains_key(stream) {
            return;
        }
        if self.stream_index.get(stream).is_none_or(|i| i.dirty) {
            self.rebuild_stream_index(stream);
        }
        // AN index probe: always-visited states plus constant-index hits.
        let index = &self.stream_index[stream];
        let mut candidates: Vec<StateId> = index.always.clone();
        for (attr, map) in &index.indexed {
            if let Some(v) = tuple.value(*attr) {
                if let Some(states) = map.get(&v.group_key()) {
                    candidates.extend_from_slice(states);
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        // Moves emit instances into downstream states *after* this event is
        // fully processed (an event never interacts with the instances it
        // creates — timestamps are strictly interleaved across streams).
        let mut moves: Vec<(StateId, Instance)> = Vec::new();
        for sid in candidates {
            if self.states[sid].index_dirty {
                self.states[sid].rebuild_indexes();
            }
            if self.states[sid].is_start {
                self.process_start(sid, tuple, &mut moves, sink);
            } else if self.states[sid].instances.live > 0 {
                // AN index level 1: inactive states are skipped entirely.
                self.process_inner(sid, tuple, &mut moves, sink);
            }
        }
        for (target, inst) in moves {
            let state = &mut self.states[target];
            if state.index_dirty {
                state.rebuild_indexes();
            }
            let key = state.instance_key(&inst.tuple);
            state.instances.buckets.entry(key).or_default().push(inst);
            state.instances.live += 1;
        }
    }

    fn process_start(
        &mut self,
        sid: StateId,
        event: &Tuple,
        moves: &mut Vec<(StateId, Instance)>,
        sink: &mut dyn FnMut(QueryId, &Tuple),
    ) {
        let ctx = EvalCtx::unary(event);
        let state = &self.states[sid];
        let mut fired: Vec<u32> = Vec::new();
        for (attr, map) in &state.fr_index {
            if let Some(v) = event.value(*attr) {
                if let Some(edges) = map.get(&v.group_key()) {
                    for &e in edges {
                        if state.fr_residuals[e as usize].eval(&ctx) {
                            fired.push(e);
                        }
                    }
                }
            }
        }
        for &e in &state.fr_scan {
            if state.forward[e as usize].predicate.eval(&ctx) {
                fired.push(e);
            }
        }
        fired.sort_unstable();
        for e in fired {
            let edge = &state.forward[e as usize];
            let out = edge.map.apply_unary(event);
            match edge.target {
                Some(target) => moves.push((
                    target,
                    Instance {
                        start_ts: event.ts,
                        tuple: out,
                        consumed: Membership::empty(),
                    },
                )),
                None => {
                    for &(q, _) in &edge.queries {
                        sink(q, &out);
                    }
                }
            }
        }
    }

    fn process_inner(
        &mut self,
        sid: StateId,
        event: &Tuple,
        moves: &mut Vec<(StateId, Instance)>,
        sink: &mut dyn FnMut(QueryId, &Tuple),
    ) {
        let state = &mut self.states[sid];
        state.events_since_sweep += 1;
        let horizon = event.ts.saturating_sub(state.max_dur);
        if state.events_since_sweep >= 1024 {
            state.events_since_sweep = 0;
            for bucket in state.instances.buckets.values_mut() {
                let before = bucket.len();
                bucket.retain(|i| i.start_ts >= horizon);
                state.instances.live -= before - bucket.len();
            }
            state.instances.buckets.retain(|_, b| !b.is_empty());
        }

        // FR index probe, once per event: only edges whose event-constant
        // conjunct matches (plus unindexable edges) can fire on any instance.
        let mut edge_candidates: Vec<u32> = state.fr_scan.clone();
        for (attr, map) in &state.fr_index {
            if let Some(v) = event.value(*attr) {
                if let Some(edges) = map.get(&v.group_key()) {
                    edge_candidates.extend_from_slice(edges);
                }
            }
        }
        edge_candidates.sort_unstable();

        let keyed = !state.ai_keys.is_empty();
        let keys: Vec<Vec<ValueKey>> = if keyed {
            vec![state.event_key(event)]
        } else {
            state.instances.buckets.keys().cloned().collect()
        };
        for key in keys {
            let Some(mut bucket) = state.instances.buckets.remove(&key) else {
                continue;
            };
            let initial = bucket.len();
            let mut survivors: Vec<Instance> = Vec::with_capacity(initial);
            for mut inst in bucket.drain(..) {
                if inst.start_ts < horizon {
                    state.instances.live -= 1;
                    continue;
                }
                if inst.start_ts >= event.ts {
                    survivors.push(inst);
                    continue;
                }
                let age = event.ts - inst.start_ts;
                let ctx = EvalCtx::binary(&inst.tuple, event);
                let mut edge_applied = false;
                // Forward edges (per-edge consumption).
                for &ei in &edge_candidates {
                    let e = ei as usize;
                    let edge = &state.forward[e];
                    if inst.consumed.contains(e) || age > edge.dur {
                        continue;
                    }
                    if edge.predicate.eval(&ctx) {
                        edge_applied = true;
                        inst.consumed.insert(e);
                        let out = edge.map.apply_binary(&inst.tuple, event);
                        match edge.target {
                            Some(target) => moves.push((
                                target,
                                Instance {
                                    start_ts: event.ts,
                                    tuple: out,
                                    consumed: Membership::empty(),
                                },
                            )),
                            None => {
                                for &(q, dur) in &edge.queries {
                                    if age <= dur {
                                        sink(q, &out);
                                    }
                                }
                            }
                        }
                    }
                }
                // Rebind edge.
                let mut rebound: Option<Tuple> = None;
                if let Some(rb) = &state.rebind {
                    if age <= rb.dur && rb.predicate.eval(&ctx) {
                        edge_applied = true;
                        let out = rb.map.apply_binary(&inst.tuple, event);
                        for &(q, dur) in &rb.queries {
                            if age <= dur {
                                sink(q, &out);
                            }
                        }
                        rebound = Some(out);
                    }
                }
                let filter_holds = state.filter.eval(&ctx);
                let all_consumed = !state.forward.is_empty()
                    && inst.consumed.len() == state.forward.len()
                    && state.rebind.is_none();
                match rebound {
                    Some(out) => {
                        if filter_holds {
                            // Non-determinism: keep the unchanged copy too.
                            survivors.push(inst.clone());
                        }
                        let new_key_differs = keyed && state.instance_key(&out) != key;
                        let new_inst = Instance {
                            start_ts: inst.start_ts,
                            tuple: out,
                            consumed: inst.consumed,
                        };
                        if new_key_differs {
                            let k = state.instance_key(&new_inst.tuple);
                            state.instances.buckets.entry(k).or_default().push(new_inst);
                        } else {
                            survivors.push(new_inst);
                        }
                        if filter_holds {
                            state.instances.live += 1;
                        }
                    }
                    None => {
                        if (filter_holds || edge_applied) && !all_consumed {
                            survivors.push(inst);
                        } else {
                            state.instances.live -= 1;
                        }
                    }
                }
            }
            if !survivors.is_empty() {
                state.instances.buckets.insert(key, survivors);
            }
        }
    }

    /// Feeds an instance directly (used by tests).
    #[doc(hidden)]
    pub fn debug_state_instances(&self, sid: StateId) -> usize {
        self.states[sid].instances.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_expr::{CmpOp, Expr};
    use rumor_types::Schema;

    fn collect(engine: &mut CayugaEngine, events: &[(&str, Tuple)]) -> Vec<(QueryId, Tuple)> {
        let mut out = Vec::new();
        for (stream, tuple) in events {
            engine.on_event(stream, tuple, &mut |q, t| out.push((q, t.clone())));
        }
        out
    }

    fn seq_automaton(c: i64, dur: u64, q: u32) -> Automaton {
        let schema = Schema::ints(2);
        Automaton::sequence(
            "S",
            &schema,
            Predicate::attr_eq_const(0, c),
            "T",
            &schema,
            Predicate::cmp(CmpOp::Eq, Expr::rcol(1), Expr::lit(5i64)),
            dur,
            QueryId(q),
        )
    }

    #[test]
    fn sequence_matches_and_consumes() {
        let mut e = CayugaEngine::new();
        e.add_automaton(&seq_automaton(1, 10, 0));
        let results = collect(
            &mut e,
            &[
                ("S", Tuple::ints(0, &[1, 9])), // starts an instance
                ("T", Tuple::ints(1, &[0, 5])), // matches -> q0
                ("T", Tuple::ints(2, &[0, 5])), // instance consumed
            ],
        );
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, QueryId(0));
        assert_eq!(results[0].1, Tuple::ints(1, &[1, 9, 0, 5]));
    }

    #[test]
    fn duration_expiry() {
        let mut e = CayugaEngine::new();
        e.add_automaton(&seq_automaton(1, 3, 0));
        let results = collect(
            &mut e,
            &[
                ("S", Tuple::ints(0, &[1, 9])),
                ("T", Tuple::ints(10, &[0, 5])), // too late
            ],
        );
        assert!(results.is_empty());
    }

    #[test]
    fn prefix_merging_shares_start_state() {
        let mut e = CayugaEngine::new();
        for c in 0..5 {
            e.add_automaton(&seq_automaton(c, 10, c as u32));
        }
        // One shared start state + five middle states (θ1 differs).
        assert_eq!(e.state_count(), 6);

        // Two queries with identical θ1 but then identical match predicates
        // merge completely (CSE): the final edge completes both.
        let mut e2 = CayugaEngine::new();
        e2.add_automaton(&seq_automaton(1, 10, 0));
        e2.add_automaton(&seq_automaton(1, 10, 1));
        assert_eq!(e2.state_count(), 2, "full prefix merge");
        let results = collect(
            &mut e2,
            &[
                ("S", Tuple::ints(0, &[1, 9])),
                ("T", Tuple::ints(1, &[0, 5])),
            ],
        );
        assert_eq!(results.len(), 2, "both queries complete");
        assert_ne!(results[0].0, results[1].0);
    }

    #[test]
    fn fr_index_on_start_state() {
        let mut e = CayugaEngine::new();
        for c in 0..50 {
            e.add_automaton(&seq_automaton(c, 10, c as u32));
        }
        // Feed one S event: only the matching automaton starts an instance.
        let mut out = Vec::new();
        e.on_event("S", &Tuple::ints(0, &[7, 0]), &mut |q, t| {
            out.push((q, t.clone()))
        });
        let middle_instances: usize = (0..e.state_count())
            .map(|s| e.debug_state_instances(s))
            .sum();
        assert_eq!(middle_instances, 1, "FR index admits exactly one edge");
    }

    #[test]
    fn iterate_monotone_pattern() {
        let schema = Schema::ints(2);
        let a = Automaton::iterate(
            "S",
            &schema,
            Predicate::attr_eq_const(0, 7i64),
            "T",
            Predicate::cmp(CmpOp::Ne, Expr::col(0), Expr::rcol(0)),
            Predicate::and(vec![
                Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                Predicate::cmp(CmpOp::Gt, Expr::rcol(1), Expr::col(1)),
            ]),
            SchemaMap::new(vec![
                rumor_expr::NamedExpr::new("a0", Expr::col(0)),
                rumor_expr::NamedExpr::new("a1", Expr::rcol(1)),
            ]),
            100,
            QueryId(0),
        );
        let mut e = CayugaEngine::new();
        e.add_automaton(&a);
        let results = collect(
            &mut e,
            &[
                ("S", Tuple::ints(0, &[7, 10])),
                ("T", Tuple::ints(1, &[7, 15])), // rebind, emit
                ("T", Tuple::ints(2, &[8, 99])), // other key, filter
                ("T", Tuple::ints(3, &[7, 20])), // rebind, emit
                ("T", Tuple::ints(4, &[7, 1])),  // kills the pattern
                ("T", Tuple::ints(5, &[7, 50])), // nothing left
            ],
        );
        assert_eq!(
            results,
            vec![
                (QueryId(0), Tuple::ints(1, &[7, 15])),
                (QueryId(0), Tuple::ints(3, &[7, 20])),
            ]
        );
        assert_eq!(e.instance_count(), 0);
    }

    #[test]
    fn merged_final_edges_filter_by_per_query_duration() {
        // Two queries identical except duration: the merged final edge must
        // complete only the query whose window covers the match age.
        let schema = Schema::ints(2);
        let mk = |dur, q| {
            Automaton::sequence(
                "S",
                &schema,
                Predicate::attr_eq_const(0, 1i64),
                "T",
                &schema,
                Predicate::cmp(CmpOp::Eq, Expr::rcol(1), Expr::lit(5i64)),
                dur,
                QueryId(q),
            )
        };
        let mut e = CayugaEngine::new();
        e.add_automaton(&mk(2, 0));
        e.add_automaton(&mk(10, 1));
        assert_eq!(e.state_count(), 2, "states merge across durations");
        let results = collect(
            &mut e,
            &[
                ("S", Tuple::ints(0, &[1, 9])),
                ("T", Tuple::ints(5, &[0, 5])), // age 5: only q1's window covers
            ],
        );
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, QueryId(1));
    }

    #[test]
    fn merged_rebind_filters_by_per_query_duration() {
        let schema = Schema::ints(2);
        let mk = |dur, q| {
            Automaton::iterate(
                "S",
                &schema,
                Predicate::attr_eq_const(0, 7i64),
                "T",
                Predicate::cmp(CmpOp::Ne, Expr::col(0), Expr::rcol(0)),
                Predicate::and(vec![
                    Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
                    Predicate::cmp(CmpOp::Gt, Expr::rcol(1), Expr::col(1)),
                ]),
                SchemaMap::new(vec![
                    rumor_expr::NamedExpr::new("a0", Expr::col(0)),
                    rumor_expr::NamedExpr::new("a1", Expr::rcol(1)),
                ]),
                dur,
                QueryId(q),
            )
        };
        let mut e = CayugaEngine::new();
        e.add_automaton(&mk(3, 0));
        e.add_automaton(&mk(100, 1));
        assert_eq!(e.state_count(), 2, "µ states merge across durations");
        let results = collect(
            &mut e,
            &[
                ("S", Tuple::ints(0, &[7, 10])),
                ("T", Tuple::ints(2, &[7, 15])), // age 2: both emit
                ("T", Tuple::ints(8, &[7, 20])), // age 8: only q1 emits
            ],
        );
        let q0: Vec<_> = results.iter().filter(|(q, _)| *q == QueryId(0)).collect();
        let q1: Vec<_> = results.iter().filter(|(q, _)| *q == QueryId(1)).collect();
        assert_eq!(q0.len(), 1);
        assert_eq!(q1.len(), 2);
    }

    #[test]
    fn an_index_skips_empty_states() {
        let mut e = CayugaEngine::new();
        e.add_automaton(&seq_automaton(1, 10, 0));
        // No instance yet: a T event must do nothing (and not crash).
        let results = collect(&mut e, &[("T", Tuple::ints(0, &[0, 5]))]);
        assert!(results.is_empty());
    }

    #[test]
    fn unknown_stream_ignored() {
        let mut e = CayugaEngine::new();
        e.add_automaton(&seq_automaton(1, 10, 0));
        let results = collect(&mut e, &[("X", Tuple::ints(0, &[1, 1]))]);
        assert!(results.is_empty());
        assert_eq!(e.events_in, 1);
    }
}
