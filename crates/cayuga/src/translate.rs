//! Translating Cayuga automata into RUMOR query plans (§4.2).
//!
//! "Automaton states can be mapped to operators while automaton edges
//! correspond to streams": a forward edge becomes a selection (its
//! predicate) followed by a schema-map projection; a filter-only state
//! becomes the `;` operator; a state with filter and rebind edges becomes
//! `µ`.
//!
//! Because our engine implements the deterministic match-consumption
//! sequence semantics (§5.2) on both sides, the `;` operator carries the
//! forward edge's *pairwise* predicate and duration directly; the
//! event-only conjuncts are subsequently pushed below the operator by the
//! `seq_pushdown` rewrite rule, where rule sσ turns them into the predicate
//! index that mirrors Cayuga's AN/FR indexes.
//!
//! Scope: chains of sequence states terminated by an optional µ state with
//! rebind emission — the automaton shapes of the paper's workloads
//! (§5.2). Forward edges leaving a µ state are not translated (Cayuga
//! resubscription; see DESIGN.md).

use std::collections::HashMap;

use rumor_core::{IterSpec, LogicalPlan, SeqSpec};
use rumor_expr::{SchemaMap, Side};
use rumor_types::{QueryId, Result, RumorError, Schema};

use crate::automaton::{Automaton, StateId};

/// Translates an automaton into one logical plan per completed query.
pub fn translate(
    automaton: &Automaton,
    schemas: &HashMap<String, Schema>,
) -> Result<Vec<(QueryId, LogicalPlan)>> {
    let start = automaton
        .states
        .first()
        .filter(|s| s.is_start)
        .ok_or_else(|| RumorError::plan("automaton must begin with a start state".to_string()))?;
    let input_schema = schemas
        .get(&start.input)
        .ok_or_else(|| RumorError::unknown(format!("stream `{}`", start.input)))?;

    let mut outputs = Vec::new();
    for (edge, query) in &start.forward {
        // Start edges are unary over the arriving event.
        let mut plan = LogicalPlan::source(&start.input).select(edge.predicate.clone());
        let mut schema = input_schema.clone();
        if !edge.map.is_identity_for(&schema) {
            schema = edge.map.output_schema(&schema, None)?;
            plan = plan.project(edge.map.clone());
        }
        match edge.target {
            Some(target) => {
                translate_state(automaton, schemas, target, plan, schema, &mut outputs)?
            }
            None => {
                let q = query
                    .ok_or_else(|| RumorError::plan("final edge without a query".to_string()))?;
                outputs.push((q, plan));
            }
        }
    }
    Ok(outputs)
}

fn translate_state(
    automaton: &Automaton,
    schemas: &HashMap<String, Schema>,
    sid: StateId,
    left: LogicalPlan,
    left_schema: Schema,
    outputs: &mut Vec<(QueryId, LogicalPlan)>,
) -> Result<()> {
    let state = &automaton.states[sid];
    let event_schema = schemas
        .get(&state.input)
        .ok_or_else(|| RumorError::unknown(format!("stream `{}`", state.input)))?;

    if let Some(rebind) = &state.rebind {
        if !state.forward.is_empty() {
            return Err(RumorError::plan(
                "translation of forward edges out of µ states (resubscription) is unsupported"
                    .to_string(),
            ));
        }
        let spec = IterSpec {
            filter: state.filter.clone(),
            rebind: rebind.predicate.clone(),
            rebind_map: rebind.map.clone(),
            window: rebind.dur,
        };
        let plan = left.iterate(LogicalPlan::source(&state.input), spec);
        let q = rebind
            .emit
            .ok_or_else(|| RumorError::plan("µ state without an emitting query".to_string()))?;
        outputs.push((q, plan));
        return Ok(());
    }

    for (edge, query) in &state.forward {
        let spec = SeqSpec {
            predicate: edge.predicate.clone(),
            window: edge.dur,
        };
        let mut plan = left
            .clone()
            .followed_by(LogicalPlan::source(&state.input), spec);
        let concat_schema = left_schema.concat(event_schema);
        let mut schema = concat_schema.clone();
        // The edge map ranges over (instance, event); in the plan it becomes
        // a unary projection over the concatenated pair.
        let concat_map = SchemaMap::concat(&left_schema, event_schema);
        if edge.map != concat_map {
            let unary = SchemaMap::new(
                edge.map
                    .outputs
                    .iter()
                    .map(|ne| {
                        rumor_expr::NamedExpr::new(
                            ne.name.clone(),
                            ne.expr
                                .shift_side(Side::Right, left_schema.len(), Side::Left),
                        )
                    })
                    .collect(),
            );
            schema = unary.output_schema(&concat_schema, None)?;
            plan = plan.project(unary);
        }
        match edge.target {
            Some(target) => translate_state(automaton, schemas, target, plan, schema, outputs)?,
            None => {
                let q = query
                    .ok_or_else(|| RumorError::plan("final edge without a query".to_string()))?;
                outputs.push((q, plan));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::OpDef;
    use rumor_expr::{CmpOp, Expr, Predicate};

    fn schemas() -> HashMap<String, Schema> {
        let mut m = HashMap::new();
        m.insert("S".to_string(), Schema::ints(2));
        m.insert("T".to_string(), Schema::ints(2));
        m
    }

    #[test]
    fn sequence_translates_to_select_then_seq() {
        let a = Automaton::sequence(
            "S",
            &Schema::ints(2),
            Predicate::attr_eq_const(0, 1i64),
            "T",
            &Schema::ints(2),
            Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
            100,
            QueryId(0),
        );
        let out = translate(&a, &schemas()).unwrap();
        assert_eq!(out.len(), 1);
        let (q, plan) = &out[0];
        assert_eq!(*q, QueryId(0));
        // Plan shape: σθ1(S) ; T — the identity store map and the concat
        // output map introduce no π nodes (Figure 5 with trivial maps).
        match plan {
            LogicalPlan::Sequence { left, right, spec } => {
                assert!(matches!(**left, LogicalPlan::Select { .. }));
                assert!(matches!(**right, LogicalPlan::Source(_)));
                assert_eq!(spec.window, 100);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn iterate_translates_to_mu() {
        let a = Automaton::iterate(
            "S",
            &Schema::ints(2),
            Predicate::attr_eq_const(0, 7i64),
            "T",
            Predicate::cmp(CmpOp::Ne, Expr::col(0), Expr::rcol(0)),
            Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
            SchemaMap::identity(2),
            50,
            QueryId(2),
        );
        let out = translate(&a, &schemas()).unwrap();
        assert_eq!(out.len(), 1);
        match &out[0].1 {
            LogicalPlan::Iterate { spec, .. } => {
                assert_eq!(spec.window, 50);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn translated_plan_registers_and_validates() {
        use rumor_core::PlanGraph;
        let a = Automaton::sequence(
            "S",
            &Schema::ints(2),
            Predicate::attr_eq_const(0, 1i64),
            "T",
            &Schema::ints(2),
            Predicate::cmp(CmpOp::Eq, Expr::rcol(1), Expr::lit(5i64)),
            100,
            QueryId(0),
        );
        let out = translate(&a, &schemas()).unwrap();
        let mut p = PlanGraph::new();
        p.add_source("S", Schema::ints(2), None).unwrap();
        p.add_source("T", Schema::ints(2), None).unwrap();
        p.add_query(&out[0].1).unwrap();
        p.validate().unwrap();
        assert!(p
            .mops()
            .any(|n| matches!(n.members[0].def, OpDef::Sequence(_))));
    }

    #[test]
    fn unknown_stream_is_error() {
        let a = Automaton::sequence(
            "X",
            &Schema::ints(2),
            Predicate::True,
            "T",
            &Schema::ints(2),
            Predicate::True,
            1,
            QueryId(0),
        );
        assert!(translate(&a, &schemas()).is_err());
    }
}
