//! Cayuga-style automata (§4.2 of the paper, after \[7, 8\]).
//!
//! An automaton is a DAG of states. Each state reads one input stream and
//! holds *instances* (partially matched patterns). A state has up to three
//! edge types:
//!
//! * a **filter** edge (self-loop): the instance stays unchanged;
//! * a **rebind** edge (self-loop): the instance is updated by a schema map
//!   and stays (the µ iteration);
//! * **forward** edges: the instance is transformed and moves to the next
//!   state; reaching a final state emits a query result.
//!
//! Durations ("duration predicates" in Cayuga terminology) are modeled as
//! explicit per-edge windows, matching the RUMOR operators.
//!
//! Determinized match-consumption: the engine implements the sequence
//! semantics the paper relies on in §5.2 — an instance is consumed *per
//! forward edge* on that edge's first match (so sharing a state between
//! queries cannot leak matches across queries), stays while the filter edge
//! allows, and is deleted when no edge applies.

use rumor_expr::{Predicate, SchemaMap};
use rumor_types::{QueryId, Schema};

/// Index of a state within an [`Automaton`] (or the engine's forest).
pub type StateId = usize;

/// A forward edge.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardEdge {
    /// Edge predicate θ over (instance, event).
    pub predicate: Predicate,
    /// Duration window: the edge can only fire within `dur` time units of
    /// the instance's first event.
    pub dur: u64,
    /// Schema map F applied to (instance, event) to build the moved
    /// instance (or the query output when the target is final).
    pub map: SchemaMap,
    /// Target state (`None` = final: emit a result).
    pub target: Option<StateId>,
}

/// The rebind self-loop of a µ-style state.
#[derive(Debug, Clone, PartialEq)]
pub struct RebindEdge {
    /// Rebind predicate θr.
    pub predicate: Predicate,
    /// Duration window for iterating.
    pub dur: u64,
    /// Rebind map Fr: (instance, event) → instance (schema preserving).
    pub map: SchemaMap,
    /// Emit the rebound instance as a query result on each rebind (used by
    /// the µ query workloads, which observe every extension).
    pub emit: Option<QueryId>,
}

/// One automaton state.
#[derive(Debug, Clone)]
pub struct State {
    /// Name of the stream this state subscribes to.
    pub input: String,
    /// Filter-edge predicate θf (`Predicate::False` = no filter edge). On
    /// start states this is ignored — start states hold no instances.
    pub filter: Predicate,
    /// Optional rebind edge.
    pub rebind: Option<RebindEdge>,
    /// Forward edges; each may carry the query that completes there.
    pub forward: Vec<(ForwardEdge, Option<QueryId>)>,
    /// Schema of instances stored at this state.
    pub schema: Schema,
    /// True for start states (no instances; forward edges fire on the bare
    /// event, building the initial instance from the event alone).
    pub is_start: bool,
}

/// A single-query automaton: a chain/DAG of states with one start state.
#[derive(Debug, Clone)]
pub struct Automaton {
    /// States; index 0 is the start state.
    pub states: Vec<State>,
}

impl Automaton {
    /// Builds a two-state sequence automaton for the template
    /// `σ[start_pred](S) ; T` — the Workload 1 / Workload 2 shape (§5.2):
    ///
    /// * the start state reads `first`, its forward edge requires
    ///   `start_pred` on the event and stores it (identity map);
    /// * the middle state reads `second`; its forward edge carries the
    ///   pairwise `match_pred` and duration `dur`, completing the query.
    #[allow(clippy::too_many_arguments)]
    pub fn sequence(
        first: &str,
        first_schema: &Schema,
        start_pred: Predicate,
        second: &str,
        second_schema: &Schema,
        match_pred: Predicate,
        dur: u64,
        query: QueryId,
    ) -> Automaton {
        let store_map = SchemaMap::identity_of(first_schema);
        let out_map = SchemaMap::concat(first_schema, second_schema);
        Automaton {
            states: vec![
                State {
                    input: first.to_string(),
                    filter: Predicate::False,
                    rebind: None,
                    forward: vec![(
                        ForwardEdge {
                            predicate: start_pred,
                            dur: u64::MAX,
                            map: store_map,
                            target: Some(1),
                        },
                        None,
                    )],
                    schema: first_schema.clone(),
                    is_start: true,
                },
                State {
                    input: second.to_string(),
                    filter: Predicate::True,
                    rebind: None,
                    forward: vec![(
                        ForwardEdge {
                            predicate: match_pred,
                            dur,
                            map: out_map,
                            target: None,
                        },
                        Some(query),
                    )],
                    schema: first_schema.clone(),
                    is_start: false,
                },
            ],
        }
    }

    /// Builds a two-state iteration automaton for the template
    /// `σ[start_pred](S) µ(filter, rebind, map) T`, emitting on each rebind
    /// (the Workload 2 µ variant and the Query 1/2 ramp pattern).
    #[allow(clippy::too_many_arguments)]
    pub fn iterate(
        first: &str,
        first_schema: &Schema,
        start_pred: Predicate,
        second: &str,
        filter: Predicate,
        rebind: Predicate,
        rebind_map: SchemaMap,
        dur: u64,
        query: QueryId,
    ) -> Automaton {
        let store_map = SchemaMap::identity_of(first_schema);
        Automaton {
            states: vec![
                State {
                    input: first.to_string(),
                    filter: Predicate::False,
                    rebind: None,
                    forward: vec![(
                        ForwardEdge {
                            predicate: start_pred,
                            dur: u64::MAX,
                            map: store_map,
                            target: Some(1),
                        },
                        None,
                    )],
                    schema: first_schema.clone(),
                    is_start: true,
                },
                State {
                    input: second.to_string(),
                    filter,
                    rebind: Some(RebindEdge {
                        predicate: rebind,
                        dur,
                        map: rebind_map,
                        emit: Some(query),
                    }),
                    forward: Vec::new(),
                    schema: first_schema.clone(),
                    is_start: false,
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_expr::{CmpOp, Expr};

    #[test]
    fn sequence_shape() {
        let schema = Schema::ints(2);
        let a = Automaton::sequence(
            "S",
            &schema,
            Predicate::attr_eq_const(0, 1i64),
            "T",
            &schema,
            Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
            100,
            QueryId(0),
        );
        assert_eq!(a.states.len(), 2);
        assert!(a.states[0].is_start);
        assert_eq!(a.states[0].forward[0].0.target, Some(1));
        let (edge, q) = &a.states[1].forward[0];
        assert_eq!(edge.target, None, "completes the query");
        assert_eq!(*q, Some(QueryId(0)));
        assert_eq!(edge.dur, 100);
        // The output map concatenates instance and event schemas.
        assert_eq!(edge.map.arity(), 4);
    }

    #[test]
    fn iterate_shape() {
        let schema = Schema::ints(2);
        let a = Automaton::iterate(
            "S",
            &schema,
            Predicate::True,
            "T",
            Predicate::cmp(CmpOp::Ne, Expr::col(0), Expr::rcol(0)),
            Predicate::cmp(CmpOp::Eq, Expr::col(0), Expr::rcol(0)),
            SchemaMap::identity(2),
            50,
            QueryId(3),
        );
        let rebind = a.states[1].rebind.as_ref().unwrap();
        assert_eq!(rebind.emit, Some(QueryId(3)));
        assert_eq!(rebind.dur, 50);
        assert!(a.states[1].forward.is_empty());
    }
}
