//! # rumor-cayuga
//!
//! A Cayuga-style automaton event engine (\[7, 8\] in the paper) — the
//! event-engine (EE) baseline that RUMOR is evaluated against in §5.2 —
//! plus the automaton-to-query-plan translation of §4.2.
//!
//! The engine implements the automaton model of Figure 4: states with
//! filter, rebind, and forward edges over active instances, and all three
//! of Cayuga's MQO techniques: prefix state merging, the Forward-Rebind
//! (FR) index, the Active Node (AN) index, and the Active Instance (AI)
//! index. See [`engine::CayugaEngine`].
//!
//! [`translate::translate`] maps an automaton to an equivalent RUMOR
//! logical plan; a property test in this crate checks that running the
//! automaton directly and running the translated (and fully optimized)
//! plan produce identical per-query results — the paper's claim that "the
//! evaluation efficiency of a set of event pattern queries in RUMOR is at
//! least as good as that in the Cayuga engine" starts from this semantic
//! equivalence.

#![warn(missing_docs)]

pub mod automaton;
pub mod engine;
pub mod translate;

pub use automaton::{Automaton, ForwardEdge, RebindEdge, State, StateId};
pub use engine::CayugaEngine;
pub use translate::translate;
