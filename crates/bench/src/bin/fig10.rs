//! Regenerates Figure 10. Usage: `fig10 [a|b|c|d] [quick|full]`.
use rumor_bench::{fig10, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let panels = args.get(1).cloned().unwrap_or_else(|| "abcd".to_string());
    let scale = args
        .get(2)
        .and_then(|s| Scale::parse(s))
        .unwrap_or(Scale::Quick);
    for p in panels.chars() {
        fig10::run(&p.to_string(), scale);
    }
}
