//! Regenerates Figure 11. Usage: `fig11 [a|b] [quick|full]`.
use rumor_bench::{fig11, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let panels = args.get(1).cloned().unwrap_or_else(|| "ab".to_string());
    let scale = args
        .get(2)
        .and_then(|s| Scale::parse(s))
        .unwrap_or(Scale::Quick);
    for p in panels.chars() {
        fig11::run(&p.to_string(), scale);
    }
}
