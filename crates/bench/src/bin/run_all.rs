//! Regenerates every figure of the evaluation (§5) and prints the markdown
//! tables recorded in EXPERIMENTS.md. Usage: `run_all [quick|full]`.
use rumor_bench::{fig10, fig11, fig9, Scale};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick);
    println!("## RUMOR evaluation — measured results ({scale:?} scale)\n");
    for p in ["a", "b", "c", "d"] {
        fig9::run(p, scale);
    }
    for p in ["a", "b", "c", "d"] {
        fig10::run(p, scale);
    }
    for p in ["a", "b"] {
        fig11::run(p, scale);
    }
}
