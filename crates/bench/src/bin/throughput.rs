//! Regenerates `BENCH_throughput.json`: per-event vs batched vs pipelined
//! engine throughput.
//!
//! ```text
//! cargo run --release -p rumor-bench --bin throughput [quick|full] [out.json]
//! ```

use rumor_bench::throughput::{render_json, run_all};
use rumor_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = args
        .first()
        .map(|s| Scale::parse(s).expect("scale is `quick` or `full`"))
        .unwrap_or(Scale::Quick);
    let out_path = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());

    let reports = run_all(scale);
    for w in &reports {
        println!(
            "{} ({} queries, {} events, {} m-ops, batch_safe={})",
            w.name, w.queries, w.events, w.mops, w.batch_safe
        );
        for p in &w.paths {
            println!(
                "  {:<28} {:>12.0} ev/s  ({:.2}x, {} results)",
                p.path,
                p.events_per_sec,
                w.speedup(&p.path).unwrap_or(1.0),
                p.results_out
            );
        }
    }
    let json = render_json(&reports, scale);
    std::fs::write(&out_path, json).expect("write report");
    println!("wrote {out_path}");
}
