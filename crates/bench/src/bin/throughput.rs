//! Regenerates `BENCH_throughput.json`: per-event vs batched vs sharded
//! engine throughput, the plan-quality rows (greedy vs cost-based search
//! m-op counts and throughput over identical query sets), the
//! time-domain observability rows (latency percentiles and per-m-op
//! wall-time attribution from one instrumented run), plus the
//! dynamic-query-lifecycle churn rows (integrate/remove latency against a
//! live pool and steady-state throughput under churn), and the
//! multi-tenant server row (hundreds of loopback clients with
//! Zipf-popular queries pushed through `rumor-server` end to end).
//!
//! ```text
//! cargo run --release -p rumor-bench --bin throughput [quick|full] [out.json] [--stats]
//! ```
//!
//! With `--stats`, the instrumented run's final `StatsSnapshot` JSON is
//! written next to the throughput report (`<out stem>.stats.json`) along
//! with its interval-metering stream (`<out stem>.meter.jsonl`, one JSON
//! line per arrival chunk from a `Meter`).

use rumor_bench::multi_tenant::run_multi_tenant;
use rumor_bench::throughput::{
    render_json, run_all, run_churn, run_observability, run_plan_quality,
};
use rumor_bench::Scale;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let want_stats = {
        let before = args.len();
        args.retain(|a| a != "--stats");
        args.len() != before
    };
    let scale = args
        .first()
        .map(|s| Scale::parse(s).expect("scale is `quick` or `full`"))
        .unwrap_or(Scale::Quick);
    let out_path = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());

    let reports = run_all(scale);
    for w in &reports {
        println!(
            "{} ({} queries, {} events, {} m-ops, batch_safe={})",
            w.name, w.queries, w.events, w.mops, w.batch_safe
        );
        for p in &w.paths {
            println!(
                "  {:<28} {:>12.0} ev/s  ({:.2}x, {} results)",
                p.path,
                p.events_per_sec,
                w.speedup(&p.path).unwrap_or(1.0),
                p.results_out
            );
        }
    }
    let quality = run_plan_quality(scale);
    println!("plan quality (greedy vs cost-based search, push_batch)");
    for q in &quality {
        println!(
            "  {:<18} {:>5} queries: {:>4} vs {:>4} m-ops, {:>11.0} vs {:>11.0} ev/s, results_match={}",
            q.workload,
            q.queries,
            q.greedy_mops,
            q.cost_mops,
            q.greedy_events_per_sec,
            q.cost_events_per_sec,
            q.results_match
        );
    }
    let obs = run_observability(scale);
    println!("latency (instrumented shared_selects run, streaming n=2)");
    for l in &obs.latency {
        println!(
            "  {:<14} {:>8} samples: p50 {:>9.1} us, p90 {:>9.1} us, p99 {:>9.1} us, max {:>9.1} us",
            l.metric, l.count, l.p50_us, l.p90_us, l.p99_us, l.max_us
        );
    }
    println!("time attribution (sampled per-m-op wall time, busiest first)");
    for t in &obs.time_attribution {
        println!(
            "  {:<6} {:<20} {:>10} events, {:>5.1}% of attributed time",
            t.mop,
            t.op,
            t.events_in,
            t.time_share * 100.0
        );
    }
    let churn = run_churn(scale);
    println!("churn (streaming pool n=2, add/remove every 4th chunk)");
    for c in &churn {
        println!(
            "  {:>5} resident: integrate {:>7.3} ms, remove {:>7.3} ms, {:>12.0} ev/s under churn",
            c.resident_queries, c.integrate_ms, c.remove_ms, c.churn_events_per_sec
        );
    }
    let mt = run_multi_tenant(scale);
    println!("multi-tenant (loopback server, Zipf query popularity)");
    println!(
        "  {:<28} {:>4} clients, {} queries ({} distinct): {:>10.0} ev/s, {} results out, flush p50 {:.0} us / p99 {:.0} us, {} shed, {} events saved",
        mt.scenario,
        mt.clients,
        mt.queries,
        mt.distinct_bodies,
        mt.events_per_sec,
        mt.results_out,
        mt.delivery_p50_us,
        mt.delivery_p99_us,
        mt.shed_results,
        mt.events_saved
    );
    let multi_tenant = vec![mt];
    let json = render_json(
        &reports,
        &quality,
        &obs.latency,
        &obs.time_attribution,
        &multi_tenant,
        &churn,
        scale,
    );
    std::fs::write(&out_path, json).expect("write report");
    println!("wrote {out_path}");

    if want_stats {
        let stem = out_path
            .strip_suffix(".json")
            .map(str::to_string)
            .unwrap_or_else(|| out_path.clone());
        let stats_path = format!("{stem}.stats.json");
        std::fs::write(&stats_path, &obs.snapshot_json).expect("write stats snapshot");
        println!("wrote {stats_path}");
        let meter_path = format!("{stem}.meter.jsonl");
        let mut meter = obs.meter_jsonl.clone();
        if !meter.is_empty() && !meter.ends_with('\n') {
            meter.push('\n');
        }
        std::fs::write(&meter_path, meter).expect("write meter stream");
        println!("wrote {meter_path}");
    }
}
